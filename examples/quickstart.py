#!/usr/bin/env python3
"""Quickstart: compile a program, inject a software fault, observe it.

Walks the library's whole stack in ~60 lines of user code:

1. compile a MiniC program for the RX32 target;
2. run it clean on the simulated machine;
3. ask the fault locator for the program's checking fault locations;
4. inject the Table-3 ``< -> <=`` operator swap through the debug unit
   (a one-bit-field corruption of the fetched conditional branch);
5. classify the outcome the way the paper's experiment manager does.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (
    FaultLocator,
    InjectionSession,
    boot,
    classify,
    compile_source,
    swap_error_type,
)

SOURCE = """
int limit;

void main() {
    int i;
    int total = 0;
    for (i = 0; i < limit; i++) {
        total = total + i;
    }
    print_int(total);
    exit(0);
}
"""


def main() -> None:
    # 1. Compile.  The compiler records, for every assignment and checking
    #    statement, which machine instructions anchor it.
    program = compile_source(SOURCE, "quickstart")
    print(f"compiled {program.name}: {len(program.executable.code)} bytes of RX32 code")

    # 2. Fault-free run (limit = 10 -> prints 45).
    machine = boot(program.executable, inputs={"limit": 10})
    clean = machine.run()
    print(f"clean run:    output={clean.console.decode()!r}  "
          f"({clean.instructions} instructions)")

    # 3. Locate the loop's checking statement.
    locator = FaultLocator(program)
    location = next(
        loc for loc in locator.checking_locations()
        if getattr(loc.site, "op", None) == "<"
    )
    print(f"fault site:   {location.describe()}")

    # 4. Build and arm the '<' -> '<=' checking error (Table 3), triggered
    #    on every opcode fetch of the anchored conditional branch.
    spec = locator.build_fault(location, swap_error_type("<", "<="))
    print(f"fault spec:   {spec.describe()}")

    machine = boot(program.executable, inputs={"limit": 10})
    session = InjectionSession(machine)
    session.arm(spec)
    injected = session.run()

    # 5. Classify against the oracle output, as the campaign engine does.
    mode = classify(injected, clean.console)
    print(f"injected run: output={injected.console.decode()!r}  "
          f"failure mode: {mode.label}")
    print(f"trigger fired {session.activation_count(spec.fault_id)} times "
          "(once per loop test)")

    assert injected.console == b"55", "one extra iteration: 45 + 10"
    print("\nThe off-by-one the injection emulates is exactly what the "
          "source-level fault 'i <= limit' would have produced.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A §6-style class-emulation campaign on one program.

Applies the Christmansson/Chillarege-style rules (§6.3) to JB.team6:
enumerate fault locations, pick some at random, take every applicable
Table-3 error type, inject each fault against every input data set with
a machine reboot in between, and chart the failure modes.

Run:  python examples/error_set_campaign.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (
    ASSIGNMENT_CLASS,
    CHECKING_CLASS,
    CampaignConfig,
    CampaignRunner,
    FailureMode,
    generate_error_set,
    get_workload,
    render_stacked_bars,
)


def main() -> None:
    workload = get_workload("JB.team6")
    compiled = workload.compiled()
    rng = random.Random(2024)

    # The family test case: every program of a family sees the same inputs.
    cases = workload.make_cases(8, seed=5)
    runner = CampaignRunner(compiled, cases, num_cores=workload.num_cores)

    series = {}
    for klass in (ASSIGNMENT_CLASS, CHECKING_CLASS):
        error_set = generate_error_set(
            compiled, klass, max_locations=4, rng=rng
        )
        print(f"{klass}: {error_set.possible_locations} possible locations, "
              f"{error_set.chosen_locations} chosen, "
              f"{len(error_set.faults)} faults x {len(cases)} inputs = "
              f"{len(error_set.faults) * len(cases)} runs")
        # snapshot="auto" boots each input once and restores a golden-run
        # checkpoint at the trigger instead of rebooting per run; the
        # outcomes are bit-identical to a fresh boot (snapshot="off").
        outcome = runner.run(
            error_set.faults, config=CampaignConfig(snapshot="auto")
        )
        series[klass] = outcome.percentages()
        dormant = outcome.dormant_fraction()
        print(f"  dormant (trigger never fired): {100 * dormant:.0f}%")

    print()
    print(render_stacked_bars(
        series, title="JB.team6 - failure modes by injected fault class"
    ))

    correct = series[ASSIGNMENT_CLASS][FailureMode.CORRECT]
    print(f"\nNote the paper's core observation: only {correct:.0f}% of the "
          "assignment-fault runs stayed correct — injected faults hit much "
          "harder than the real JB.team6 bug, which fails on just ~0.1% of "
          "inputs (Table 1).  The always-firing trigger (p1 = p2 = 1) is "
          "the suspected cause.")


if __name__ == "__main__":
    main()

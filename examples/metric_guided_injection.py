#!/usr/bin/env python3
"""§6.1 — distributing faults with software metrics instead of field data.

Field data about past faults is usually unavailable (and product-specific
when it exists).  The paper suggests complexity metrics as the substitute
for its two uses: choosing the modules to inject into and how many faults
each gets.  This example allocates a budget of faults across all Table-2
programs with every strategy, then actually runs a small metric-guided
campaign.

Run:  python examples/metric_guided_injection.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (
    ASSIGNMENT_CLASS,
    CampaignRunner,
    FaultLocator,
    allocate,
    get_workload,
    run_metric_guidance,
    table2_workloads,
)


def main() -> None:
    guidance = run_metric_guidance(total_faults=60)
    print(guidance.render())
    rho = guidance.rank_correlation("mccabe", "sites")
    print(f"\nSpearman rank correlation, McCabe vs true fault-site density: "
          f"{rho:.2f}")
    print("A cheap static metric ranks the programs close to the actual "
          "density of assignment/checking locations — the §6.1 premise.\n")

    # Now spend a small budget per the McCabe allocation on the two
    # JamesB programs (kept small so the example runs in seconds).
    budget = allocate([w.compiled() for w in table2_workloads()], 24, "mccabe")
    rng = random.Random(9)
    for name in ("JB.team6", "JB.team11"):
        workload = get_workload(name)
        count = max(1, budget[name])
        locator = FaultLocator(workload.compiled())
        locations = locator.locations(ASSIGNMENT_CLASS)
        chosen = rng.sample(locations, min(count, len(locations)))
        faults = []
        for location in chosen:
            faults.extend(locator.faults_for_location(location, rng=rng))
        cases = workload.make_cases(6, seed=13)
        runner = CampaignRunner(workload.compiled(), cases,
                                num_cores=workload.num_cores)
        outcome = runner.run(faults)
        shares = outcome.percentages()
        print(f"{name}: metric-allocated {count} locations -> "
              f"{len(faults)} faults, {outcome.total_runs} runs; "
              + "  ".join(f"{mode.value}={share:.0f}%"
                          for mode, share in shares.items()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The §5 story: emulating *real* software faults on real programs.

Three of the paper's seven real faults, end to end:

* C.team4 (Figure 3) — an assignment fault (wrong loop-start constant),
  emulated exactly by corrupting the stored operand;
* JB.team6 (Figure 4) — the stack-shift assignment fault: breakpoint-mode
  emulation fails on the PowerPC-style two-IABR limit, the memory-patch
  extension succeeds;
* C.team5 (Figure 6) — the algorithm fault (Manhattan instead of
  Chebyshev king distance), which no machine-level injection can emulate.

Run:  python examples/real_fault_emulation.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (
    DebugResourceError,
    InjectionSession,
    NotEmulableError,
    boot,
    get_workload,
)


def compare_runs(name: str, mode: str, inputs: int = 5, seed: int = 7) -> None:
    """Run faulty binary vs corrected binary + injected emulation."""
    workload = get_workload(name)
    corrected = workload.compiled()
    faulty = workload.compiled_faulty()
    specs = workload.real_fault.build_emulation(corrected, mode=mode)
    rng = random.Random(seed)
    matches = 0
    for index in range(inputs):
        pokes = workload.generate_pokes(rng)
        machine = boot(faulty.executable, inputs=pokes)
        faulty_run = machine.run(100_000_000)
        machine = boot(corrected.executable, inputs=pokes)
        session = InjectionSession(machine)
        session.arm_all(specs)
        emulated_run = session.run(100_000_000)
        same = emulated_run.console == faulty_run.console
        matches += same
        print(f"    input {index}: faulty={faulty_run.console.decode().strip()!r:>8} "
              f"emulated={emulated_run.console.decode().strip()!r:>8} "
              f"{'MATCH' if same else 'MISMATCH'}")
    print(f"    emulation accuracy: {matches}/{inputs}")


def main() -> None:
    print("=== C.team4: assignment fault (Figure 3) ===")
    fault = get_workload("C.team4").real_fault
    print(f"fault: {fault.source_change}")
    print(f"emulation: {fault.strategy.describe()} via breakpoint registers")
    compare_runs("C.team4", mode="breakpoint")

    print("\n=== JB.team6: stack-shift assignment fault (Figure 4) ===")
    workload = get_workload("JB.team6")
    fault = workload.real_fault
    print(f"fault: {fault.source_change}")
    specs = fault.build_emulation(workload.compiled(), mode="breakpoint")
    print(f"the emulation needs {len(specs)} trigger addresses; "
          "the debug unit has 2 instruction-address breakpoint registers")
    machine = boot(workload.compiled().executable,
                   inputs=workload.generate_pokes(random.Random(0)))
    session = InjectionSession(machine)
    try:
        session.arm_all(specs)
    except DebugResourceError as error:
        print(f"breakpoint mode: FAILS as in the paper -> {error}")
    print("memory-patch extension (the tool improvement the paper proposes):")
    compare_runs("JB.team6", mode="memory", inputs=4)
    # Show it reproducing the actual failure on the one input that fires it.
    pokes = {"in_seed": 99, "in_len": 80,
             "in_str": bytes(33 + i % 90 for i in range(80)) + b"\x00"}
    machine = boot(workload.compiled_faulty().executable, inputs=pokes)
    faulty_run = machine.run(10_000_000)
    machine = boot(workload.compiled().executable, inputs=pokes)
    session = InjectionSession(machine)
    session.arm_all(fault.build_emulation(workload.compiled(), mode="memory"))
    emulated_run = session.run(10_000_000)
    print(f"    length-80 input: faulty checksum line "
          f"{faulty_run.console.splitlines()[1].decode()!r}, emulated "
          f"{emulated_run.console.splitlines()[1].decode()!r} "
          f"({'MATCH' if faulty_run.console == emulated_run.console else 'MISMATCH'})")

    print("\n=== C.team5: algorithm fault (Figure 6) ===")
    fault = get_workload("C.team5").real_fault
    print(f"fault: {fault.source_change}")
    try:
        fault.build_emulation(get_workload("C.team5").compiled())
    except NotEmulableError as error:
        print(f"not emulable -> {error.reason}")
        if error.evidence:
            print(f"evidence: {error.evidence}")


if __name__ == "__main__":
    main()

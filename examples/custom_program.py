#!/usr/bin/env python3
"""Bring your own program: fault-inject code this library has never seen.

Everything the paper's §6 pipeline needs — statement anchors, fault
locations, applicable error types, triggers — is produced automatically
by the compiler, so the same experiment runs against any MiniC program.
Here: a little fixed-point interest calculator, swept with every
applicable checking error type, one bar per error type (a personal
Figure 10).

Run:  python examples/custom_program.py
"""

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import (
    CHECKING_CLASS,
    CampaignRunner,
    FaultLocator,
    InputCase,
    compile_source,
    render_stacked_bars,
)

SOURCE = """
/* Compound interest in Q16.16 fixed point, with a sanity check table. */

int in_principal;
int in_rate_q16;
int in_years;

int history[50];

int accrue(int amount, int rate_q16) {
    int scaled = amount >> 4;
    int gain = (scaled * (rate_q16 >> 4)) >> 8;
    return amount + gain;
}

void main() {
    int year;
    int amount = in_principal;
    for (year = 0; year < in_years; year++) {
        amount = accrue(amount, in_rate_q16);
        history[year] = amount;
    }
    if (in_years > 0 && history[in_years - 1] != amount) {
        print_str("inconsistent!\\n");
        exit(1);
    }
    print_int(amount);
    print_char('\\n');
    exit(0);
}
"""


def oracle(principal: int, rate_q16: int, years: int) -> bytes:
    amount = principal
    for _ in range(years):
        scaled = amount >> 4
        gain = (scaled * (rate_q16 >> 4)) >> 8
        amount += gain
    return b"%d\n" % amount


def main() -> None:
    compiled = compile_source(SOURCE, "interest")
    print(f"{compiled.name}: {compiled.source_lines} lines, "
          f"{len(compiled.debug.assignments)} assignment sites, "
          f"{len(compiled.debug.checks)} checking sites")

    rng = random.Random(31)
    cases = []
    for index in range(6):
        principal = rng.randint(1000, 500_000)
        rate = rng.randint(1000, 8000)  # ~1.5%..12% in Q16.16
        years = rng.randint(1, 40)
        cases.append(InputCase(
            case_id=f"case{index}",
            pokes={"in_principal": principal, "in_rate_q16": rate,
                   "in_years": years},
            expected=oracle(principal, rate, years),
        ))

    locator = FaultLocator(compiled)
    locations = locator.locations(CHECKING_CLASS)
    faults = []
    for location in locations:
        faults.extend(locator.faults_for_location(location, rng=rng))
    print(f"checking locations: {len(locations)}, faults: {len(faults)}")

    runner = CampaignRunner(compiled, cases)
    outcome = runner.run(faults)

    series = {}
    for label, records in sorted(outcome.by_metadata("error_label").items()):
        subset_result = type(outcome)(program=compiled.name)
        subset_result.records = records
        series[str(label)] = subset_result.percentages()
    print()
    print(render_stacked_bars(
        series,
        title="interest calculator - failure modes per checking error type",
    ))


if __name__ == "__main__":
    main()

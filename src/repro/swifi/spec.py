"""The unified injection-spec hierarchy: one surface, two tiers.

The reproduction now has two injection backends:

* the **machine tier** (``tier="machine"``) — the SWIFI tool of the
  paper: word-level corruptions armed on the original binary through the
  debug unit (:class:`repro.swifi.faults.MachineFault`, and the verify
  fuzzer's portable :class:`repro.verify.sampler.MachineFaultRecipe`);
* the **source tier** (``tier="source"``) — ODC-typed AST mutations
  compiled into a mutant binary (:class:`repro.srcfi.SourceFault`), the
  G-SWFIT-style answer to the paper's "~44% of field faults are not
  emulable at machine level" negative result.

:class:`InjectionSpec` is the common base: every concrete spec names its
``tier``, yields a stable ``spec_id`` and renders a one-line
``describe()``.  Campaign plumbing (``CampaignConfig(tier=...)``, the
CLI's ``--tier``) selects a backend by the same two strings.

The legacy names ``FaultSpec`` and ``FaultDescriptor`` survive as
constructor shims that emit :class:`LegacyCampaignAPIWarning` — the same
deprecation channel the campaign layer's legacy keyword spelling already
uses (pyproject promotes it to an error for this repo's own code and
tests, so internal callers must use the tiered names).
"""

from __future__ import annotations

TIER_MACHINE = "machine"
TIER_SOURCE = "source"
TIERS = (TIER_MACHINE, TIER_SOURCE)


class LegacyCampaignAPIWarning(DeprecationWarning):
    """A caller used a deprecated campaign-era API spelling.

    Emitted by the legacy ``CampaignRunner.run(jobs=..., ...)`` keyword
    form and by the pre-tier constructor names ``FaultSpec`` /
    ``FaultDescriptor``.  Kept importable from
    :mod:`repro.swifi.campaign` (its historical home) so existing
    warning filters keep matching.
    """


class InjectionSpec:
    """Base class of every fault specification, machine- or source-tier.

    Concrete subclasses are frozen dataclasses; the base carries only the
    tier contract so that ``isinstance(spec, InjectionSpec)`` and
    ``spec.tier`` work uniformly across backends.
    """

    #: Which injection backend realizes this spec ("machine" | "source").
    tier: str = TIER_MACHINE

    @property
    def spec_id(self) -> str:
        """Stable identifier, unique within one campaign's fault list."""
        raise NotImplementedError  # pragma: no cover - interface

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


__all__ = [
    "InjectionSpec",
    "LegacyCampaignAPIWarning",
    "TIER_MACHINE",
    "TIER_SOURCE",
    "TIERS",
]

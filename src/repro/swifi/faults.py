"""The SWIFI fault model: What / Where / Which / When.

§3 of the paper: "in a typical SWIFI tool faults are defined according to
three main classes of parameters: what (what should be changed/corrupted),
where (where, in the code, should the change be applied), when (when,
during the program execution, should the change be inserted).  The
traditional When parameter should, in our opinion, be decomposed in which
(which instruction or event acts as fault trigger) and when (when, during
the various executions of the trigger instruction or trigger event is the
fault injected)."

This module encodes exactly that decomposition:

* :class:`Corruption` subclasses are the **What** — a bit mask or bit
  operation, an arithmetic perturbation, or a value substitution;
* :class:`Action` pairs a corruption with a **Where** — an instruction or
  data word in memory, a register, the word on the instruction-fetch data
  bus, or the operand of the triggering instruction's load/store;
* :class:`Trigger` subclasses are the **Which** — opcode fetch from an
  address, access to a data address, or an elapsed-instruction event;
* :class:`WhenPolicy` is the **When** — which activations of the trigger
  actually fire (first, every, the n-th, a window).
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field, replace
from typing import Union

from .spec import InjectionSpec, LegacyCampaignAPIWarning, TIER_MACHINE

# ---------------------------------------------------------------------------
# What: corruptions
# ---------------------------------------------------------------------------


class Corruption:
    """A bit-level or arithmetic transformation of a 32-bit value."""

    def apply(self, value: int) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class BitFlip(Corruption):
    """XOR with a mask (the classic SWIFI bit-flip / bit-mask error)."""

    mask: int

    def apply(self, value: int) -> int:
        return (value ^ self.mask) & 0xFFFFFFFF

    def describe(self) -> str:
        return f"xor {self.mask:#010x}"


@dataclass(frozen=True)
class BitAnd(Corruption):
    """Force bits to zero (stuck-at-0 style mask)."""

    mask: int

    def apply(self, value: int) -> int:
        return value & self.mask & 0xFFFFFFFF

    def describe(self) -> str:
        return f"and {self.mask:#010x}"


@dataclass(frozen=True)
class BitOr(Corruption):
    """Force bits to one (stuck-at-1 style mask)."""

    mask: int

    def apply(self, value: int) -> int:
        return (value | self.mask) & 0xFFFFFFFF

    def describe(self) -> str:
        return f"or {self.mask:#010x}"


@dataclass(frozen=True)
class Arithmetic(Corruption):
    """Add a signed delta — the paper's "arithmetic operation that changes
    the operand fetched" (Figure 4)."""

    delta: int

    def apply(self, value: int) -> int:
        return (value + self.delta) & 0xFFFFFFFF

    def describe(self) -> str:
        return f"add {self.delta:+d}"


@dataclass(frozen=True)
class SetValue(Corruption):
    """Replace the value outright."""

    value: int

    def apply(self, value: int) -> int:
        return self.value & 0xFFFFFFFF

    def describe(self) -> str:
        return f"set {self.value:#010x}"


@dataclass(frozen=True)
class PatchField(Corruption):
    """Replace a bit field ``value[shift : shift+width]`` with *content*.

    The machine-level image of operator swaps: changing the cond field of a
    conditional branch, or the displacement of a load, is a field patch of
    the instruction word.
    """

    shift: int
    width: int
    content: int

    def apply(self, value: int) -> int:
        mask = ((1 << self.width) - 1) << self.shift
        return (value & ~mask) | ((self.content << self.shift) & mask)

    def describe(self) -> str:
        return f"field[{self.shift}+{self.width}]={self.content:#x}"


def random_word(rng: random.Random) -> SetValue:
    """A seeded random 32-bit substitution (the 'random value' error type)."""
    return SetValue(rng.getrandbits(32))


# ---------------------------------------------------------------------------
# Where: locations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MemoryWord:
    """Corrupt the word stored at *address* (persistent until overwritten)."""

    address: int


@dataclass(frozen=True)
class CodeWord:
    """Corrupt an instruction word in the code segment (persistent)."""

    address: int


@dataclass(frozen=True)
class RegisterTarget:
    """Corrupt a general-purpose register of the triggering core."""

    index: int


@dataclass(frozen=True)
class FetchedWord:
    """Corrupt the instruction word on the fetch data bus (transient:
    memory is unchanged, only this execution sees the corrupted word)."""


@dataclass(frozen=True)
class LoadValue:
    """Corrupt the value read by the triggering instruction's load."""


@dataclass(frozen=True)
class StoreValue:
    """Corrupt the value written by the triggering instruction's store."""


Location = Union[MemoryWord, CodeWord, RegisterTarget, FetchedWord, LoadValue, StoreValue]


@dataclass(frozen=True)
class Action:
    """One (Where, What) pair applied when the trigger fires."""

    location: Location
    corruption: Corruption

    def describe(self) -> str:
        return f"{type(self.location).__name__}({self.location}) <- {self.corruption.describe()}"


# ---------------------------------------------------------------------------
# Which: triggers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OpcodeFetch:
    """Fire when the instruction at *address* is fetched (spatial trigger)."""

    address: int


@dataclass(frozen=True)
class DataAccess:
    """Fire when *address* is read and/or written (data trigger)."""

    address: int
    on_load: bool = True
    on_store: bool = False


@dataclass(frozen=True)
class Temporal:
    """Fire after *instructions* instructions have executed (temporal trigger)."""

    instructions: int


Trigger = Union[OpcodeFetch, DataAccess, Temporal]


# ---------------------------------------------------------------------------
# When: activation policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WhenPolicy:
    """Which activations of the trigger actually inject.

    Activations are counted from 1.  ``start=1, count=None`` is "every
    execution of the trigger instruction" (the §6 campaigns); ``start=1,
    count=1`` is "only the first"; ``start=n, count=1`` is "the n-th".
    """

    start: int = 1
    count: int | None = None

    def fires(self, activation: int) -> bool:
        if activation < self.start:
            return False
        if self.count is None:
            return True
        return activation < self.start + self.count

    @staticmethod
    def every() -> "WhenPolicy":
        return WhenPolicy(1, None)

    @staticmethod
    def once() -> "WhenPolicy":
        return WhenPolicy(1, 1)

    @staticmethod
    def nth(n: int) -> "WhenPolicy":
        return WhenPolicy(n, 1)


# ---------------------------------------------------------------------------
# The complete fault specification
# ---------------------------------------------------------------------------

MODE_BREAKPOINT = "breakpoint"  # hardware breakpoint registers (≤ 2, non-intrusive)
MODE_TRAP = "trap"              # inserted trap instructions (unlimited, intrusive)


@dataclass(frozen=True)
class MachineFault(InjectionSpec):
    """Everything the injector needs for one machine-tier fault."""

    fault_id: str
    trigger: Trigger
    actions: tuple[Action, ...]
    when: WhenPolicy = field(default_factory=WhenPolicy.every)
    mode: str = MODE_BREAKPOINT
    metadata: tuple[tuple[str, object], ...] = ()

    tier = TIER_MACHINE

    def __post_init__(self) -> None:
        if self.mode not in (MODE_BREAKPOINT, MODE_TRAP):
            raise ValueError(f"unknown injection mode {self.mode!r}")
        if not self.actions:
            raise ValueError("a fault needs at least one action")

    @property
    def spec_id(self) -> str:
        return self.fault_id

    @property
    def meta(self) -> dict[str, object]:
        return dict(self.metadata)

    def with_metadata(self, **extra: object) -> "MachineFault":
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=tuple(sorted(merged.items())))

    def describe(self) -> str:
        actions = "; ".join(action.describe() for action in self.actions)
        return (
            f"{self.fault_id}: which={self.trigger} when={self.when} "
            f"mode={self.mode} [{actions}]"
        )


class FaultSpec(MachineFault):
    """Deprecated pre-tier spelling of :class:`MachineFault`.

    Constructing one works exactly like ``MachineFault`` but emits
    :class:`LegacyCampaignAPIWarning`; every consumer accepts either
    (``FaultSpec`` *is a* ``MachineFault``).
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "FaultSpec is the legacy name of the machine-tier injection "
            "spec; construct repro.swifi.MachineFault (or a srcfi "
            "SourceFault for the source tier) instead",
            LegacyCampaignAPIWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def probe(probe_id: str, address: int, mode: str = MODE_BREAKPOINT) -> MachineFault:
    """An *observation probe*: a trigger that counts but corrupts nothing.

    The corruption is the identity (xor 0), so arming a probe measures how
    often an instruction executes without perturbing the run — the
    mechanism behind the Figure-2 exposure-chain experiment (estimating
    p1, the probability that the faulty code is executed at all).  Probes
    consume debug-unit resources exactly like real faults: at most two can
    ride the breakpoint registers.
    """
    spec = MachineFault(
        fault_id=probe_id,
        trigger=OpcodeFetch(address),
        actions=(Action(FetchedWord(), BitFlip(0)),),
        when=WhenPolicy.every(),
        mode=mode,
    )
    return spec.with_metadata(kind="probe")

"""Statement-level coverage via trap-instrumented observation probes.

Which fault locations does a test case actually exercise?  The question
sits underneath both §5 (p1, the probability the faulty code runs at all)
and §6 (locations whose triggers never fire leave faults dormant).  This
module measures it with the injector's own machinery: an observation
probe (identity corruption) on every assignment/checking anchor of a
program, armed in **trap mode** — the breakpoint registers could only
watch two addresses, so coverage instrumentation is inherently the
"intrusive" flavour, exactly like classic debugger breakpoints.

Typical use::

    coverage = CoverageSession(compiled)
    machine = boot(compiled.executable, inputs=pokes)
    result = coverage.attach_and_run(machine)
    print(coverage.report())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.compiler import CompiledProgram
from ..machine.machine import DEFAULT_BUDGET, Machine, RunResult
from .faults import MODE_TRAP, probe
from .injector import InjectionSession


@dataclass(frozen=True)
class CoveragePoint:
    """One instrumented fault-site anchor."""

    address: int
    kind: str        # "assignment" | "checking"
    function: str
    line: int


@dataclass
class CoverageReport:
    points: list[CoveragePoint]
    counts: dict[int, int]  # address -> executions

    @property
    def total_points(self) -> int:
        return len(self.points)

    @property
    def covered_points(self) -> int:
        return sum(1 for point in self.points if self.counts.get(point.address, 0) > 0)

    @property
    def coverage(self) -> float:
        return self.covered_points / self.total_points if self.points else 0.0

    def uncovered(self) -> list[CoveragePoint]:
        return [p for p in self.points if self.counts.get(p.address, 0) == 0]

    def hot_spots(self, top: int = 5) -> list[tuple[CoveragePoint, int]]:
        ranked = sorted(
            ((p, self.counts.get(p.address, 0)) for p in self.points),
            key=lambda pair: pair[1],
            reverse=True,
        )
        return ranked[:top]

    def render(self) -> str:
        lines = [
            f"fault-site coverage: {self.covered_points}/{self.total_points} "
            f"({100 * self.coverage:.0f}%)"
        ]
        for point in self.uncovered():
            lines.append(
                f"  never executed: {point.kind} at {point.function}:{point.line}"
            )
        return "\n".join(lines)


class CoverageSession:
    """Instruments every fault-site anchor of a compiled program."""

    def __init__(self, compiled: CompiledProgram) -> None:
        self.compiled = compiled
        self.points: list[CoveragePoint] = []
        seen: set[int] = set()
        for site in compiled.debug.assignments:
            if not site.anchorable:
                continue
            if site.address is not None and site.address not in seen:
                seen.add(site.address)
                self.points.append(
                    CoveragePoint(site.address, "assignment", site.function, site.line)
                )
        for site in compiled.debug.checks:
            if not site.anchorable:
                continue
            if site.address is not None and site.address not in seen:
                seen.add(site.address)
                self.points.append(
                    CoveragePoint(site.address, "checking", site.function, site.line)
                )

    def attach(self, machine: Machine) -> InjectionSession:
        """Arm one trap-mode probe per anchor on *machine*."""
        session = InjectionSession(machine)
        for point in self.points:
            session.arm(probe(f"cov:{point.address:#x}", point.address, mode=MODE_TRAP))
        return session

    def attach_and_run(
        self, machine: Machine, max_instructions: int = DEFAULT_BUDGET
    ) -> tuple[RunResult, CoverageReport]:
        session = self.attach(machine)
        result = session.run(max_instructions)
        counts = {
            point.address: session.activation_count(f"cov:{point.address:#x}")
            for point in self.points
        }
        return result, CoverageReport(points=list(self.points), counts=counts)

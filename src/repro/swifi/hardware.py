"""Random hardware-fault generation (the classic Xception use case).

§6.4 of the paper observes that the §6 error sets "also emulate hardware
faults, which might explain the general small percentage of correct
results", and that "the random fault trigger used is also typical from
hardware faults" — citing earlier Xception [23] and pin-level [26]
campaigns where hardware faults produced large shares of incorrect
results and crashes.

This module generates that classic fault population: single- and
multi-bit flips in

* general-purpose registers (transient, at a random execution instant),
* data memory words (transient corruption of stored state),
* code memory words (persistent corruption of an instruction),
* the instruction-fetch data bus (transient, on a random fetch),

with uniformly random temporal or spatial triggers.  The hardware-vs-
software ablation benchmark compares the failure-mode mix of this
population against the §6.3 rule-generated software error sets on the
same programs and inputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..lang.compiler import CompiledProgram
from .faults import (
    Action,
    BitFlip,
    CodeWord,
    MachineFault,
    FetchedWord,
    OpcodeFetch,
    RegisterTarget,
    Temporal,
    WhenPolicy,
)

#: The hardware fault classes this generator draws from.
HW_REGISTER = "hw-register"
HW_MEMORY = "hw-memory"
HW_CODE = "hw-code"
HW_BUS = "hw-bus"

HW_CLASSES = (HW_REGISTER, HW_MEMORY, HW_CODE, HW_BUS)


@dataclass(frozen=True)
class HardwareFaultModel:
    """Knobs for the random hardware-fault population."""

    max_bits: int = 2                 # 1 or 2 simultaneous bit flips
    temporal_window: int = 200_000    # instruction window for temporal triggers
    classes: tuple[str, ...] = HW_CLASSES


def _mask(rng: random.Random, max_bits: int) -> int:
    bits = rng.randint(1, max_bits)
    mask = 0
    while bin(mask).count("1") < bits:
        mask |= 1 << rng.randrange(32)
    return mask


def _code_addresses(compiled: CompiledProgram) -> tuple[int, int]:
    base = compiled.executable.code_base
    return base, base + len(compiled.executable.code)


def generate_hardware_fault(
    compiled: CompiledProgram,
    rng: random.Random,
    model: HardwareFaultModel | None = None,
    fault_id: str | None = None,
) -> MachineFault:
    """One random hardware fault against *compiled*."""
    model = model or HardwareFaultModel()
    klass = rng.choice(model.classes)
    mask = _mask(rng, model.max_bits)
    code_base, code_end = _code_addresses(compiled)
    identifier = fault_id or f"hw:{klass}:{rng.getrandbits(32):08x}"

    if klass == HW_REGISTER:
        register = rng.randrange(1, 32)  # r0 is hardwired zero
        spec = MachineFault(
            identifier,
            Temporal(rng.randrange(1, model.temporal_window)),
            (Action(RegisterTarget(register), BitFlip(mask)),),
            when=WhenPolicy.once(),
        )
    elif klass == HW_MEMORY:
        data_base = compiled.executable.data_base
        data_size = max(4, compiled.executable.data_size & ~3)
        address = data_base + 4 * rng.randrange(data_size // 4)
        spec = MachineFault(
            identifier,
            Temporal(rng.randrange(1, model.temporal_window)),
            (Action(CodeWord(address), BitFlip(mask)),),  # debug-port word write
            when=WhenPolicy.once(),
        )
    elif klass == HW_CODE:
        address = code_base + 4 * rng.randrange((code_end - code_base) // 4)
        spec = MachineFault(
            identifier,
            Temporal(rng.randrange(1, model.temporal_window)),
            (Action(CodeWord(address), BitFlip(mask)),),
            when=WhenPolicy.once(),
        )
    else:  # HW_BUS: transient corruption of one random instruction fetch
        address = code_base + 4 * rng.randrange((code_end - code_base) // 4)
        spec = MachineFault(
            identifier,
            OpcodeFetch(address),
            (Action(FetchedWord(), BitFlip(mask)),),
            when=WhenPolicy.nth(rng.randint(1, 50)),
        )
    return spec.with_metadata(
        program=compiled.name,
        klass="hardware",
        error_type=klass,
        error_label=klass,
        bits=bin(mask).count("1"),
    )


def generate_hardware_fault_set(
    compiled: CompiledProgram,
    count: int,
    rng: random.Random,
    model: HardwareFaultModel | None = None,
) -> list[MachineFault]:
    """A population of *count* random hardware faults."""
    return [
        generate_hardware_fault(compiled, rng, model, fault_id=f"hw:{compiled.name}:{index}")
        for index in range(count)
    ]

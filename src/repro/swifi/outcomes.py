"""Failure-mode classification (§6.2 of the paper).

The four failure modes, verbatim from the paper:

* **Correct results** — program terminated normally and the output is
  correct;
* **Incorrect results** — program terminated normally but the output is
  incorrect;
* **Program hang** — the program hangs (possibly went into a dead loop)
  and was terminated by the experiment manager software after a timeout;
* **Program crash** — the program terminated abnormally and generated
  errors detected by the system (incorrect instructions, etc).

Our "timeout" is an instruction budget (calibrated per input from the
fault-free run); "errors detected by the system" are machine traps.
Runaway console output is treated as a hang — the real experiment
manager's timeout would kill it, nothing in the processor traps on it.
"""

from __future__ import annotations

from enum import Enum

from ..machine.machine import RunResult
from ..machine.traps import ConsoleLimitExceeded


class FailureMode(str, Enum):
    CORRECT = "correct"
    INCORRECT = "incorrect"
    HANG = "hang"
    CRASH = "crash"

    @property
    def label(self) -> str:
        return {
            FailureMode.CORRECT: "Correct results",
            FailureMode.INCORRECT: "Incorrect results",
            FailureMode.HANG: "Program hang",
            FailureMode.CRASH: "Program crash",
        }[self]


MODE_ORDER = (
    FailureMode.CORRECT,
    FailureMode.INCORRECT,
    FailureMode.HANG,
    FailureMode.CRASH,
)


def classify(result: RunResult, expected_output: bytes) -> FailureMode:
    """Map a machine run to the paper's failure-mode taxonomy."""
    if result.status == "hung":
        return FailureMode.HANG
    if result.status == "trapped":
        if isinstance(result.trap, ConsoleLimitExceeded):
            return FailureMode.HANG
        return FailureMode.CRASH
    if result.status == "paused":  # pragma: no cover - campaigns never stop here
        raise ValueError("cannot classify a paused run")
    return (
        FailureMode.CORRECT
        if result.console == expected_output
        else FailureMode.INCORRECT
    )

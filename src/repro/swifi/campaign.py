"""Experiment management: the paper's host-side campaign software.

Xception's "Experiment Management software ... is responsible for the
fault definition, experiment execution control, outcome collection, and
some preliminary results analysis".  :class:`CampaignRunner` plays that
role here:

* it calibrates a per-input instruction budget from the fault-free run
  (the experiment manager's hang timeout), verifying at the same time
  that the program's fault-free output matches the oracle;
* it boots a **fresh machine for every injection run** ("the target
  system is rebooted between injections to assure a clean state");
* one run = one fault × one input data set; the fault's trigger may fire
  many times within the run ("each program run corresponds to one fault,
  no matter the number of times the fault is triggered");
* it classifies every run into the four failure modes and keeps the
  fault's metadata alongside, so results can be sliced by program, error
  type, ODC class, trigger kind, …
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..lang.compiler import CompiledProgram
from ..machine.loader import boot
from ..persist import atomic_write_json
from .faults import FaultSpec
from .injector import InjectionSession
from .outcomes import MODE_ORDER, FailureMode, classify

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..machine.loader import Executable
    from ..orchestrator.telemetry import TelemetrySink

DEFAULT_BUDGET_FACTOR = 15
DEFAULT_MIN_BUDGET = 100_000

PokeValue = int | list[int] | bytes


class CampaignError(RuntimeError):
    """Raised when the fault-free program disagrees with its oracle."""


@dataclass(frozen=True)
class InputCase:
    """One input data set: global pokes plus the oracle's expected output."""

    case_id: str
    pokes: Mapping[str, PokeValue]
    expected: bytes


@dataclass(frozen=True)
class RunRecord:
    """The outcome of one injection run."""

    fault_id: str
    case_id: str
    mode: FailureMode
    status: str
    exit_code: int | None
    trap_kind: str | None
    activations: int
    injections: int
    instructions: int
    metadata: tuple[tuple[str, object], ...] = ()

    @property
    def meta(self) -> dict[str, object]:
        return dict(self.metadata)

    def to_dict(self) -> dict[str, object]:
        return {
            "fault_id": self.fault_id,
            "case_id": self.case_id,
            "mode": self.mode.value,
            "status": self.status,
            "exit_code": self.exit_code,
            "trap_kind": self.trap_kind,
            "activations": self.activations,
            "injections": self.injections,
            "instructions": self.instructions,
            "metadata": dict(self.metadata),
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunRecord":
        return RunRecord(
            fault_id=payload["fault_id"],
            case_id=payload["case_id"],
            mode=FailureMode(payload["mode"]),
            status=payload["status"],
            exit_code=payload["exit_code"],
            trap_kind=payload["trap_kind"],
            activations=payload["activations"],
            injections=payload["injections"],
            instructions=payload["instructions"],
            metadata=tuple(sorted(payload.get("metadata", {}).items())),
        )


@dataclass
class CampaignResult:
    """All run records of one campaign, with slicing helpers."""

    program: str
    records: list[RunRecord] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return len(self.records)

    def tally(self, records: Iterable[RunRecord] | None = None) -> Counter:
        counter: Counter = Counter()
        for record in self.records if records is None else records:
            counter[record.mode] += 1
        return counter

    def percentages(self, records: Iterable[RunRecord] | None = None) -> dict[FailureMode, float]:
        subset = list(self.records if records is None else records)
        total = len(subset) or 1
        counts = self.tally(subset)
        return {mode: 100.0 * counts.get(mode, 0) / total for mode in MODE_ORDER}

    def by_metadata(self, key: str) -> dict[object, list[RunRecord]]:
        groups: dict[object, list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.meta.get(key), []).append(record)
        return groups

    def dormant_fraction(self) -> float:
        """Share of runs whose fault never actually injected an error."""
        if not self.records:
            return 0.0
        dormant = sum(1 for record in self.records if record.injections == 0)
        return dormant / len(self.records)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult(program=self.program)
        merged.records = self.records + other.records
        return merged

    # -- persistence -----------------------------------------------------

    def to_json(self, path: str) -> None:
        payload = {
            "program": self.program,
            "records": [record.to_dict() for record in self.records],
        }
        atomic_write_json(path, payload)

    @staticmethod
    def from_json(path: str) -> "CampaignResult":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        result = CampaignResult(program=payload["program"])
        result.records = [RunRecord.from_dict(entry) for entry in payload["records"]]
        return result


def execute_injection_run(
    executable: "Executable",
    spec: FaultSpec | None,
    case: InputCase,
    *,
    budget: int,
    num_cores: int = 1,
    quantum: int = 64,
) -> RunRecord:
    """One injection run: fresh boot, arm, execute, classify.

    This is the unit of work both the serial :class:`CampaignRunner` loop
    and the orchestrator's worker processes execute — keeping it a plain
    module-level function of picklable arguments is what lets a shard be
    shipped to a fresh process (the paper's "the target system is rebooted
    between injections" becomes "a fresh machine in a fresh worker").
    """
    machine = boot(executable, num_cores=num_cores, inputs=dict(case.pokes))
    session = InjectionSession(machine)
    if spec is not None:
        session.arm(spec)
    result = session.run(budget, quantum=quantum)
    mode = classify(result, case.expected)
    fault_id = spec.fault_id if spec is not None else "none"
    return RunRecord(
        fault_id=fault_id,
        case_id=case.case_id,
        mode=mode,
        status=result.status,
        exit_code=result.exit_code,
        trap_kind=result.trap.kind if result.trap is not None else None,
        activations=session.activation_count(fault_id),
        injections=session.injection_count(fault_id),
        instructions=result.instructions,
        metadata=spec.metadata if spec is not None else (),
    )


class CampaignRunner:
    """Runs faults × inputs against one compiled program."""

    def __init__(
        self,
        compiled: CompiledProgram,
        cases: list[InputCase],
        *,
        num_cores: int = 1,
        budget_factor: int = DEFAULT_BUDGET_FACTOR,
        min_budget: int = DEFAULT_MIN_BUDGET,
        quantum: int = 64,
    ) -> None:
        if not cases:
            raise ValueError("a campaign needs at least one input case")
        self.compiled = compiled
        self.cases = cases
        self.num_cores = num_cores
        self.budget_factor = budget_factor
        self.min_budget = min_budget
        self.quantum = quantum
        self.budgets: dict[str, int] = {}
        self.golden_instructions: dict[str, int] = {}

    # ------------------------------------------------------------------

    def calibrate_case(self, case: InputCase) -> None:
        """Fault-free run of one input: oracle check + hang-budget derivation."""
        machine = boot(
            self.compiled.executable, num_cores=self.num_cores, inputs=dict(case.pokes)
        )
        result = machine.run(quantum=self.quantum)
        if result.status != "exited":
            raise CampaignError(
                f"{self.compiled.name}/{case.case_id}: fault-free run did not "
                f"exit cleanly (status={result.status})"
            )
        if result.console != case.expected:
            raise CampaignError(
                f"{self.compiled.name}/{case.case_id}: fault-free output "
                f"{result.console[:80]!r} differs from oracle {case.expected[:80]!r}"
            )
        self.golden_instructions[case.case_id] = result.instructions
        self.budgets[case.case_id] = max(
            self.min_budget, result.instructions * self.budget_factor
        )

    def calibrate(self) -> None:
        """Fault-free run per input: oracle check + hang-budget derivation."""
        for case in self.cases:
            if case.case_id not in self.budgets:
                self.calibrate_case(case)

    def _budget_for(self, case: InputCase) -> int:
        if case.case_id not in self.budgets:
            self.calibrate_case(case)
        return self.budgets[case.case_id]

    # ------------------------------------------------------------------

    def run_one(self, spec: FaultSpec | None, case: InputCase) -> RunRecord:
        """One injection run: fresh boot, arm, execute, classify."""
        return execute_injection_run(
            self.compiled.executable,
            spec,
            case,
            budget=self._budget_for(case),
            num_cores=self.num_cores,
            quantum=self.quantum,
        )

    def run(
        self,
        faults: list[FaultSpec],
        progress: Callable[[int, int], None] | None = None,
        *,
        jobs: int = 1,
        journal_dir: str | None = None,
        resume: bool = False,
        seed: int = 0,
        telemetry: "TelemetrySink | None" = None,
        label: str | None = None,
    ) -> CampaignResult:
        """The full campaign: every fault against every input case.

        With the defaults (``jobs=1``, no journal) this is the classic
        serial loop.  Any other combination delegates to the
        :mod:`repro.orchestrator` subsystem: the (fault, case) matrix is
        partitioned into shards, executed by fresh worker processes, and
        journaled so an interrupted campaign can ``resume``.  Results are
        bit-identical to the serial loop in every configuration.
        """
        if jobs == 1 and journal_dir is None and telemetry is None:
            self.calibrate()
            result = CampaignResult(program=self.compiled.name)
            total = len(faults) * len(self.cases)
            done = 0
            for spec in faults:
                for case in self.cases:
                    result.records.append(self.run_one(spec, case))
                    done += 1
                    if progress is not None:
                        progress(done, total)
            return result

        from ..orchestrator import CampaignOrchestrator, OrchestratorOptions

        orchestrator = CampaignOrchestrator.from_runner(
            self,
            faults,
            options=OrchestratorOptions(
                jobs=jobs, journal_dir=journal_dir, resume=resume, seed=seed
            ),
            telemetry=telemetry,
            progress=progress,
            label=label,
        )
        return orchestrator.run().result

"""Experiment management: the paper's host-side campaign software.

Xception's "Experiment Management software ... is responsible for the
fault definition, experiment execution control, outcome collection, and
some preliminary results analysis".  :class:`CampaignRunner` plays that
role here:

* it calibrates a per-input instruction budget from the fault-free run
  (the experiment manager's hang timeout), verifying at the same time
  that the program's fault-free output matches the oracle;
* it boots a **fresh machine for every injection run** ("the target
  system is rebooted between injections to assure a clean state");
* one run = one fault × one input data set; the fault's trigger may fire
  many times within the run ("each program run corresponds to one fault,
  no matter the number of times the fault is triggered");
* it classifies every run into the four failure modes and keeps the
  fault's metadata alongside, so results can be sliced by program, error
  type, ODC class, trigger kind, …
"""

from __future__ import annotations

import json
import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from ..lang.compiler import CompiledProgram
from ..machine.loader import boot
from ..machine.machine import ENGINE_BLOCK, ENGINE_SIMPLE, ENGINE_TRACE, ENGINES
from ..observability import trace as _trace
from ..persist import atomic_write_json
from .faults import MachineFault
from .injector import InjectionSession
from .outcomes import MODE_ORDER, FailureMode, classify
from .spec import (
    InjectionSpec,
    LegacyCampaignAPIWarning,
    TIER_MACHINE,
    TIER_SOURCE,
    TIERS,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..machine.loader import Executable
    from ..orchestrator.telemetry import TelemetrySink
    from ..planning import PlannerCache
    from .snapshot import SnapshotCache

DEFAULT_BUDGET_FACTOR = 15
DEFAULT_MIN_BUDGET = 100_000

#: Snapshot fast-path policies (see repro/swifi/snapshot.py).
SNAPSHOT_OFF = "off"        # fresh boot per run, as in the paper
SNAPSHOT_AUTO = "auto"      # restore a golden-run snapshot when provably safe
SNAPSHOT_VERIFY = "verify"  # run both paths, raise on any outcome divergence
SNAPSHOT_POLICIES = (SNAPSHOT_OFF, SNAPSHOT_AUTO, SNAPSHOT_VERIFY)

#: Version of the CampaignResult JSON schema (see CampaignResult.to_json).
RESULT_SCHEMA_VERSION = 2

PokeValue = int | list[int] | bytes


class CampaignError(RuntimeError):
    """Raised when the fault-free program disagrees with its oracle."""


# LegacyCampaignAPIWarning historically lived here; it moved to
# repro.swifi.spec when the legacy FaultSpec/FaultDescriptor constructor
# shims started emitting it too.  Re-exported so existing warning filters
# keyed on "repro.swifi.campaign.LegacyCampaignAPIWarning" keep working.


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that shapes *how* a campaign executes (never *what*).

    One frozen value object instead of a sprawl of keyword arguments:

    * ``jobs`` — worker processes (1 = the classic serial loop);
    * ``journal_dir``/``resume`` — JSONL journal of completed runs, and
      whether to continue from it instead of re-running;
    * ``seed`` — campaign seed for per-shard RNG streams;
    * ``snapshot`` — the golden-run snapshot fast path: ``"off"`` boots a
      fresh machine per run, ``"auto"`` restores a snapshot whenever the
      fault is provably equivalent (falling back to fresh boot for
      temporal triggers, trap-insertion mode, multi-core machines, and
      never-activated triggers on a non-exiting golden run), and
      ``"verify"`` runs both paths and raises on any divergence;
    * ``telemetry``/``label`` — live telemetry sink and display label;
    * ``trace`` — per-run span tracing (:mod:`repro.observability`): each
      run's phase timings, execution path and fallback reason are
      journaled beside its record and aggregated into telemetry; read
      them back with ``repro trace report``;
    * ``engine`` — the machine's execution engine: ``"simple"`` is the
      per-instruction interpreter, ``"block"`` the block-compiling engine
      (:mod:`repro.machine.blocks`), which is faster and falls back to
      the interpreter around every fault-injection hook;
    * ``prune``/``memoize`` — the campaign planner
      (:mod:`repro.planning`): ``prune`` statically synthesizes records
      for provably dormant / invisible faults without booting a machine,
      ``memoize`` replays cached outcomes of behaviourally identical
      runs; ``memo_dir`` persists the memo on disk (append-only JSONL)
      so it survives kill + resume and warms later campaigns;
    * ``plan_verify`` — re-execute this fraction of pruned/memoized
      records with a real fresh-boot run and raise
      :class:`repro.planning.PlanningDivergence` on any mismatch
      (``1.0`` in the CI smoke job keeps the planner honest);
    * ``budget_factor``/``min_budget`` — override the runner's hang
      budget calibration (``None`` keeps the runner's values);
    * ``tier`` — which injection backend realizes the fault list:
      ``"machine"`` arms :class:`MachineFault` specs on the original
      binary (the paper's SWIFI tool), ``"source"`` compiles each
      :class:`repro.srcfi.SourceFault` mutation into a mutant binary and
      runs it fault-free through the same record pipeline;
    * ``opt_level`` — the optimization level the target binary was
      compiled at (0 or 1); the runner refuses a compiled program whose
      ``opt_level`` disagrees, so campaign records always name the
      binary they actually ran against.

    Results are bit-identical across every combination of these options.
    """

    jobs: int = 1
    journal_dir: str | None = None
    resume: bool = False
    seed: int = 0
    snapshot: str = SNAPSHOT_OFF
    telemetry: "TelemetrySink | None" = None
    label: str | None = None
    trace: bool = False
    engine: str = ENGINE_SIMPLE
    budget_factor: int | None = None
    min_budget: int | None = None
    prune: bool = False
    memoize: bool = False
    memo_dir: str | None = None
    plan_verify: float = 0.0
    tier: str = TIER_MACHINE
    opt_level: int = 0

    def __post_init__(self) -> None:
        if self.opt_level not in (0, 1):
            raise ValueError(
                f"opt_level must be 0 or 1, got {self.opt_level!r}"
            )
        if self.tier not in TIERS:
            raise ValueError(
                f"tier must be one of {TIERS}, got {self.tier!r}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.snapshot not in SNAPSHOT_POLICIES:
            raise ValueError(
                f"snapshot must be one of {SNAPSHOT_POLICIES}, got {self.snapshot!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.resume and self.journal_dir is None:
            raise ValueError("resume=True needs a journal_dir to resume from")
        if self.memo_dir is not None and not self.memoize:
            raise ValueError("memo_dir needs memoize=True")
        if not 0.0 <= self.plan_verify <= 1.0:
            raise ValueError(
                f"plan_verify must be in [0, 1], got {self.plan_verify!r}"
            )
        if self.plan_verify > 0.0 and not (self.prune or self.memoize):
            raise ValueError(
                "plan_verify needs the planner on (prune and/or memoize)"
            )


#: run() keyword arguments accepted by the deprecated pre-config API.
_LEGACY_RUN_KEYS = frozenset(
    {"jobs", "journal_dir", "resume", "seed", "telemetry", "label"}
)


@dataclass(frozen=True)
class InputCase:
    """One input data set: global pokes plus the oracle's expected output."""

    case_id: str
    pokes: Mapping[str, PokeValue]
    expected: bytes


@dataclass(frozen=True)
class RunRecord:
    """The outcome of one injection run."""

    fault_id: str
    case_id: str
    mode: FailureMode
    status: str
    exit_code: int | None
    trap_kind: str | None
    activations: int
    injections: int
    instructions: int
    metadata: tuple[tuple[str, object], ...] = ()
    #: How the record was obtained: "executed" (a real run), "pruned"
    #: (synthesized by the planner's dormancy prover) or "memoized"
    #: (replayed from the outcome memo).  Excluded from equality: the
    #: planner's contract is that every *outcome* field is bit-identical
    #: regardless of provenance, and the differential oracle holds it to
    #: that.
    provenance: str = field(default="executed", compare=False)

    @property
    def meta(self) -> dict[str, object]:
        return dict(self.metadata)

    def to_dict(self) -> dict[str, object]:
        """Schema-v2 payload: metadata as an ordered list of [key, value].

        Metadata order is part of the fault's identity (``MachineFault`` keeps
        it as a tuple of pairs), so serialising through a plain JSON object
        and re-sorting on load — the schema-v1 behaviour — silently
        reordered it and broke record round-trip equality.
        """
        return {
            "fault_id": self.fault_id,
            "case_id": self.case_id,
            "mode": self.mode.value,
            "status": self.status,
            "exit_code": self.exit_code,
            "trap_kind": self.trap_kind,
            "activations": self.activations,
            "injections": self.injections,
            "instructions": self.instructions,
            "metadata": [[key, value] for key, value in self.metadata],
            "provenance": self.provenance,
        }

    @staticmethod
    def from_dict(payload: dict) -> "RunRecord":
        raw = payload.get("metadata") or {}
        if isinstance(raw, Mapping):  # schema v1: a JSON object, file order
            pairs = tuple((key, value) for key, value in raw.items())
        else:  # schema v2: ordered [key, value] pairs
            pairs = tuple((key, value) for key, value in raw)
        return RunRecord(
            fault_id=payload["fault_id"],
            case_id=payload["case_id"],
            mode=FailureMode(payload["mode"]),
            status=payload["status"],
            exit_code=payload["exit_code"],
            trap_kind=payload["trap_kind"],
            activations=payload["activations"],
            injections=payload["injections"],
            instructions=payload["instructions"],
            metadata=pairs,
            provenance=payload.get("provenance", "executed"),
        )


@dataclass
class CampaignResult:
    """All run records of one campaign, with slicing helpers."""

    program: str
    records: list[RunRecord] = field(default_factory=list)

    @property
    def total_runs(self) -> int:
        return len(self.records)

    def tally(self, records: Iterable[RunRecord] | None = None) -> Counter:
        counter: Counter = Counter()
        for record in self.records if records is None else records:
            counter[record.mode] += 1
        return counter

    def percentages(self, records: Iterable[RunRecord] | None = None) -> dict[FailureMode, float]:
        subset = list(self.records if records is None else records)
        total = len(subset) or 1
        counts = self.tally(subset)
        return {mode: 100.0 * counts.get(mode, 0) / total for mode in MODE_ORDER}

    def by_metadata(self, key: str) -> dict[object, list[RunRecord]]:
        groups: dict[object, list[RunRecord]] = {}
        for record in self.records:
            groups.setdefault(record.meta.get(key), []).append(record)
        return groups

    def dormant_fraction(self) -> float:
        """Share of runs whose fault never actually injected an error."""
        if not self.records:
            return 0.0
        dormant = sum(1 for record in self.records if record.injections == 0)
        return dormant / len(self.records)

    def merge(self, other: "CampaignResult") -> "CampaignResult":
        merged = CampaignResult(program=self.program)
        merged.records = self.records + other.records
        return merged

    # -- persistence -----------------------------------------------------

    def to_json(self, path: str) -> None:
        """Write the documented, versioned campaign-result schema.

        Schema v2 (``"schema": 2``)::

            {
              "schema": 2,
              "program": "<program name>",
              "records": [
                {"fault_id": str, "case_id": str, "mode": str,
                 "status": str, "exit_code": int|null, "trap_kind": str|null,
                 "activations": int, "injections": int, "instructions": int,
                 "metadata": [[key, value], ...]},   # order-preserving
                ...
              ]
            }

        v1 files (no ``schema`` key; ``metadata`` as a JSON object) are
        still readable by :meth:`from_json`.
        """
        payload = {
            "schema": RESULT_SCHEMA_VERSION,
            "program": self.program,
            "records": [record.to_dict() for record in self.records],
        }
        atomic_write_json(path, payload)

    @staticmethod
    def from_json(path: str) -> "CampaignResult":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = payload.get("schema", 1)
        if schema not in (1, RESULT_SCHEMA_VERSION):
            raise ValueError(
                f"{path}: unsupported campaign-result schema {schema!r} "
                f"(this build reads 1..{RESULT_SCHEMA_VERSION})"
            )
        result = CampaignResult(program=payload["program"])
        result.records = [RunRecord.from_dict(entry) for entry in payload["records"]]
        return result


def execute_injection_run(
    executable: "Executable",
    spec: MachineFault | None,
    case: InputCase,
    *,
    budget: int,
    num_cores: int = 1,
    quantum: int = 64,
    snapshots: "SnapshotCache | None" = None,
    engine: str = ENGINE_SIMPLE,
    planner: "PlannerCache | None" = None,
) -> RunRecord:
    """One injection run: fresh boot, arm, execute, classify.

    This is the unit of work both the serial :class:`CampaignRunner` loop
    and the orchestrator's worker processes execute — keeping it a plain
    module-level function of picklable arguments is what lets a shard be
    shipped to a fresh process (the paper's "the target system is rebooted
    between injections" becomes "a fresh machine in a fresh worker").

    With a :class:`repro.planning.PlannerCache` (per process, like the
    snapshot cache), the run is first offered to the campaign planner:
    provably dormant/invisible faults get their record synthesized and
    memoized repeats replay their cached outcome, no machine involved.
    Whatever the planner declines flows to the snapshot fast path and
    finally the fresh-boot path below, and the resulting record is fed
    back so the outcome memo warms as the campaign proceeds.

    With a :class:`repro.swifi.snapshot.SnapshotCache` (built per process
    / per shard — it is deliberately not picklable state), eligible runs
    restore a golden-run snapshot at the trigger's first activation
    instead of re-booting; the cache falls back to the fresh-boot path
    below whenever equivalence cannot be proven.
    """
    fault_id = spec.fault_id if spec is not None else "none"
    run_trace = _trace.begin_run(fault_id, case.case_id)
    try:
        if planner is not None and spec is not None:
            record = planner.execute(spec, case, budget)
            if record is not None:
                if run_trace is not None:
                    path, reason = planner.last_path
                    run_trace.set_path(path, reason)
                _trace.end_run(run_trace, record)
                return record
        if snapshots is not None and spec is not None:
            record = snapshots.execute(spec, case, budget)
            if run_trace is not None:
                path, reason = snapshots.last_path
                run_trace.set_path(path, reason)
            if record is not None:
                if planner is not None:
                    # snapshot-path outcomes are real executions — warm
                    # the memo with them too
                    planner.record_executed(spec, case, budget, record)
                _trace.end_run(run_trace, record)
                return record
        with _trace.phase(_trace.PHASE_BOOT):
            machine = boot(
                executable, num_cores=num_cores, inputs=dict(case.pokes),
                engine=engine,
            )
        session = InjectionSession(machine)
        if spec is not None:
            session.arm(spec)
        with _trace.phase(_trace.PHASE_EXECUTE):
            result = session.run(budget, quantum=quantum)
        with _trace.phase(_trace.PHASE_CLASSIFY):
            mode = classify(result, case.expected)
        record = RunRecord(
            fault_id=fault_id,
            case_id=case.case_id,
            mode=mode,
            status=result.status,
            exit_code=result.exit_code,
            trap_kind=result.trap.kind if result.trap is not None else None,
            activations=session.activation_count(fault_id),
            injections=session.injection_count(fault_id),
            instructions=result.instructions,
            metadata=spec.metadata if spec is not None else (),
        )
        if planner is not None:
            planner.record_executed(spec, case, budget, record)
        _trace.end_run(run_trace, record)
        return record
    except BaseException:
        _trace.abort_run(run_trace)
        raise


class CampaignRunner:
    """Runs faults × inputs against one compiled program."""

    def __init__(
        self,
        compiled: CompiledProgram,
        cases: list[InputCase],
        *,
        num_cores: int = 1,
        budget_factor: int = DEFAULT_BUDGET_FACTOR,
        min_budget: int = DEFAULT_MIN_BUDGET,
        quantum: int = 64,
    ) -> None:
        if not cases:
            raise ValueError("a campaign needs at least one input case")
        self.compiled = compiled
        self.cases = cases
        self.num_cores = num_cores
        self.budget_factor = budget_factor
        self.min_budget = min_budget
        self.quantum = quantum
        self.engine = ENGINE_SIMPLE  # set per-campaign from CampaignConfig
        self.budgets: dict[str, int] = {}
        self.golden_instructions: dict[str, int] = {}

    # ------------------------------------------------------------------

    def calibrate_case(self, case: InputCase) -> None:
        """Fault-free run of one input: oracle check + hang-budget derivation."""
        machine = boot(
            self.compiled.executable, num_cores=self.num_cores,
            inputs=dict(case.pokes), engine=self.engine,
        )
        result = machine.run(quantum=self.quantum)
        if result.status != "exited":
            raise CampaignError(
                f"{self.compiled.name}/{case.case_id}: fault-free run did not "
                f"exit cleanly (status={result.status})"
            )
        if result.console != case.expected:
            raise CampaignError(
                f"{self.compiled.name}/{case.case_id}: fault-free output "
                f"{result.console[:80]!r} differs from oracle {case.expected[:80]!r}"
            )
        self.golden_instructions[case.case_id] = result.instructions
        self.budgets[case.case_id] = max(
            self.min_budget, result.instructions * self.budget_factor
        )

    def calibrate(self) -> None:
        """Fault-free run per input: oracle check + hang-budget derivation."""
        for case in self.cases:
            if case.case_id not in self.budgets:
                self.calibrate_case(case)

    def _budget_for(self, case: InputCase) -> int:
        if case.case_id not in self.budgets:
            self.calibrate_case(case)
        return self.budgets[case.case_id]

    # ------------------------------------------------------------------

    def run_one(self, spec: MachineFault | None, case: InputCase) -> RunRecord:
        """One injection run: fresh boot, arm, execute, classify."""
        return execute_injection_run(
            self.compiled.executable,
            spec,
            case,
            budget=self._budget_for(case),
            num_cores=self.num_cores,
            quantum=self.quantum,
            engine=self.engine,
        )

    def _apply_budget_overrides(self, config: CampaignConfig) -> None:
        if config.budget_factor is None and config.min_budget is None:
            return
        factor = self.budget_factor if config.budget_factor is None else config.budget_factor
        floor = self.min_budget if config.min_budget is None else config.min_budget
        if (factor, floor) != (self.budget_factor, self.min_budget):
            self.budget_factor = factor
            self.min_budget = floor
            self.budgets.clear()  # recalibrate under the new budget rule
            self.golden_instructions.clear()

    def run(
        self,
        faults: "list[InjectionSpec]",
        progress: Callable[[int, int], None] | None = None,
        *,
        config: CampaignConfig | None = None,
        **legacy,
    ) -> CampaignResult:
        """The full campaign: every fault against every input case.

        Execution options ride in one :class:`CampaignConfig`.  With the
        default config this is the classic serial loop; ``jobs > 1``, a
        ``journal_dir`` or a ``telemetry`` sink delegate to the
        :mod:`repro.orchestrator` subsystem (sharded worker pool,
        resumable journal), and ``snapshot`` enables the golden-run
        restore fast path.  Results are bit-identical to the plain serial
        loop in every configuration.

        The pre-config keyword arguments (``jobs=``, ``journal_dir=``,
        ``resume=``, ``seed=``, ``telemetry=``, ``label=``) still work but
        emit :class:`LegacyCampaignAPIWarning`.
        """
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass config=CampaignConfig(...) or the legacy keyword "
                    "arguments, not both"
                )
            unknown = set(legacy) - _LEGACY_RUN_KEYS
            if unknown:
                raise TypeError(
                    f"unknown campaign option(s): {sorted(unknown)}; "
                    "see CampaignConfig"
                )
            warnings.warn(
                "CampaignRunner.run(jobs=..., journal_dir=..., ...) is "
                "deprecated; pass config=CampaignConfig(...) instead",
                LegacyCampaignAPIWarning,
                stacklevel=2,
            )
            config = CampaignConfig(**legacy)
        elif config is None:
            config = CampaignConfig()
        self._apply_budget_overrides(config)
        if config.opt_level != self.compiled.opt_level:
            raise CampaignError(
                f"{self.compiled.name}: campaign config says opt_level="
                f"{config.opt_level} but the compiled program was built at "
                f"opt_level={self.compiled.opt_level}"
            )
        if config.engine != self.engine:
            self.engine = config.engine
            # Budgets are engine-independent (instret is bit-identical),
            # so calibrations from a previous engine remain valid.

        if config.tier == TIER_SOURCE:
            # Source-tier faults are AST mutations: each one compiles to
            # a mutant binary that runs fault-free through the same
            # record pipeline.  Lazy import: srcfi sits above swifi.
            from ..srcfi.campaign import run_source_campaign

            return run_source_campaign(self, faults, config, progress)

        if (
            config.jobs == 1
            and config.journal_dir is None
            and config.telemetry is None
            and not config.trace
        ):
            self.calibrate()
            snapshots = None
            if config.snapshot != SNAPSHOT_OFF:
                from .snapshot import SnapshotCache

                snapshots = SnapshotCache(
                    self.compiled.executable,
                    faults,
                    num_cores=self.num_cores,
                    quantum=self.quantum,
                    policy=config.snapshot,
                    engine=config.engine,
                )
            planner = None
            if config.prune or config.memoize:
                from ..planning import PlannerCache

                planner = PlannerCache(
                    self.compiled.executable,
                    faults,
                    num_cores=self.num_cores,
                    quantum=self.quantum,
                    engine=config.engine,
                    prune=config.prune,
                    memoize=config.memoize,
                    memo_dir=config.memo_dir,
                    verify_fraction=config.plan_verify,
                    seed=config.seed,
                )
            result = CampaignResult(program=self.compiled.name)
            total = len(faults) * len(self.cases)
            done = 0
            try:
                for spec in faults:
                    for case in self.cases:
                        result.records.append(
                            execute_injection_run(
                                self.compiled.executable,
                                spec,
                                case,
                                budget=self._budget_for(case),
                                num_cores=self.num_cores,
                                quantum=self.quantum,
                                snapshots=snapshots,
                                engine=config.engine,
                                planner=planner,
                            )
                        )
                        done += 1
                        if progress is not None:
                            progress(done, total)
            finally:
                if planner is not None:
                    planner.close()
            return result

        from ..orchestrator import CampaignOrchestrator, OrchestratorOptions

        orchestrator = CampaignOrchestrator.from_runner(
            self,
            faults,
            options=OrchestratorOptions(
                jobs=config.jobs,
                journal_dir=config.journal_dir,
                resume=config.resume,
                seed=config.seed,
                snapshot=config.snapshot,
                trace=config.trace,
                engine=config.engine,
                prune=config.prune,
                memoize=config.memoize,
                memo_dir=config.memo_dir,
                plan_verify=config.plan_verify,
            ),
            telemetry=config.telemetry,
            progress=progress,
            label=config.label,
        )
        return orchestrator.run().result

"""The injection engine — the reproduction's Xception.

An :class:`InjectionSession` owns one booted machine, arms fault
specifications on its debug unit, counts trigger activations and actual
injections, and drives execution (including the pause/resume dance that
implements temporal triggers).

Faithfulness notes:

* In ``MODE_BREAKPOINT`` the session programs the machine's two
  instruction-address breakpoint registers.  A fault whose emulation needs
  more than two trigger addresses fails with
  :class:`repro.machine.DebugResourceError` — reproducing the paper's §5
  finding that the stack-shift assignment fault "could not entirely" be
  emulated because "the processor breakpoint registers ... are only two in
  the PowerPC".
* In ``MODE_TRAP`` the session rewrites target words with trap
  instructions (unlimited triggers, but the program image is modified —
  the "very intrusive" traditional approach).
* The target program is never recompiled or instrumented at source level;
  everything goes through the debug port, exactly as Xception works.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..machine.debug import DebugResourceError
from ..machine.machine import DEFAULT_BUDGET, Machine, RunResult
from .faults import (
    MODE_BREAKPOINT,
    MODE_TRAP,
    Action,
    CodeWord,
    DataAccess,
    MachineFault,
    FetchedWord,
    LoadValue,
    MemoryWord,
    OpcodeFetch,
    RegisterTarget,
    StoreValue,
    Temporal,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.cpu import Core


class InjectionError(RuntimeError):
    """A fault spec that cannot be armed on this machine."""


class InjectionSession:
    """Arms faults on one machine and runs it to an outcome."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.activations: dict[str, int] = {}
        self.injections: dict[str, int] = {}
        self.first_injection_instret: dict[str, int] = {}
        self._temporal: list[MachineFault] = []
        self._armed: list[MachineFault] = []

    # ------------------------------------------------------------------

    def arm(self, spec: MachineFault) -> None:
        """Program the debug unit (or the temporal queue) for *spec*.

        Raises :class:`DebugResourceError` when breakpoint-register mode
        runs out of hardware breakpoints, and :class:`InjectionError` for
        specs that are structurally impossible (e.g. a fetch-bus corruption
        on a temporal trigger).
        """
        trigger = spec.trigger
        if isinstance(trigger, OpcodeFetch):
            handler = self._make_fetch_handler(spec)
            if spec.mode == MODE_BREAKPOINT:
                self.machine.debug.set_iabr(trigger.address, handler)
            else:
                assert spec.mode == MODE_TRAP
                self.machine.debug.insert_trap(trigger.address, handler)
        elif isinstance(trigger, DataAccess):
            for action in spec.actions:
                if isinstance(action.location, (FetchedWord,)):
                    raise InjectionError(
                        "a data-access trigger cannot corrupt the fetched opcode"
                    )
            handler = self._make_data_handler(spec)
            self.machine.debug.set_dabr(
                trigger.address, handler, on_load=trigger.on_load, on_store=trigger.on_store
            )
        elif isinstance(trigger, Temporal):
            for action in spec.actions:
                if isinstance(action.location, FetchedWord):
                    raise InjectionError(
                        "a temporal trigger cannot corrupt the fetched opcode"
                    )
            self._temporal.append(spec)
        else:  # pragma: no cover - exhaustive over trigger types
            raise InjectionError(f"unknown trigger {trigger!r}")
        self._armed.append(spec)

    def arm_all(self, specs: list[MachineFault]) -> None:
        for spec in specs:
            self.arm(spec)

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = DEFAULT_BUDGET, quantum: int = 64) -> RunResult:
        """Run the machine to completion, applying temporal faults on time."""
        pending = sorted(self._temporal, key=lambda s: s.trigger.instructions)
        budget_end = self.machine.instret + max_instructions
        for spec in pending:
            target = spec.trigger.instructions
            if target > self.machine.instret:
                result = self.machine.run(
                    max_instructions=budget_end - self.machine.instret,
                    quantum=quantum,
                    pause_at_instret=min(target, budget_end),
                )
                if result.status != "paused":
                    return result
            self._note_activation(spec.fault_id)
            if spec.when.fires(self.activations[spec.fault_id]):
                self._apply_actions(spec, self._pick_core(), None)
        return self.machine.run(
            max_instructions=budget_end - self.machine.instret, quantum=quantum
        )

    def _pick_core(self) -> "Core":
        for core in self.machine.cores:
            if not core.halted:
                return core
        return self.machine.cores[0]

    # ------------------------------------------------------------------

    def _note_activation(self, fault_id: str) -> int:
        count = self.activations.get(fault_id, 0) + 1
        self.activations[fault_id] = count
        return count

    def _note_injection(self, fault_id: str) -> None:
        self.injections[fault_id] = self.injections.get(fault_id, 0) + 1
        if fault_id not in self.first_injection_instret:
            self.first_injection_instret[fault_id] = self.machine.instret

    def _apply_actions(self, spec: MachineFault, core: "Core", word: int | None) -> int | None:
        """Apply every action; return the substitute fetched word, if any."""
        self._note_injection(spec.fault_id)
        machine = self.machine
        substitute: int | None = None
        for action in spec.actions:
            location = action.location
            corruption = action.corruption
            if isinstance(location, FetchedWord):
                base = word if substitute is None else substitute
                assert base is not None
                substitute = corruption.apply(base)
            elif isinstance(location, (CodeWord, MemoryWord)):
                current = machine.memory.debug_read_word(location.address)
                machine.debug_write_code(location.address, corruption.apply(current))
            elif isinstance(location, RegisterTarget):
                core.regs[location.index] = corruption.apply(core.regs[location.index])
                core.regs[0] = 0
            elif isinstance(location, StoreValue):
                core._store_transform = corruption.apply
            elif isinstance(location, LoadValue):
                core._load_transform = corruption.apply
            else:  # pragma: no cover
                raise InjectionError(f"unknown location {location!r}")
        return substitute

    def _make_fetch_handler(self, spec: MachineFault):
        fault_id = spec.fault_id
        when = spec.when

        def on_fetch(core: "Core", pc: int, word: int) -> int | None:
            activation = self._note_activation(fault_id)
            if not when.fires(activation):
                return None
            return self._apply_actions(spec, core, word)

        return on_fetch

    def _make_data_handler(self, spec: MachineFault):
        fault_id = spec.fault_id
        when = spec.when

        def on_access(core: "Core", address: int, value: int) -> int:
            activation = self._note_activation(fault_id)
            if not when.fires(activation):
                return value
            self._note_injection(fault_id)
            for action in spec.actions:
                location = action.location
                if isinstance(location, (LoadValue, StoreValue)):
                    value = action.corruption.apply(value)
                elif isinstance(location, RegisterTarget):
                    core.regs[location.index] = action.corruption.apply(
                        core.regs[location.index]
                    )
                    core.regs[0] = 0
                elif isinstance(location, (CodeWord, MemoryWord)):
                    current = self.machine.memory.debug_read_word(location.address)
                    self.machine.debug_write_code(
                        location.address, action.corruption.apply(current)
                    )
            return value

        return on_access

    # ------------------------------------------------------------------

    def activation_count(self, fault_id: str) -> int:
        return self.activations.get(fault_id, 0)

    def injection_count(self, fault_id: str) -> int:
        return self.injections.get(fault_id, 0)

    @property
    def any_injected(self) -> bool:
        return bool(self.injections)


__all__ = ["InjectionError", "InjectionSession", "DebugResourceError"]

"""The golden-run snapshot fast path for injection campaigns.

The paper reboots the target between all injections; our fresh-boot run
(:func:`repro.swifi.campaign.execute_injection_run`) reproduces that.
But before a fault's trigger fires for the first time, an injection run
*is* the fault-free golden run — so QEMU/GDB-based campaign tools
checkpoint the golden run at the injection point and restore instead of
rebooting.  This module does the same for the RX32 machine while keeping
per-run outcomes bit-identical to fresh boot:

* :class:`CaseTrace` executes **one** golden (fault-free) run per input
  case, pausing at the first activation of every trigger event the
  campaign's fault set uses and checkpointing the machine there
  (:meth:`Machine.snapshot`, a sparse page delta over the post-boot
  baseline);
* an eligible injection run then restores the checkpoint of its fault's
  trigger, arms the fault on a fresh debug unit, and executes only the
  post-trigger suffix of the run;
* a fault whose trigger **never** activates would replay the golden run
  unchanged, so — when the golden run exited within budget — its record
  is synthesised from the golden outcome without executing anything;
* everything else falls back to a fresh boot: temporal triggers (they
  fire by elapsed count, not at an address), trap-insertion mode (the
  program image is patched *before* the run starts, so the prefix is not
  fault-free), multi-core machines (restoring mid-run would realign the
  round-robin quanta), and cache misses.

Why the restored outcome is bit-identical to fresh boot (single core):

1. arming a breakpoint-mode fault mutates no machine state — it only
   fills watch dictionaries consulted by the interpreter;
2. the machine is deterministic (no RNG, no wall clock), so the armed
   run and the golden run are byte-for-byte identical up to the first
   trigger activation;
3. the checkpoint is taken exactly at that boundary — *before* the
   triggering instruction executes (fetch watches fire before the
   instruction is counted; for data watches the in-flight instruction's
   retired-count is rolled back before capturing);
4. the restored run resumes with the same program counter, registers,
   memory, console, heap-allocator state and retired-instruction count,
   and the remaining budget is ``budget - instret`` so the hang horizon
   lands on the same instruction as a fresh-boot run.

``policy="verify"`` turns the argument into a runtime check: every fast
run is replayed fresh-boot and any field-level divergence raises
:class:`SnapshotDivergence`.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from ..machine.loader import Executable, boot
from ..machine.machine import ENGINE_SIMPLE
from ..observability import trace as _trace
from .campaign import (
    SNAPSHOT_AUTO,
    SNAPSHOT_OFF,
    SNAPSHOT_POLICIES,
    SNAPSHOT_VERIFY,
    InputCase,
    RunRecord,
    execute_injection_run,
)
from .faults import MODE_BREAKPOINT, DataAccess, MachineFault, OpcodeFetch, Temporal
from .injector import InjectionSession
from .outcomes import classify

if TYPE_CHECKING:  # pragma: no cover
    from ..machine.machine import Machine, RunResult

#: A trigger event: ("fetch" | "load" | "store", address).
Event = tuple[str, int]
#: A fault's trigger key: the events whose earliest firing activates it.
TriggerKey = tuple[Event, ...]


class SnapshotDivergence(AssertionError):
    """A ``verify``-policy run differed between snapshot and fresh boot."""


class SnapshotPoint(Exception):
    """Internal control-flow: raised by a trace watch to pause the golden run.

    Deliberately *not* a :class:`repro.machine.traps.Trap` subclass — the
    machine's run loop must not classify it as a program crash; it has to
    propagate out to the :class:`CaseTrace` capture loop.
    """

    def __init__(self, event: Event, core) -> None:
        super().__init__(f"snapshot point {event!r}")
        self.event = event
        self.core = core


def trigger_events(spec: MachineFault) -> TriggerKey | None:
    """The trigger's watch events, or ``None`` when ineligible.

    Eligible are spatial triggers armed without touching machine state:
    opcode-fetch in breakpoint mode, and data-access triggers.  Temporal
    triggers and trap-insertion mode return ``None`` (fresh-boot only).
    """
    trigger = spec.trigger
    if isinstance(trigger, OpcodeFetch):
        if spec.mode != MODE_BREAKPOINT:
            return None
        return (("fetch", trigger.address),)
    if isinstance(trigger, DataAccess):
        events: list[Event] = []
        if trigger.on_load:
            events.append(("load", trigger.address))
        if trigger.on_store:
            events.append(("store", trigger.address))
        return tuple(events) or None
    return None


def ineligible_reason(spec: MachineFault, num_cores: int) -> str | None:
    """Why the fast path must decline *spec* up front, or ``None``.

    One of the :data:`repro.observability.trace.FALLBACK_REASONS`:
    ``multi-core`` (restoring mid-run would realign the round-robin
    quanta), ``temporal-trigger`` (fires by elapsed count, not at an
    address), ``trap-mode`` (the program image is patched before the run
    starts, so the prefix is not fault-free).  Anything else without
    watchable trigger events counts as a ``cache-miss``.
    """
    if num_cores != 1:
        return _trace.REASON_MULTI_CORE
    trigger = spec.trigger
    if isinstance(trigger, Temporal):
        return _trace.REASON_TEMPORAL
    if isinstance(trigger, OpcodeFetch) and spec.mode != MODE_BREAKPOINT:
        return _trace.REASON_TRAP_MODE
    if trigger_events(spec) is None:
        return _trace.REASON_CACHE_MISS
    return None


class CaseTrace:
    """Golden-run checkpoints of one (program, input case) pair.

    Boots once, then runs the fault-free program with raising watches on
    every requested trigger event; each first firing checkpoints the
    machine.  The same machine instance is afterwards rewound over and
    over for the case's fast-path injection runs.
    """

    def __init__(
        self,
        executable: Executable,
        case: InputCase,
        keys: set[TriggerKey],
        *,
        budget: int,
        quantum: int,
        engine: str = ENGINE_SIMPLE,
    ) -> None:
        self.case = case
        with _trace.phase(_trace.PHASE_BOOT):
            self.machine: "Machine" = boot(
                executable, num_cores=1, inputs=dict(case.pokes), engine=engine
            )
        self.baseline = self.machine.baseline()
        self.snapshots: dict[TriggerKey, object] = {}
        self.dormant: set[TriggerKey] = set()
        self.golden: "RunResult | None" = None
        with _trace.phase(_trace.PHASE_GOLDEN_RUN):
            self._capture(keys, budget, quantum)

    # -- golden run ----------------------------------------------------

    def _capture(self, keys: set[TriggerKey], budget: int, quantum: int) -> None:
        machine = self.machine
        listeners: dict[Event, list[TriggerKey]] = {}
        for key in keys:
            for event in key:
                listeners.setdefault(event, []).append(key)
        watch_for = {
            "fetch": machine._fetch_watch,
            "load": machine._load_watch,
            "store": machine._store_watch,
        }

        def install(event: Event) -> None:
            kind, address = event
            def raise_point(core, _address, _value, _event=event):
                raise SnapshotPoint(_event, core)
            watch_for[kind][address] = raise_point

        for event in listeners:
            install(event)

        pending = set(keys)
        result: "RunResult | None" = None
        while pending:
            remaining = budget - machine.instret
            if remaining <= 0:
                break
            try:
                result = machine.run(max_instructions=remaining, quantum=quantum)
            except SnapshotPoint as point:
                kind, address = point.event
                if kind != "fetch":
                    # Data watches fire mid-instruction, after the retired
                    # count already includes the in-flight instruction.  It
                    # re-executes in full both on resume here and after a
                    # restore, so roll the count back permanently — the
                    # checkpoint and the resumed golden run then both count
                    # it exactly once.
                    point.core.instret -= 1
                    machine.instret -= 1
                watch_for[kind].pop(address, None)
                snapshot = machine.snapshot(self.baseline)
                for key in listeners[point.event]:
                    if key in pending:
                        self.snapshots[key] = snapshot
                        pending.discard(key)
                # Drop watches nobody is waiting for anymore (a two-event
                # key satisfied by its first event leaves the second armed).
                for event, event_keys in listeners.items():
                    if pending.isdisjoint(event_keys):
                        watch_for[event[0]].pop(event[1], None)
                continue
            break

        for watch in watch_for.values():
            watch.clear()
        if pending and result is not None and result.status == "exited":
            # These triggers never fire: a fresh-boot run would replay the
            # golden run unchanged, so their records can be synthesised.
            self.golden = result
            self.dormant = pending

    # -- fast-path runs ------------------------------------------------

    def _dormant_record(self, spec: MachineFault) -> RunRecord:
        golden = self.golden
        assert golden is not None
        return RunRecord(
            fault_id=spec.fault_id,
            case_id=self.case.case_id,
            mode=classify(golden, self.case.expected),
            status=golden.status,
            exit_code=golden.exit_code,
            trap_kind=None,
            activations=0,
            injections=0,
            instructions=golden.instructions,
            metadata=spec.metadata,
        )

    def run_fast(
        self, spec: MachineFault, key: TriggerKey, budget: int, quantum: int
    ) -> RunRecord | None:
        """One injection run from the trigger's checkpoint; None on miss."""
        snapshot = self.snapshots.get(key)
        if snapshot is None:
            if key in self.dormant:
                return self._dormant_record(spec)
            return None
        machine = self.machine
        machine.restore(snapshot)
        if budget <= machine.instret:  # pragma: no cover - degenerate budgets
            return None
        session = InjectionSession(machine)
        session.arm(spec)
        with _trace.phase(_trace.PHASE_POST_TRIGGER):
            result = session.run(budget - machine.instret, quantum=quantum)
        with _trace.phase(_trace.PHASE_CLASSIFY):
            mode = classify(result, self.case.expected)
        return RunRecord(
            fault_id=spec.fault_id,
            case_id=self.case.case_id,
            mode=mode,
            status=result.status,
            exit_code=result.exit_code,
            trap_kind=result.trap.kind if result.trap is not None else None,
            activations=session.activation_count(spec.fault_id),
            injections=session.injection_count(spec.fault_id),
            instructions=result.instructions,
            metadata=spec.metadata,
        )


class SnapshotCache:
    """Per-process trace cache shared by every run of one campaign shard.

    Holds one :class:`CaseTrace` (a live machine plus its checkpoints)
    per input case, built lazily on the first eligible run.  The cache is
    intentionally not picklable — the orchestrator rebuilds one inside
    each worker process, so snapshots are shared within a shard but never
    shipped across process boundaries.
    """

    def __init__(
        self,
        executable: Executable,
        faults,
        *,
        num_cores: int = 1,
        quantum: int = 64,
        policy: str = SNAPSHOT_AUTO,
        engine: str = ENGINE_SIMPLE,
    ) -> None:
        if policy not in SNAPSHOT_POLICIES or policy == SNAPSHOT_OFF:
            raise ValueError(
                f"snapshot cache policy must be one of "
                f"{(SNAPSHOT_AUTO, SNAPSHOT_VERIFY)}, got {policy!r}"
            )
        self.executable = executable
        self.num_cores = num_cores
        self.quantum = quantum
        self.policy = policy
        self.engine = engine
        # Every eligible trigger key in the campaign, so one golden run
        # per case captures the checkpoints for all of its faults.
        self._keys: set[TriggerKey] = set()
        for spec in faults:
            if spec is None:
                continue
            key = trigger_events(spec)
            if key is not None:
                self._keys.add(key)
        self._traces: dict[str, CaseTrace] = {}
        self.stats = {"fast": 0, "dormant": 0, "fallback": 0, "verified": 0}
        # Per-reason accounting beside the legacy stats dict: the legacy
        # "fallback" key only counts runs the cache *accepted* and then
        # missed on (see execute()); fallback_reasons additionally labels
        # runs declined up front (temporal / trap-mode / multi-core) and
        # dormant synthesis (golden-run-exit).
        self.fallback_reasons: Counter = Counter()
        #: (path, reason) of the most recent execute() call; read by the
        #: trace layer in execute_injection_run (single-threaded per
        #: process, so a plain attribute is race-free).
        self.last_path: tuple[str, str | None] = (_trace.PATH_FRESH, None)

    def wants(self, spec: MachineFault) -> bool:
        """Whether the fast path may handle *spec* (it can still miss)."""
        return self.num_cores == 1 and trigger_events(spec) is not None

    def trace_for(self, case: InputCase, budget: int) -> CaseTrace:
        trace = self._traces.get(case.case_id)
        if trace is None:
            trace = CaseTrace(
                self.executable, case, self._keys, budget=budget,
                quantum=self.quantum, engine=self.engine,
            )
            self._traces[case.case_id] = trace
        return trace

    def execute(self, spec: MachineFault, case: InputCase, budget: int) -> RunRecord | None:
        """Fast-path record for one run, or ``None`` to fall back."""
        reason = ineligible_reason(spec, self.num_cores)
        if reason is not None:
            # Declined up front: not a legacy stats["fallback"] (those
            # count accepted-then-missed runs only), but labelled for the
            # per-reason trace accounting.
            self.fallback_reasons[reason] += 1
            self.last_path = (_trace.PATH_FRESH, reason)
            return None
        key = trigger_events(spec)
        assert key is not None  # ineligible_reason covers every None case
        trace = self.trace_for(case, budget)
        record = trace.run_fast(spec, key, budget, self.quantum)
        if record is None:
            self.stats["fallback"] += 1
            self.fallback_reasons[_trace.REASON_CACHE_MISS] += 1
            self.last_path = (_trace.PATH_FRESH, _trace.REASON_CACHE_MISS)
            return None
        if record.activations == 0:
            self.stats["dormant"] += 1
            self.fallback_reasons[_trace.REASON_GOLDEN_EXIT] += 1
            self.last_path = (_trace.PATH_DORMANT, _trace.REASON_GOLDEN_EXIT)
        else:
            self.stats["fast"] += 1
            self.last_path = (_trace.PATH_SNAPSHOT, None)
        if self.policy == SNAPSHOT_VERIFY:
            fresh = execute_injection_run(
                self.executable,
                spec,
                case,
                budget=budget,
                num_cores=self.num_cores,
                quantum=self.quantum,
                engine=self.engine,
            )
            if fresh != record:
                raise SnapshotDivergence(
                    f"snapshot path diverged from fresh boot for "
                    f"{spec.fault_id}/{case.case_id}:\n"
                    f"  snapshot: {record}\n  fresh:    {fresh}"
                )
            self.stats["verified"] += 1
        return record


__all__ = [
    "CaseTrace",
    "SnapshotCache",
    "SnapshotDivergence",
    "SnapshotPoint",
    "ineligible_reason",
    "trigger_events",
]

"""Trace reports over campaign journals: ``repro trace report``.

A campaign executed with tracing on journals one ``trace`` entry per run
next to its ``run`` entry (see :mod:`repro.orchestrator.journal`).  This
module turns those journals back into evidence:

* :func:`build_trace_report` walks a journal directory — either one
  campaign's journal or a parent directory holding one journal per
  (program, fault class) as laid out by ``run_section6`` — and
  aggregates every run's trace into per-journal :class:`TraceStats`;
* :func:`render_trace_report` prints the per-phase wall-clock breakdown
  and the execution-path / fallback-reason table; the table's run total
  always equals the journal's record count (runs without a trace entry
  are reported as *untraced*, never dropped);
* :func:`export_perfetto` writes the span trees as a Chrome/Perfetto
  trace-event JSON (load it in ``ui.perfetto.dev`` or
  ``chrome://tracing``): one thread per journal, runs laid end-to-end in
  journal order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..persist import atomic_write_json
from .trace import (
    FALLBACK_REASONS,
    PATH_DORMANT,
    PATH_FRESH,
    PATH_MEMO,
    PATH_PRUNED,
    PATH_SNAPSHOT,
    REASON_GOLDEN_EXIT,
    TraceStats,
)

#: Matches repro.orchestrator.journal.RUNS_NAME (kept literal: the report
#: reads journals without needing a campaign fingerprint).
RUNS_FILENAME = "runs.jsonl"


@dataclass
class JournalTraceSummary:
    """One journal directory's records, traces and aggregate stats."""

    directory: str
    label: str
    record_count: int
    traced_count: int
    failed_runs: int
    stats: TraceStats
    traces: list[tuple[int, dict]]  # (run index, trace payload), index order

    @property
    def untraced_count(self) -> int:
        return max(0, self.record_count - self.traced_count)


@dataclass
class TraceReport:
    root: str
    journals: list[JournalTraceSummary]

    @property
    def record_count(self) -> int:
        return sum(journal.record_count for journal in self.journals)

    @property
    def traced_count(self) -> int:
        return sum(journal.traced_count for journal in self.journals)

    @property
    def failed_runs(self) -> int:
        return sum(journal.failed_runs for journal in self.journals)

    def merged_stats(self) -> TraceStats:
        merged = TraceStats()
        for journal in self.journals:
            merged.merge(journal.stats)
        return merged


def find_journal_dirs(root: str) -> list[str]:
    """Every directory under *root* (inclusive) holding a run log."""
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()  # deterministic report order
        if RUNS_FILENAME in filenames:
            found.append(dirpath)
    return found


def build_trace_report(root: str) -> TraceReport:
    """Aggregate every journal under *root* into a :class:`TraceReport`."""
    from ..orchestrator.journal import load_runs_file

    directories = find_journal_dirs(root)
    if not directories:
        raise FileNotFoundError(
            f"no campaign journal ({RUNS_FILENAME}) found under {root!r}"
        )
    journals = []
    for directory in directories:
        state = load_runs_file(os.path.join(directory, RUNS_FILENAME))
        stats = TraceStats()
        ordered = sorted(state.traces.items())
        for _, payload in ordered:
            stats.add_run(payload)
        label = os.path.relpath(directory, root)
        journals.append(
            JournalTraceSummary(
                directory=directory,
                label=label if label != "." else os.path.basename(
                    os.path.abspath(root)
                ),
                record_count=len(state.records),
                traced_count=len(state.traces),
                failed_runs=sum(
                    len(entry.get("runs", ())) for entry in state.past_failures
                ),
                stats=stats,
                traces=ordered,
            )
        )
    return TraceReport(root=root, journals=journals)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _path_rows(report: TraceReport) -> list[tuple[str, int]]:
    """The execution-path / fallback-reason table, totalling to records."""
    stats = report.merged_stats()
    rows: list[tuple[str, int]] = []
    rows.append(("snapshot restore", stats.paths[PATH_SNAPSHOT]))
    rows.append((f"dormant synthesis ({REASON_GOLDEN_EXIT})", stats.paths[PATH_DORMANT]))
    rows.append(("plan: statically pruned", stats.paths[PATH_PRUNED]))
    rows.append(("plan: memoized outcome", stats.paths[PATH_MEMO]))
    fresh_with_reason = 0
    for reason in FALLBACK_REASONS:
        if reason == REASON_GOLDEN_EXIT:
            continue  # accounted as the dormant-synthesis row above
        count = stats.fallback_reasons[reason]
        fresh_with_reason += count
        rows.append((f"fresh boot: {reason}", count))
    plain_fresh = max(0, stats.paths[PATH_FRESH] - fresh_with_reason)
    rows.append(("fresh boot (no snapshot requested)", plain_fresh))
    rows.append(("untraced", report.record_count - report.traced_count))
    return rows


def render_trace_report(report: TraceReport) -> str:
    stats = report.merged_stats()
    lines = [f"Trace report — {report.root}"]
    lines.append(
        f"  journals: {len(report.journals)}   journaled runs: "
        f"{report.record_count}   traced: {report.traced_count}   "
        f"untraced: {report.record_count - report.traced_count}"
    )
    extras = []
    if stats.retries:
        extras.append(f"retries={stats.retries}")
    if stats.resume_skips:
        extras.append(f"resume-skips={stats.resume_skips}")
    if report.failed_runs:
        extras.append(f"failed-runs={report.failed_runs}")
    if extras:
        lines.append("  " + "  ".join(extras))
    for journal in report.journals:
        lines.append(
            f"    {journal.label}: {journal.record_count} runs, "
            f"{journal.traced_count} traced"
        )

    lines.append("")
    lines.append("  Per-phase wall-clock (exclusive time)")
    lines.append(
        f"    {'phase':<22} {'spans':>8} {'total s':>10} {'mean ms':>10} "
        f"{'share':>7}"
    )
    phase_total = sum(stats.phase_seconds.values()) or 1.0
    for name, seconds in sorted(
        stats.phase_seconds.items(), key=lambda item: -item[1]
    ):
        count = stats.phase_counts[name]
        mean_ms = 1000.0 * seconds / count if count else 0.0
        lines.append(
            f"    {name:<22} {count:>8} {seconds:>10.3f} {mean_ms:>10.3f} "
            f"{100.0 * seconds / phase_total:>6.1f}%"
        )
    if not stats.phase_seconds:
        lines.append("    (no traced phases — was the campaign run with --trace?)")

    lines.append("")
    lines.append("  Execution paths / fallback reasons")
    lines.append(f"    {'path':<40} {'runs':>8} {'share':>7}")
    denominator = report.record_count or 1
    total = 0
    for label, count in _path_rows(report):
        total += count
        lines.append(
            f"    {label:<40} {count:>8} {100.0 * count / denominator:>6.1f}%"
        )
    lines.append(f"    {'total':<40} {total:>8} {100.0 * total / denominator:>6.1f}%")

    if stats.counters:
        lines.append("")
        lines.append("  Counters")
        for name, value in sorted(stats.counters.items()):
            lines.append(f"    {name:<40} {value:>8}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome / Perfetto export
# ---------------------------------------------------------------------------


def _span_events(span: dict, base_us: float, pid: int, tid: int,
                 args: dict, events: list) -> None:
    events.append(
        {
            "name": span["name"],
            "cat": "run",
            "ph": "X",
            "ts": round(base_us + span["start"] * 1e6, 3),
            "dur": round(span["dur"] * 1e6, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
    )
    for child in span.get("children", ()):
        _span_events(child, base_us, pid, tid, args, events)


def export_perfetto(report: TraceReport | str, out_path: str) -> int:
    """Write the report's span trees as Chrome trace-event JSON.

    Accepts a built :class:`TraceReport` or a journal directory.  Runs
    are laid end-to-end per journal (one Perfetto thread per journal);
    returns the number of events written.
    """
    if isinstance(report, str):
        report = build_trace_report(report)
    events: list[dict] = []
    for tid, journal in enumerate(report.journals):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": journal.label},
            }
        )
        cursor_us = 0.0
        for index, payload in journal.traces:
            seconds = payload.get("seconds", 0.0)
            args = {
                "run_index": index,
                "fault": payload.get("fault_id"),
                "case": payload.get("case_id"),
                "path": payload.get("path"),
                "reason": payload.get("reason"),
                "mode": payload.get("mode"),
            }
            events.append(
                {
                    "name": f"run {index} ({payload.get('path')})",
                    "cat": "run",
                    "ph": "X",
                    "ts": round(cursor_us, 3),
                    "dur": round(seconds * 1e6, 3),
                    "pid": 0,
                    "tid": tid,
                    "args": args,
                }
            )
            for span in payload.get("spans", ()):
                _span_events(span, cursor_us, 0, tid, args, events)
            cursor_us += seconds * 1e6
    atomic_write_json(out_path, {"traceEvents": events, "displayTimeUnit": "ms"})
    return len(events)


__all__ = [
    "JournalTraceSummary",
    "TraceReport",
    "build_trace_report",
    "export_perfetto",
    "find_journal_dirs",
    "render_trace_report",
]

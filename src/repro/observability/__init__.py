"""Run-level observability for injection campaigns.

Structured, low-overhead tracing threaded through the machine, SWIFI and
orchestrator layers (:mod:`.trace`), plus the journal-backed reporting
tools behind ``repro trace report`` (:mod:`.report`).  Tracing is off by
default; enable it per campaign with ``CampaignConfig(trace=True)`` /
``--trace`` or globally with :func:`enable_tracing`.
"""

from .report import (
    JournalTraceSummary,
    TraceReport,
    build_trace_report,
    export_perfetto,
    find_journal_dirs,
    render_trace_report,
)
from .trace import (
    FALLBACK_REASONS,
    PATHS,
    PHASES,
    RunTrace,
    Span,
    TraceStats,
    disable_tracing,
    enable_tracing,
    set_tracing,
    tracing_enabled,
)

__all__ = [
    "FALLBACK_REASONS",
    "PATHS",
    "PHASES",
    "JournalTraceSummary",
    "RunTrace",
    "Span",
    "TraceReport",
    "TraceStats",
    "build_trace_report",
    "disable_tracing",
    "enable_tracing",
    "export_perfetto",
    "find_journal_dirs",
    "render_trace_report",
    "set_tracing",
    "tracing_enabled",
]

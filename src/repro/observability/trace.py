"""Low-overhead structured tracing for injection runs.

The §6 campaigns are only as credible as their per-run accounting: which
trigger fired, whether the run took the snapshot fast path or a fresh
boot, and where the wall-clock went.  This module is the one tracing
seam every layer shares:

* a **module-level enabled flag** — tracing is off by default and the
  instrumented hot paths pay only a ``None`` check per *run* (never per
  instruction) when disabled; ``benchmarks/test_trace_overhead.py``
  keeps the disabled overhead under 2% of campaign wall-clock;
* a per-run **span tree** (:class:`RunTrace`): boot / golden-run /
  snapshot-capture / snapshot-restore / post-trigger-execute / execute /
  classify, each with start offset and duration, plus free-form counters
  (pages captured/restored, …);
* a per-run **execution-path label** — ``snapshot`` (restored a
  golden-run checkpoint), ``dormant`` (record synthesised because the
  golden run exited without the trigger firing) or ``fresh`` — with the
  fallback reason when the fast path was declined (temporal trigger,
  trap mode, multi-core, cache miss, golden-run exit);
* :class:`TraceStats`, the aggregation consumed by the telemetry layer
  (per shard and per campaign) and by ``repro trace report``.

The producer protocol is deliberately tiny: the run executor calls
:func:`begin_run` / :func:`end_run`, any layer in between brackets work
with ``with phase("boot"):`` or bumps :func:`add_counter`; the finished
run's JSON-ready payload is collected with :func:`take_completed`.
Nested runs (the ``verify`` snapshot policy re-executes a run fresh
*inside* another run) are handled by a run stack — spans always attach
to the innermost active run.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

# -- phase names (span labels) ------------------------------------------------

PHASE_BOOT = "boot"
PHASE_GOLDEN_RUN = "golden-run"
PHASE_SNAPSHOT_CAPTURE = "snapshot-capture"
PHASE_SNAPSHOT_RESTORE = "snapshot-restore"
PHASE_POST_TRIGGER = "post-trigger-execute"
PHASE_EXECUTE = "execute"  # full fresh-boot execution (prefix + suffix)
PHASE_CLASSIFY = "classify"
PHASE_BLOCK_COMPILE = "block-compile"  # block engine compiling a basic block
PHASE_TRACE_COMPILE = "trace-compile"  # trace engine stitching a superblock
PHASE_PLAN_PROVE = "plan-prove"        # planner: golden access trace + rules
PHASE_MEMO_LOOKUP = "memo-lookup"      # planner: outcome-memo key + lookup

PHASES = (
    PHASE_BOOT,
    PHASE_GOLDEN_RUN,
    PHASE_SNAPSHOT_CAPTURE,
    PHASE_SNAPSHOT_RESTORE,
    PHASE_POST_TRIGGER,
    PHASE_EXECUTE,
    PHASE_CLASSIFY,
    PHASE_BLOCK_COMPILE,
    PHASE_TRACE_COMPILE,
    PHASE_PLAN_PROVE,
    PHASE_MEMO_LOOKUP,
)

# -- execution paths and fallback reasons ------------------------------------

PATH_FRESH = "fresh"
PATH_SNAPSHOT = "snapshot"
PATH_DORMANT = "dormant"
PATH_PRUNED = "pruned"      # planner synthesized the record statically
PATH_MEMO = "memoized"      # planner replayed a cached outcome
PATHS = (PATH_SNAPSHOT, PATH_DORMANT, PATH_PRUNED, PATH_MEMO, PATH_FRESH)

REASON_TEMPORAL = "temporal-trigger"
REASON_TRAP_MODE = "trap-mode"
REASON_MULTI_CORE = "multi-core"
REASON_CACHE_MISS = "cache-miss"
REASON_GOLDEN_EXIT = "golden-run-exit"

#: Every way the snapshot fast path declines to restore a checkpoint.
#: ``golden-run-exit`` is special: the run is *synthesised* from the
#: golden outcome (path ``dormant``) instead of falling back to a boot.
FALLBACK_REASONS = (
    REASON_TEMPORAL,
    REASON_TRAP_MODE,
    REASON_MULTI_CORE,
    REASON_CACHE_MISS,
    REASON_GOLDEN_EXIT,
)

# -- module state -------------------------------------------------------------

_enabled = False
_run_stack: list["RunTrace"] = []
_completed: dict | None = None


def tracing_enabled() -> bool:
    """Whether run tracing is currently on (module-level flag)."""
    return _enabled


def enable_tracing() -> None:
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    global _enabled
    _enabled = False


def set_tracing(flag: bool) -> bool:
    """Set the flag, returning the previous value (for try/finally)."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


# -- spans --------------------------------------------------------------------


@dataclass
class Span:
    """One timed region of a run; ``start`` is seconds from run start."""

    name: str
    start: float
    duration: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "start": round(self.start, 9),
            "dur": round(self.duration, 9),
        }
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @staticmethod
    def from_dict(payload: dict) -> "Span":
        return Span(
            name=payload["name"],
            start=payload["start"],
            duration=payload["dur"],
            children=[Span.from_dict(c) for c in payload.get("children", ())],
        )


class _NullPhase:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_PHASE = _NullPhase()


class _PhaseContext:
    __slots__ = ("_run", "_name", "_span")

    def __init__(self, run: "RunTrace", name: str) -> None:
        self._run = run
        self._name = name
        self._span: Span | None = None

    def __enter__(self) -> Span:
        self._span = self._run._push(self._name)
        return self._span

    def __exit__(self, *exc) -> bool:
        assert self._span is not None
        self._run._pop(self._span)
        return False


class RunTrace:
    """The span tree plus path/counter accounting of one injection run."""

    __slots__ = (
        "fault_id",
        "case_id",
        "path",
        "fallback_reason",
        "mode",
        "root",
        "counters",
        "_t0",
        "_stack",
    )

    def __init__(self, fault_id: str, case_id: str) -> None:
        self.fault_id = fault_id
        self.case_id = case_id
        self.path = PATH_FRESH
        self.fallback_reason: str | None = None
        self.mode: str | None = None
        self._t0 = time.perf_counter()
        self.root = Span("run", 0.0)
        self._stack: list[Span] = [self.root]
        self.counters: Counter = Counter()

    # -- span plumbing (via the ``phase``/``span`` context managers) ----

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _push(self, name: str) -> Span:
        span = Span(name, self._now())
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        span.duration = self._now() - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def span(self, name: str) -> _PhaseContext:
        return _PhaseContext(self, name)

    # -- accounting ------------------------------------------------------

    def add_counter(self, name: str, value: int = 1) -> None:
        self.counters[name] += value

    def set_path(self, path: str, reason: str | None = None) -> None:
        self.path = path
        self.fallback_reason = reason

    def finish(self, mode: str | None = None) -> None:
        self.mode = mode
        self.root.duration = self._now()

    def phase_seconds(self) -> dict[str, float]:
        """Exclusive (self) seconds per phase name, over the whole tree.

        Exclusive so nested spans (a snapshot capture inside the golden
        run) are not double-counted and the phases sum to traced time.
        """
        totals: Counter = Counter()

        def walk(span: Span) -> None:
            child_time = sum(child.duration for child in span.children)
            totals[span.name] += max(0.0, span.duration - child_time)
            for child in span.children:
                walk(child)

        for child in self.root.children:
            walk(child)
        return dict(totals)

    def to_dict(self) -> dict:
        return {
            "fault_id": self.fault_id,
            "case_id": self.case_id,
            "path": self.path,
            "reason": self.fallback_reason,
            "mode": self.mode,
            "seconds": round(self.root.duration, 9),
            "phases": {
                name: round(seconds, 9)
                for name, seconds in self.phase_seconds().items()
            },
            "counters": dict(self.counters),
            "spans": [child.to_dict() for child in self.root.children],
        }


# -- producer protocol --------------------------------------------------------


def begin_run(fault_id: str, case_id: str) -> RunTrace | None:
    """Open a run trace (``None`` when tracing is disabled)."""
    if not _enabled:
        return None
    run = RunTrace(fault_id, case_id)
    _run_stack.append(run)
    return run


def current() -> RunTrace | None:
    """The innermost active run trace, or ``None``."""
    return _run_stack[-1] if _run_stack else None


def phase(name: str):
    """Context manager timing one phase of the current run (no-op fast)."""
    if not _run_stack:
        return _NULL_PHASE
    return _run_stack[-1].span(name)


def add_counter(name: str, value: int = 1) -> None:
    """Bump a counter on the current run (no-op when not tracing)."""
    if _run_stack:
        _run_stack[-1].counters[name] += value


def _unwind(run: RunTrace) -> None:
    while _run_stack:
        top = _run_stack.pop()
        if top is run:
            return


def end_run(run: RunTrace | None, record=None) -> dict | None:
    """Close *run*, stash its payload for :func:`take_completed`."""
    global _completed
    if run is None:
        return None
    if run in _run_stack:
        _unwind(run)
    run.finish(None if record is None else record.mode.value)
    _completed = run.to_dict()
    return _completed


def abort_run(run: RunTrace | None) -> None:
    """Drop *run* (exception path) without publishing a payload."""
    if run is not None and run in _run_stack:
        _unwind(run)


def take_completed() -> dict | None:
    """Pop the most recently finished run's payload (once)."""
    global _completed
    payload = _completed
    _completed = None
    return payload


# -- aggregation --------------------------------------------------------------


class TraceStats:
    """Aggregated run accounting: per shard, per campaign, per journal."""

    __slots__ = (
        "runs",
        "total_seconds",
        "paths",
        "fallback_reasons",
        "phase_seconds",
        "phase_counts",
        "counters",
        "modes",
        "retries",
        "resume_skips",
    )

    def __init__(self) -> None:
        self.runs = 0
        self.total_seconds = 0.0
        self.paths: Counter = Counter()
        self.fallback_reasons: Counter = Counter()
        self.phase_seconds: Counter = Counter()
        self.phase_counts: Counter = Counter()
        self.counters: Counter = Counter()
        self.modes: Counter = Counter()
        self.retries = 0
        self.resume_skips = 0

    @property
    def fast_path_hits(self) -> int:
        """Runs served without a fresh boot (restore, synthesis, plan)."""
        return (
            self.paths[PATH_SNAPSHOT] + self.paths[PATH_DORMANT]
            + self.paths[PATH_PRUNED] + self.paths[PATH_MEMO]
        )

    def add_run(self, payload: dict) -> None:
        self.runs += 1
        self.total_seconds += payload.get("seconds", 0.0)
        self.paths[payload.get("path", PATH_FRESH)] += 1
        reason = payload.get("reason")
        if reason:
            self.fallback_reasons[reason] += 1
        for name, seconds in (payload.get("phases") or {}).items():
            self.phase_seconds[name] += seconds
            self.phase_counts[name] += 1
        for name, value in (payload.get("counters") or {}).items():
            self.counters[name] += value
        mode = payload.get("mode")
        if mode:
            self.modes[mode] += 1

    def merge(self, other: "TraceStats") -> None:
        self.runs += other.runs
        self.total_seconds += other.total_seconds
        self.paths.update(other.paths)
        self.fallback_reasons.update(other.fallback_reasons)
        self.phase_seconds.update(other.phase_seconds)
        self.phase_counts.update(other.phase_counts)
        self.counters.update(other.counters)
        self.modes.update(other.modes)
        self.retries += other.retries
        self.resume_skips += other.resume_skips

    def to_dict(self) -> dict:
        return {
            "runs": self.runs,
            "total_seconds": round(self.total_seconds, 6),
            "fast_path_hits": self.fast_path_hits,
            "paths": dict(self.paths),
            "fallback_reasons": dict(self.fallback_reasons),
            "phase_seconds": {
                name: round(seconds, 6)
                for name, seconds in self.phase_seconds.items()
            },
            "phase_counts": dict(self.phase_counts),
            "counters": dict(self.counters),
            "modes": dict(self.modes),
            "retries": self.retries,
            "resume_skips": self.resume_skips,
        }

    @staticmethod
    def from_dict(payload: dict) -> "TraceStats":
        stats = TraceStats()
        stats.runs = payload.get("runs", 0)
        stats.total_seconds = payload.get("total_seconds", 0.0)
        stats.paths = Counter(payload.get("paths") or {})
        stats.fallback_reasons = Counter(payload.get("fallback_reasons") or {})
        stats.phase_seconds = Counter(payload.get("phase_seconds") or {})
        stats.phase_counts = Counter(payload.get("phase_counts") or {})
        stats.counters = Counter(payload.get("counters") or {})
        stats.modes = Counter(payload.get("modes") or {})
        stats.retries = payload.get("retries", 0)
        stats.resume_skips = payload.get("resume_skips", 0)
        return stats


__all__ = [
    "FALLBACK_REASONS",
    "PATHS",
    "PATH_DORMANT",
    "PATH_FRESH",
    "PATH_MEMO",
    "PATH_PRUNED",
    "PATH_SNAPSHOT",
    "PHASES",
    "PHASE_BLOCK_COMPILE",
    "PHASE_BOOT",
    "PHASE_CLASSIFY",
    "PHASE_EXECUTE",
    "PHASE_GOLDEN_RUN",
    "PHASE_MEMO_LOOKUP",
    "PHASE_PLAN_PROVE",
    "PHASE_POST_TRIGGER",
    "PHASE_SNAPSHOT_CAPTURE",
    "PHASE_SNAPSHOT_RESTORE",
    "PHASE_TRACE_COMPILE",
    "REASON_CACHE_MISS",
    "REASON_GOLDEN_EXIT",
    "REASON_MULTI_CORE",
    "REASON_TEMPORAL",
    "REASON_TRAP_MODE",
    "RunTrace",
    "Span",
    "TraceStats",
    "abort_run",
    "add_counter",
    "begin_run",
    "current",
    "disable_tracing",
    "enable_tracing",
    "end_run",
    "phase",
    "set_tracing",
    "take_completed",
    "tracing_enabled",
]

"""JamesB: the string-codification contest problem (oracle + input model).

Problem (as specified to the teams): codify a string under a numeric
seed.  With ``s = seed % 95`` and the running key ``k(i) = s + i``, each
printable character (ASCII 33..126) maps to

    out[i] = 32 + ((in[i] - 32) + k(i)) mod 95

The program prints the coded string, a newline, then a rolling checksum
``chk`` (initialised to 7, updated ``chk = chk*31 + out[i]`` in wrapping
32-bit arithmetic, printed signed), and a final newline.

The input length distribution is heavily skewed short — most strings are
1..13 characters, a couple of percent are 14..79, and about 0.08% are the
maximum 80 characters.  That tail is what exposes the two real faults:

* JB.team6's off-by-one buffer (``char phrase2[80]``) only overflows at
  length exactly 80 — the paper's Table 1 reports 0.05% wrong results;
* JB.team7's single-subtraction wrap only breaks when the running key
  grows past one modulus, i.e. on long strings — Table 1 reports 1.8%.
"""

from __future__ import annotations

import random

KEY_STEP = 1
MAX_LEN = 80


def encode(seed: int, text: bytes) -> bytes:
    s_eff = seed % 95
    out = bytearray()
    for index, char in enumerate(text):
        out.append(32 + ((char - 32) + s_eff + KEY_STEP * index) % 95)
    return bytes(out)


def checksum(coded: bytes) -> int:
    value = 7
    for char in coded:
        value = (value * 31 + char) & 0xFFFFFFFF
    if value & 0x80000000:
        value -= 0x100000000
    return value


def generate_pokes(rng: random.Random) -> dict[str, int | bytes]:
    pick = rng.random()
    if pick < 0.0008:
        length = MAX_LEN
    elif pick < 0.02:
        length = rng.randint(14, MAX_LEN - 1)
    else:
        length = rng.randint(1, 13)
    text = bytes(rng.randint(33, 126) for _ in range(length))
    return {
        "in_seed": rng.randint(0, 999999),
        "in_len": length,
        "in_str": text + b"\x00",
    }


def oracle(pokes: dict) -> bytes:
    text = pokes["in_str"].rstrip(b"\x00")
    coded = encode(pokes["in_seed"], text)
    return coded + b"\n" + b"%d" % checksum(coded) + b"\n"


INPUT_GLOBALS = ("in_seed", "in_len", "in_str")

"""Workloads: the contest programs, their oracles and the real faults.

The families mirror the paper's §4.2 sample programs: **Camelot** and
**JamesB** (many independent implementations from a programming contest,
seven of which carry real software faults) and **SOR** (a parallel
red-black Laplace relaxation, the "real life" program).
"""

from . import camelot, jamesb, sor
from .base import Workload
from .registry import (
    REAL_FAULTS,
    TABLE1_ORDER,
    TABLE2_ORDER,
    all_workloads,
    get_workload,
    real_faults,
    table1_workloads,
    table2_workloads,
)

__all__ = [
    "camelot",
    "jamesb",
    "sor",
    "Workload",
    "REAL_FAULTS",
    "TABLE1_ORDER",
    "TABLE2_ORDER",
    "all_workloads",
    "get_workload",
    "real_faults",
    "table1_workloads",
    "table2_workloads",
]

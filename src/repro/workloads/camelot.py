"""Camelot: the IOI-contest gathering problem (oracle + input model).

Problem (as specified to the teams): on an 8×8 board there is one king
and ``n`` knights (0 ≤ n ≤ 63).  A king step costs 1 (8 directions); a
knight move costs 1 (chess knight).  A knight that stands on the king's
square may pick the king up and carry it along at no extra cost.  Compute
the minimum total number of moves to gather **all** pieces on one square.

Equivalently: choose a gathering square *g*; every knight walks to *g*
(knight distance); the king either walks to *g* itself (Chebyshev
distance) or walks to some pickup square *p* where some knight *i* makes
a detour through *p*:

    answer = min over g of [ Σᵢ kd(kᵢ, g)
                             + min( cheb(K, g),
                                    minᵢ,ₚ kd(kᵢ, p) + cheb(K, p)
                                          + kd(p, g) − kd(kᵢ, g) ) ]

With no knights the answer is 0 (the king is already "gathered").

The oracle below is the ground truth every corrected team program must
match bit-for-bit; the faulty team variants deviate from it at the rates
reported in Table 1.
"""

from __future__ import annotations

import random
from collections import deque
from functools import lru_cache

BOARD = 8
SQUARES = BOARD * BOARD

KNIGHT_MOVES = (
    (1, 2), (2, 1), (2, -1), (1, -2),
    (-1, -2), (-2, -1), (-2, 1), (-1, 2),
)

#: Input pokes use at most this many knights, keeping single runs around a
#: million instructions so campaigns stay tractable (the problem statement
#: allows up to 63).
MAX_KNIGHTS = 5


@lru_cache(maxsize=1)
def knight_distance_table() -> tuple[tuple[int, ...], ...]:
    """All-pairs knight distances on the 8×8 board (max value is 6)."""
    table = []
    for source in range(SQUARES):
        dist = [-1] * SQUARES
        dist[source] = 0
        queue = deque([source])
        while queue:
            square = queue.popleft()
            x, y = divmod(square, BOARD)
            for dx, dy in KNIGHT_MOVES:
                nx, ny = x + dx, y + dy
                if 0 <= nx < BOARD and 0 <= ny < BOARD:
                    neighbour = nx * BOARD + ny
                    if dist[neighbour] < 0:
                        dist[neighbour] = dist[square] + 1
                        queue.append(neighbour)
        table.append(tuple(dist))
    return tuple(table)


def chebyshev(x1: int, y1: int, x2: int, y2: int) -> int:
    return max(abs(x1 - x2), abs(y1 - y2))


def solve(king_x: int, king_y: int, knights: list[tuple[int, int]]) -> int:
    """Reference solution (the oracle)."""
    if not knights:
        return 0
    kd = knight_distance_table()
    knight_squares = [x * BOARD + y for x, y in knights]
    best = None
    for gather in range(SQUARES):
        gx, gy = divmod(gather, BOARD)
        base = sum(kd[square][gather] for square in knight_squares)
        king_cost = chebyshev(king_x, king_y, gx, gy)
        for pickup in range(SQUARES):
            px, py = divmod(pickup, BOARD)
            walk = chebyshev(king_x, king_y, px, py)
            if walk >= king_cost:
                # A detour through p costs at least cheb(K, p); prune.
                continue
            for square in knight_squares:
                candidate = kd[square][pickup] + walk + kd[pickup][gather] - kd[square][gather]
                if candidate < king_cost:
                    king_cost = candidate
        total = base + king_cost
        if best is None or total < best:
            best = total
    assert best is not None
    return best


# ---------------------------------------------------------------------------
# input model
# ---------------------------------------------------------------------------

def generate_pokes(rng: random.Random) -> dict[str, int | list[int]]:
    """One random Camelot input as loader pokes.

    The knight count is skewed low (1..MAX_KNIGHTS) so the carry decision
    is frequently pivotal — the regime where the real faults of the
    C.team programs are exposed at Table-1-like rates.
    """
    count = rng.randint(1, MAX_KNIGHTS)
    king_x = rng.randrange(BOARD)
    king_y = rng.randrange(BOARD)
    xs = [rng.randrange(BOARD) for _ in range(count)]
    ys = [rng.randrange(BOARD) for _ in range(count)]
    pad = [0] * (SQUARES - count)
    return {
        "in_n": count,
        "in_kx": king_x,
        "in_ky": king_y,
        "in_nx": xs + pad,
        "in_ny": ys + pad,
    }


def oracle(pokes: dict) -> bytes:
    """Expected console output for one input."""
    knights = [
        (pokes["in_nx"][i], pokes["in_ny"][i]) for i in range(pokes["in_n"])
    ]
    answer = solve(pokes["in_kx"], pokes["in_ky"], knights)
    return b"%d\n" % answer


#: The globals every Camelot team program must declare for input injection.
INPUT_GLOBALS = ("in_n", "in_kx", "in_ky", "in_nx", "in_ny")

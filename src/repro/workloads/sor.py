"""SOR: parallel red-black successive over-relaxation (oracle + inputs).

The paper's third target is "an implementation of a parallel algorithm to
solve the Laplace equation over a grid ... based on the over-relaxation
scheme with red-black ordering" — a real-life program, by far the largest
of the three, whose "result is given in the form of a matrix".

Our SOR solves the integer Laplace relaxation on an ``n × n`` grid with
fixed boundary values: for a fixed number of iterations, every interior
cell is replaced by the mean of its four neighbours, first the *red*
cells (``(i + j)`` even), a barrier, then the *black* cells, a barrier.
Red cells depend only on black neighbours and vice versa, so the result
is deterministic no matter how the four cores interleave — that is the
point of red-black ordering, and it is why the corrected program can be
checked bit-for-bit against this sequential oracle.

Arithmetic is integer (the RX32 has no floating point; DESIGN.md §2
documents the substitution): values are non-negative and bounded by the
boundary maximum, and the mean uses truncating division exactly as the
MiniC ``/`` does.

Output — a compact rendition of "the result is given in the form of a
matrix": one line per grid row (the row's cell sum), one line per column
(the column's cell sum), the grand total, the grid minimum and maximum,
and finally the residual (the summed absolute deviation of every interior
cell from its four-neighbour mean).
"""

from __future__ import annotations

import random

MAX_GRID = 16
NUM_CORES = 4


def relax(size: int, iters: int, north: list[int], south: list[int],
          west: list[int], east: list[int]) -> list[list[int]]:
    """Sequential reference of the red-black relaxation."""
    grid = [[0] * size for _ in range(size)]
    for j in range(size):
        grid[0][j] = north[j]
        grid[size - 1][j] = south[j]
    for i in range(1, size - 1):
        grid[i][0] = west[i]
        grid[i][size - 1] = east[i]
    for _ in range(iters):
        for parity in (0, 1):
            for i in range(1, size - 1):
                for j in range(1, size - 1):
                    if (i + j) % 2 == parity:
                        grid[i][j] = (
                            grid[i - 1][j] + grid[i + 1][j]
                            + grid[i][j - 1] + grid[i][j + 1]
                        ) // 4
    return grid


def generate_pokes(rng: random.Random) -> dict[str, int | list[int]]:
    size = rng.choice((10, 12, 14, 16))
    iters = rng.randint(6, 14)
    def edge() -> list[int]:
        values = [rng.randint(0, 100000) for _ in range(size)]
        return values + [0] * (MAX_GRID - size)
    return {
        "in_size": size,
        "in_iters": iters,
        "in_north": edge(),
        "in_south": edge(),
        "in_west": edge(),
        "in_east": edge(),
    }


def residual(grid: list[list[int]]) -> int:
    """Summed |cell − four-neighbour mean| over the interior (integer)."""
    size = len(grid)
    total = 0
    for i in range(1, size - 1):
        for j in range(1, size - 1):
            stencil = (
                grid[i - 1][j] + grid[i + 1][j] + grid[i][j - 1] + grid[i][j + 1]
            ) // 4
            total += abs(grid[i][j] - stencil)
    return total


def oracle(pokes: dict) -> bytes:
    size = pokes["in_size"]
    grid = relax(
        size,
        pokes["in_iters"],
        pokes["in_north"][:size],
        pokes["in_south"][:size],
        pokes["in_west"][:size],
        pokes["in_east"][:size],
    )
    out = bytearray()
    total = 0
    for row in grid:
        row_sum = sum(row)
        total += row_sum
        out += b"%d\n" % row_sum
    for j in range(size):
        out += b"%d\n" % sum(grid[i][j] for i in range(size))
    out += b"%d\n" % total
    cells = [cell for row in grid for cell in row]
    out += b"%d %d\n" % (min(cells), max(cells))
    out += b"%d\n" % residual(grid)
    return bytes(out)


INPUT_GLOBALS = ("in_size", "in_iters", "in_north", "in_south", "in_west", "in_east")

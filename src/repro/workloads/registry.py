"""The workload registry: all target programs and the seven real faults.

* :func:`table1_workloads` — the seven programs in which real software
  faults were found (paper Table 1);
* :func:`table2_workloads` — the eight programs of the §6 class-emulation
  campaigns (paper Table 2);
* :func:`real_faults` — the §5 catalogue: each fault's ODC class, the
  source change that corrects it, and the Xception emulation strategy
  (or the reason none exists).
"""

from __future__ import annotations

from ..emulation.realfaults import (
    NoEmulation,
    OperatorSwapEmulation,
    RealFault,
    StackShiftEmulation,
    ValueDeltaEmulation,
)
from ..odc.defect_types import DefectType
from . import camelot, jamesb, sor
from .base import Workload
from .programs import (
    camelot_team1,
    camelot_team2,
    camelot_team3,
    camelot_team4,
    camelot_team5,
    camelot_team8,
    camelot_team9,
    camelot_team10,
    jamesb_team6,
    jamesb_team7,
    jamesb_team11,
    sor_program,
)


def _fragment_line(source: str, fragment: str) -> int:
    """1-based line number of the unique source line containing *fragment*."""
    lines = [i for i, text in enumerate(source.splitlines(), start=1) if fragment in text]
    if len(lines) != 1:
        raise ValueError(f"fragment {fragment!r} found on {len(lines)} lines")
    return lines[0]


_BOUNDARY_LINE = _fragment_line(camelot_team1.SOURCE, "ny >= 0 && ny < 8")

REAL_FAULTS: dict[str, RealFault] = {
    "C.team1": RealFault(
        fault_id="C.team1",
        program="C.team1",
        odc_type=DefectType.CHECKING,
        source_change="boundary test 'ny <= 8' must be 'ny < 8' (one relational operator)",
        paper_figure="Figure 5 (checking fault, operator swap)",
        strategy=OperatorSwapEmulation(
            function="process", from_op="<", to_op="<=", nth=-1, line=_BOUNDARY_LINE
        ),
        notes=(
            "Emulated by rewriting the condition field of the conditional "
            "branch implementing the '<' — a single-word corruption with an "
            "opcode-fetch trigger, as in the paper's Figure 5."
        ),
    ),
    "C.team2": RealFault(
        fault_id="C.team2",
        program="C.team2",
        odc_type=DefectType.ALGORITHM,
        source_change=(
            "the pickup search must loop over all knights; the faulty program "
            "pre-selects the knight nearest the king and considers only it"
        ),
        paper_figure=None,
        strategy=NoEmulation(
            reason=(
                "correcting the fault adds an inner loop over knights; the "
                "corrected binary contains instructions with no counterpart "
                "in the faulty one, so no fixed-location machine-level error "
                "can turn one into the other"
            ),
            function="main",
        ),
    ),
    "C.team3": RealFault(
        fault_id="C.team3",
        program="C.team3",
        odc_type=DefectType.ALGORITHM,
        source_change=(
            "the bounded 4-round distance sweep plus 'assume 5' guess must be "
            "replaced by a run-to-fixpoint sweep"
        ),
        paper_figure=None,
        strategy=NoEmulation(
            reason=(
                "the correction replaces a counted loop plus a patch-up pass "
                "by a fixpoint loop — a different control structure, not a "
                "different operand or operator"
            ),
            function="sweep",
        ),
    ),
    "C.team4": RealFault(
        fault_id="C.team4",
        program="C.team4",
        odc_type=DefectType.ASSIGNMENT,
        source_change="carrier loop init 'c = 1' must be 'c = 0' (one constant)",
        paper_figure="Figure 3 (assignment fault, wrong loop-start constant)",
        strategy=ValueDeltaEmulation(function="main", target="c", delta=1, kind="assign"),
        notes=(
            "Emulated by corrupting the operand stored by the loop "
            "initialisation (+1) on every execution — Figure 3's option 2 "
            "(data-bus corruption of the stored value)."
        ),
    ),
    "C.team5": RealFault(
        fault_id="C.team5",
        program="C.team5",
        odc_type=DefectType.ALGORITHM,
        source_change=(
            "dist() must return max(|dx|, |dy|) (a call to max) instead of "
            "|dx| + |dy| (an add)"
        ),
        paper_figure="Figure 6 (algorithm fault: sum instead of max)",
        strategy=NoEmulation(
            reason=(
                "the corrected dist() calls max(): its code is longer and its "
                "stack frame differs from the faulty version (the paper's "
                "Figure-6 note), so the fault is beyond any fixed-location "
                "machine-level corruption"
            ),
            function="dist",
        ),
    ),
    "JB.team6": RealFault(
        fault_id="JB.team6",
        program="JB.team6",
        odc_type=DefectType.ASSIGNMENT,
        source_change="char phrase2[80] must be char phrase2[81]",
        paper_figure="Figure 4 (assignment fault causing a stack shift)",
        strategy=StackShiftEmulation(function="main", var="phrase2", delta=4),
        notes=(
            "Needs every frame reference to phrase2 shifted: more trigger "
            "addresses than the two breakpoint registers — breakpoint-mode "
            "arming fails (the paper's finding B); trap insertion or the "
            "memory-patch extension succeed."
        ),
    ),
    "JB.team7": RealFault(
        fault_id="JB.team7",
        program="JB.team7",
        odc_type=DefectType.ALGORITHM,
        source_change=(
            "the single conditional subtraction must become a while loop "
            "(the running key can exceed one modulus)"
        ),
        paper_figure=None,
        strategy=NoEmulation(
            reason=(
                "an 'if' must become a 'while': the corrected code adds a "
                "back-edge that does not exist in the faulty binary"
            ),
            function="main",
        ),
    ),
}


def _camelot(name: str, module, features: str, *, in_table2: bool,
             paper_pct: float | None) -> Workload:
    return Workload(
        name=name,
        family="camelot",
        source=module.SOURCE,
        faulty_source=module.FAULTY_SOURCE,
        real_fault=REAL_FAULTS.get(name),
        features=features,
        generate_pokes=camelot.generate_pokes,
        oracle=camelot.oracle,
        in_table2=in_table2,
        paper_table1_percent=paper_pct,
    )


def _jamesb(name: str, module, features: str, *, in_table2: bool,
            paper_pct: float | None) -> Workload:
    return Workload(
        name=name,
        family="jamesb",
        source=module.SOURCE,
        faulty_source=module.FAULTY_SOURCE,
        real_fault=REAL_FAULTS.get(name),
        features=features,
        generate_pokes=jamesb.generate_pokes,
        oracle=jamesb.oracle,
        in_table2=in_table2,
        paper_table1_percent=paper_pct,
    )


def _build_registry() -> dict[str, Workload]:
    workloads = [
        _camelot("C.team1", camelot_team1,
                 "Recursive algorithms, 1 real fault (corrected)",
                 in_table2=True, paper_pct=7.3),
        _camelot("C.team2", camelot_team2,
                 "Non-recursive algorithms, 1 real fault (corrected)",
                 in_table2=True, paper_pct=16.9),
        _camelot("C.team3", camelot_team3,
                 "Non-recursive (frontier sweeps), 1 real fault (corrected)",
                 in_table2=False, paper_pct=1.0),
        _camelot("C.team4", camelot_team4,
                 "Non-recursive, knight-major carry search, 1 real fault (corrected)",
                 in_table2=False, paper_pct=30.8),
        _camelot("C.team5", camelot_team5,
                 "Non-recursive, dist() helper, 1 real fault (corrected)",
                 in_table2=False, paper_pct=2.9),
        _camelot("C.team8", camelot_team8,
                 "Non-recursive algorithms (precomputed neighbour lists)",
                 in_table2=True, paper_pct=None),
        _camelot("C.team9", camelot_team9,
                 "Non-recursive, uses many dynamic structures "
                 "(linked-list queue, heap-allocated table)",
                 in_table2=True, paper_pct=None),
        _camelot("C.team10", camelot_team10,
                 "Recursive algorithms (mutually recursive search)",
                 in_table2=True, paper_pct=None),
        _jamesb("JB.team6", jamesb_team6,
                "Non-recursive, table-based, 1 real fault (corrected)",
                in_table2=True, paper_pct=0.05),
        _jamesb("JB.team7", jamesb_team7,
                "Non-recursive, running key, 1 real fault (corrected)",
                in_table2=False, paper_pct=1.8),
        _jamesb("JB.team11", jamesb_team11,
                "Non-recursive algorithms (different from JB.team6)",
                in_table2=True, paper_pct=None),
        Workload(
            name="SOR",
            family="sor",
            source=sor_program.SOURCE,
            features="Parallel program, real-life program, largest size",
            generate_pokes=sor.generate_pokes,
            oracle=sor.oracle,
            num_cores=sor.NUM_CORES,
            in_table2=True,
        ),
    ]
    return {workload.name: workload for workload in workloads}


_REGISTRY = _build_registry()

TABLE1_ORDER = ("C.team1", "C.team2", "C.team3", "C.team4", "C.team5",
                "JB.team6", "JB.team7")
TABLE2_ORDER = ("C.team1", "C.team2", "C.team8", "C.team9", "C.team10",
                "JB.team6", "JB.team11", "SOR")


def get_workload(name: str) -> Workload:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; have {sorted(_REGISTRY)}") from None


def all_workloads() -> list[Workload]:
    return list(_REGISTRY.values())


def table1_workloads() -> list[Workload]:
    return [_REGISTRY[name] for name in TABLE1_ORDER]


def table2_workloads() -> list[Workload]:
    return [_REGISTRY[name] for name in TABLE2_ORDER]


def real_faults() -> list[RealFault]:
    return [REAL_FAULTS[name] for name in TABLE1_ORDER]

"""The Workload abstraction: program + oracle + input model + metadata.

A :class:`Workload` bundles everything campaigns need about one target
program: its (corrected) MiniC source, the optional faulty variant
carrying one of the paper's seven real faults, the family input
generator/oracle, the core count, and the Table-1/Table-2 metadata.
Compilation is cached per (workload instance, opt_level).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..emulation.realfaults import RealFault
from ..lang.compiler import CompiledProgram, compile_source
from ..swifi.campaign import InputCase


@dataclass
class Workload:
    name: str                      # e.g. "C.team1"
    family: str                    # "camelot" | "jamesb" | "sor"
    source: str                    # corrected MiniC source
    features: str                  # Table-2 style description
    generate_pokes: Callable[[random.Random], dict]
    oracle: Callable[[dict], bytes]
    faulty_source: str | None = None
    real_fault: RealFault | None = None
    num_cores: int = 1
    in_table2: bool = False        # participates in the §6 campaigns
    paper_table1_percent: float | None = None  # paper's measured % wrong
    _compiled: dict = field(default_factory=dict, repr=False)
    _compiled_faulty: dict = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------

    def compiled(self, opt_level: int = 0) -> CompiledProgram:
        if opt_level not in self._compiled:
            self._compiled[opt_level] = compile_source(
                self.source, self.name, opt_level=opt_level
            )
        return self._compiled[opt_level]

    def compiled_faulty(self, opt_level: int = 0) -> CompiledProgram:
        if self.faulty_source is None:
            raise ValueError(f"{self.name} has no faulty variant")
        if opt_level not in self._compiled_faulty:
            self._compiled_faulty[opt_level] = compile_source(
                self.faulty_source, f"{self.name}-faulty", opt_level=opt_level
            )
        return self._compiled_faulty[opt_level]

    @property
    def has_real_fault(self) -> bool:
        return self.faulty_source is not None

    # ------------------------------------------------------------------

    def make_cases(self, count: int, seed: int) -> list[InputCase]:
        """The §6.2 test case: *count* random input data sets.

        The same (count, seed) yields the same cases for every workload of
        a family — "all the injections in all the Camelot programs ...
        used the same test case", enabling cross-program comparison.
        """
        rng = random.Random(seed)
        cases = []
        for index in range(count):
            pokes = self.generate_pokes(rng)
            cases.append(
                InputCase(
                    case_id=f"{self.family}-{seed}-{index}",
                    pokes=pokes,
                    expected=self.oracle(pokes),
                )
            )
        return cases

    @property
    def source_lines(self) -> int:
        return self.compiled().source_lines

"""C.team2 — Camelot with an iterative queue BFS and an algorithm fault.

Structure: explicit array-based BFS queue per source square (no
recursion), then the gather/pickup minimisation.

Real fault (ODC **algorithm**): the faulty version only ever considers
*one* knight — the one closest to the king by king-distance — as the
potential carrier in the pickup search.  The correct program loops over
all knights.  Correcting it means restructuring the pickup search (adding
the inner loop and removing the pre-selection), not flipping an operator
or a constant: a machine-level SWIFI error at fixed locations cannot
reproduce it, because the corrected binary contains an entire loop whose
body has no counterpart in the faulty binary.
"""

from . import make_faulty

SOURCE = r"""
/* C.team2 - Camelot (IOI) - iterative BFS implementation */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int queue[64];
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void bfs(int source) {
    int head;
    int tail;
    int sq;
    int x;
    int y;
    int m;
    int nx;
    int ny;
    int t;
    for (t = 0; t < 64; t++) {
        kd[source][t] = 99;
    }
    kd[source][source] = 0;
    queue[0] = source;
    head = 0;
    tail = 1;
    while (head < tail) {
        sq = queue[head];
        head = head + 1;
        x = sq / 8;
        y = sq % 8;
        for (m = 0; m < 8; m++) {
            nx = x + dxs[m];
            ny = y + dys[m];
            if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                if (kd[source][nx * 8 + ny] == 99) {
                    kd[source][nx * 8 + ny] = kd[source][sq] + 1;
                    queue[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int kingdist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

void main() {
    int s;
    int g;
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    for (s = 0; s < 64; s++) {
        bfs(s);
    }
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = 0;
        for (i = 0; i < in_n; i++) {
            base = base + kd[in_nx[i] * 8 + in_ny[i]][g];
        }
        kc = kingdist(in_kx, in_ky, g / 8, g % 8);
        for (p = 0; p < 64; p++) {
            w = kingdist(in_kx, in_ky, p / 8, p % 8);
            if (w >= kc) {
                continue;
            }
            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

# The faulty program pre-selects the knight nearest the king and searches
# pickup squares for that knight only.
CORRECT_FRAGMENT = r"""            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }"""

FAULTY_FRAGMENT = r"""            i = 0;
            for (s = 1; s < in_n; s++) {
                if (kingdist(in_kx, in_ky, in_nx[s], in_ny[s])
                        < kingdist(in_kx, in_ky, in_nx[i], in_ny[i])) {
                    i = s;
                }
            }
            ks = in_nx[i] * 8 + in_ny[i];
            cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
            if (cand < kc) {
                kc = cand;
            }"""

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""JB.team11 — JamesB in direct-arithmetic, pointer-walking style.

No known fault; Table 2's second JamesB entry ("non-recursive algorithms,
different from JB.team6").  Everything is computed per character with the
modulo operator, walking the input through a char pointer.
"""

SOURCE = r"""
/* JB.team11 - JamesB (contest) - direct arithmetic, pointer walk */

int in_seed;
int in_len;
char in_str[81];

char coded[81];

void main() {
    char *p;
    int i;
    int chk;
    int s;

    s = in_seed % 95;
    chk = 7;
    i = 0;
    p = in_str;
    while (*p != 0) {
        coded[i] = 32 + (*p - 32 + s + i) % 95;
        chk = chk * 31 + coded[i];
        p = p + 1;
        i = i + 1;
    }
    coded[i] = 0;

    print_str(coded);
    print_char('\n');
    print_int(chk);
    print_char('\n');
    exit(0);
}
"""

FAULTY_SOURCE = None

"""C.team1 — Camelot solved with *recursive* breadth-first search.

The team replaced every loop they could with recursion: the BFS queue is
drained by a recursive function (`process`) rather than a ``while`` loop,
and the per-gather knight-distance sum is accumulated recursively
(`knight_sum`).  This is the first of Table 2's "recursive algorithms"
entries.

Real fault (ODC **checking**, the paper's Figure-5 shape — a single
relational operator): the board boundary test in the BFS expansion writes
``ny <= 8`` where it must be ``ny < 8``.  A phantom square ``(nx, 8)``
aliases the real square ``(nx+1, 0)`` in the row-major distance table, so
one distance per source is poisoned with a plausible small value and the
gather minimisation sometimes picks a slightly wrong plan.  The program
never crashes or hangs — every stray index stays inside the data segment
(for ``nx == 7`` it lands in the adjacent ``queue`` array, rewritten
before use) — it just intermittently prints a wrong total, which is the
Table-1 behaviour (our measured rate runs above the paper's 7.3%; see
EXPERIMENTS.md).  The §5 emulation is the Figure-5 recipe verbatim:
rewrite the condition field of the single conditional branch implementing
the ``<`` (a bit operation on the fetched instruction word), triggered on
its opcode fetch.
"""

from . import make_faulty

SOURCE = r"""
/* C.team1 - Camelot (IOI) - recursion everywhere */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int queue[66];
int tail;
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void process(int source, int head) {
    int sq;
    int m;
    int nx;
    int ny;
    if (head >= tail) {
        return;
    }
    sq = queue[head];
    for (m = 0; m < 8; m++) {
        nx = sq / 8 + dxs[m];
        ny = sq % 8 + dys[m];
        if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
            if (kd[source][nx * 8 + ny] == 99) {
                kd[source][nx * 8 + ny] = kd[source][sq] + 1;
                queue[tail] = nx * 8 + ny;
                tail = tail + 1;
            }
        }
    }
    process(source, head + 1);
}

void clear_all(int s) {
    int t;
    if (s >= 64) {
        return;
    }
    for (t = 0; t < 64; t++) {
        kd[s][t] = 99;
    }
    clear_all(s + 1);
}

void build(int s) {
    if (s >= 64) {
        return;
    }
    kd[s][s] = 0;
    queue[0] = s;
    tail = 1;
    process(s, 0);
    build(s + 1);
}

int cheb(int x1, int y1, int x2, int y2) {
    int dx = x1 - x2;
    int dy = y1 - y2;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int knight_sum(int g, int i) {
    if (i >= in_n) {
        return 0;
    }
    return kd[in_nx[i] * 8 + in_ny[i]][g] + knight_sum(g, i + 1);
}

void main() {
    int g;
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    clear_all(0);
    build(0);
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = knight_sum(g, 0);
        kc = cheb(in_kx, in_ky, g / 8, g % 8);
        for (p = 0; p < 64; p++) {
            w = cheb(in_kx, in_ky, p / 8, p % 8);
            if (w >= kc) {
                continue;
            }
            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

CORRECT_FRAGMENT = "nx >= 0 && nx < 8 && ny >= 0 && ny < 8"
FAULTY_FRAGMENT = "nx >= 0 && nx < 8 && ny >= 0 && ny <= 8"

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""MiniC sources of the workload programs.

One module per contest entry, each exporting ``SOURCE`` (the corrected
program) and, for entries carrying one of the paper's seven real faults,
``FAULTY_SOURCE`` (identical except for the single faulty construct —
derived mechanically so the only difference between the two binaries is
the fault, which the §5 emulation-accuracy experiment depends on).
"""

from __future__ import annotations


def make_faulty(source: str, correct_fragment: str, faulty_fragment: str) -> str:
    """Derive the faulty variant by swapping exactly one source fragment."""
    occurrences = source.count(correct_fragment)
    if occurrences != 1:
        raise ValueError(
            f"expected exactly one occurrence of {correct_fragment!r}, found {occurrences}"
        )
    return source.replace(correct_fragment, faulty_fragment)

"""C.team3 — Camelot with frontier-sweep distances and an algorithm fault.

Structure: knight distances computed by repeated frontier sweeps over the
whole board (no queue, no recursion): distances 1, 2, 3, … are filled in
rounds until a round adds nothing.

Real fault (ODC **algorithm**): the faulty version runs only four sweep
rounds and *assumes* every still-unreached square is five moves away —
the team convinced themselves nothing on an 8×8 board is further than
five knight moves.  Almost true: only a handful of square pairs are at
distance six, so the program fails on the rare inputs whose optimal plan
touches one (Table 1 reports C.team3 at 1.0% wrong results).  The
correction replaces the bounded sweep + guess with a run-to-fixpoint
sweep — a restructuring of the algorithm, not an operator/constant fix,
hence not emulable by machine-level error injection.
"""

from . import make_faulty

SOURCE = r"""
/* C.team3 - Camelot (IOI) - frontier-sweep implementation */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void sweep(int source) {
    int round;
    int sq;
    int x;
    int y;
    int m;
    int nx;
    int ny;
    int changed;
    int t;
    for (t = 0; t < 64; t++) {
        kd[source][t] = 99;
    }
    kd[source][source] = 0;
    changed = 1;
    round = 0;
    while (changed) {
        changed = 0;
        for (sq = 0; sq < 64; sq++) {
            if (kd[source][sq] == round) {
                x = sq / 8;
                y = sq % 8;
                for (m = 0; m < 8; m++) {
                    nx = x + dxs[m];
                    ny = y + dys[m];
                    if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                        if (kd[source][nx * 8 + ny] > round + 1) {
                            kd[source][nx * 8 + ny] = round + 1;
                            changed = 1;
                        }
                    }
                }
            }
        }
        round = round + 1;
    }
}

int kingdist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

void main() {
    int s;
    int g;
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    for (s = 0; s < 64; s++) {
        sweep(s);
    }
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = 0;
        for (i = 0; i < in_n; i++) {
            base = base + kd[in_nx[i] * 8 + in_ny[i]][g];
        }
        kc = kingdist(in_kx, in_ky, g / 8, g % 8);
        for (p = 0; p < 64; p++) {
            w = kingdist(in_kx, in_ky, p / 8, p % 8);
            if (w >= kc) {
                continue;
            }
            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

CORRECT_FRAGMENT = r"""    changed = 1;
    round = 0;
    while (changed) {
        changed = 0;
        for (sq = 0; sq < 64; sq++) {
            if (kd[source][sq] == round) {
                x = sq / 8;
                y = sq % 8;
                for (m = 0; m < 8; m++) {
                    nx = x + dxs[m];
                    ny = y + dys[m];
                    if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                        if (kd[source][nx * 8 + ny] > round + 1) {
                            kd[source][nx * 8 + ny] = round + 1;
                            changed = 1;
                        }
                    }
                }
            }
        }
        round = round + 1;
    }"""

# The faulty program sweeps four rounds and guesses "5" for the rest —
# "nothing is more than five knight moves away on an 8x8 board".
FAULTY_FRAGMENT = r"""    for (round = 0; round < 4; round++) {
        for (sq = 0; sq < 64; sq++) {
            if (kd[source][sq] == round) {
                x = sq / 8;
                y = sq % 8;
                for (m = 0; m < 8; m++) {
                    nx = x + dxs[m];
                    ny = y + dys[m];
                    if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                        if (kd[source][nx * 8 + ny] > round + 1) {
                            kd[source][nx * 8 + ny] = round + 1;
                        }
                    }
                }
            }
        }
    }
    for (sq = 0; sq < 64; sq++) {
        if (kd[source][sq] == 99) {
            kd[source][sq] = 5;
        }
    }
    changed = 0;"""

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""C.team10 — Camelot with mutually recursive search functions.

No known fault; the second "recursive algorithms" entry of Table 2
(alongside C.team1).  Where team1 drains its BFS queue with one recursive
function, team10 splits the work across two mutually recursive functions
— ``step`` advances the queue head, ``expand`` walks the move list by
index — and evaluates the 64 gathering squares recursively as well.
"""

SOURCE = r"""
/* C.team10 - Camelot (IOI) - mutually recursive BFS */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int queue[64];
int tail;
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void step(int source, int head);

void expand(int source, int head, int m) {
    int sq;
    int nx;
    int ny;
    if (m >= 8) {
        step(source, head + 1);
        return;
    }
    sq = queue[head];
    nx = sq / 8 + dxs[m];
    ny = sq % 8 + dys[m];
    if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
        if (kd[source][nx * 8 + ny] == 99) {
            kd[source][nx * 8 + ny] = kd[source][sq] + 1;
            queue[tail] = nx * 8 + ny;
            tail = tail + 1;
        }
    }
    expand(source, head, m + 1);
}

void step(int source, int head) {
    if (head >= tail) {
        return;
    }
    expand(source, head, 0);
}

void build(int s) {
    int t;
    if (s >= 64) {
        return;
    }
    for (t = 0; t < 64; t++) {
        kd[s][t] = 99;
    }
    kd[s][s] = 0;
    queue[0] = s;
    tail = 1;
    step(s, 0);
    build(s + 1);
}

int kingdist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

int best_for(int g) {
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    base = 0;
    for (i = 0; i < in_n; i++) {
        base = base + kd[in_nx[i] * 8 + in_ny[i]][g];
    }
    kc = kingdist(in_kx, in_ky, g / 8, g % 8);
    for (p = 0; p < 64; p++) {
        w = kingdist(in_kx, in_ky, p / 8, p % 8);
        if (w >= kc) {
            continue;
        }
        for (i = 0; i < in_n; i++) {
            ks = in_nx[i] * 8 + in_ny[i];
            cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
            if (cand < kc) {
                kc = cand;
            }
        }
    }
    return base + kc;
}

int search(int g, int best) {
    int total;
    if (g >= 64) {
        return best;
    }
    total = best_for(g);
    if (total < best) {
        best = total;
    }
    return search(g + 1, best);
}

void main() {
    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    build(0);
    print_int(search(0, 1000000));
    print_char('\n');
    exit(0);
}
"""

FAULTY_SOURCE = None

"""JB.team7 — JamesB with a running key, and a wrap algorithm fault.

Structure: no table; the key is carried in an accumulator (``key += 1``
per character) and the coded value is brought back into the printable
range by reduction.

Real fault (ODC **algorithm**): the faulty program reduces with a single
conditional subtraction —

    v = phrase[i] - 32 + key;
    if (v >= 95) v = v - 95;

— which is only correct while the running key is below one modulus.  On
long strings the key grows past 95 and the value needs reducing more than
once; the correct program replaces the ``if`` with a ``while`` loop.
Replacing a conditional by a loop is a reimplementation of the reduction
algorithm (the branch structure and code size change), not an
operator/constant fix — a machine-level error at a fixed location cannot
turn the faulty binary into the correct one.  Failure rate tracks the
long-string tail of the input distribution (Table 1: 1.8%).
"""

from . import make_faulty

SOURCE = r"""
/* JB.team7 - JamesB (contest) - running-key codification */

int in_seed;
int in_len;
char in_str[81];

void main() {
    int i;
    int len;
    int key;
    int v;
    int chk;
    char phrase[81];
    char coded[81];

    len = 0;
    while (in_str[len] != 0) {
        phrase[len] = in_str[len];
        len = len + 1;
    }
    phrase[len] = 0;

    key = in_seed % 95;
    chk = 7;
    for (i = 0; i < len; i++) {
        v = phrase[i] - 32 + key;
        while (v >= 95) {
            v = v - 95;
        }
        coded[i] = 32 + v;
        chk = chk * 31 + coded[i];
        key = key + 1;
    }
    coded[len] = 0;

    print_str(coded);
    print_char('\n');
    print_int(chk);
    print_char('\n');
    exit(0);
}
"""

CORRECT_FRAGMENT = r"""        while (v >= 95) {
            v = v - 95;
        }"""

FAULTY_FRAGMENT = r"""        if (v >= 95) {
            v = v - 95;
        }"""

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""JB.team6 — JamesB via a translation table, with the Figure-4 fault.

Structure: builds the 95-entry substitution table for the seed once, then
maps each character through it.

Real fault (ODC **assignment**, the paper's Figure 4): the output buffer
is declared ``char phrase2[80]`` where 81 bytes are needed (80 characters
plus the terminating NUL).  The frame places ``chk`` — the rolling
checksum, fully computed *before* the terminator is written — directly
above ``phrase2``, so on an 80-character input the ``phrase2[len] = 0``
terminator lands on the most significant byte of ``chk`` and the printed
checksum is wrong.  Nothing crashes and nothing hangs; the failure rate
equals the probability of a maximum-length input (Table 1: 0.05%).

§5 emulation on the corrected binary (Figure 4's recipe): shift every
frame reference to ``phrase2`` by +4 so that index 80 aliases ``chk``
exactly as in the faulty frame.  The references outnumber the two
breakpoint registers, which is the paper's finding B — breakpoint-mode
arming fails, and the emulation needs either inserted traps (intrusive)
or the proposed memory-patch tool extension.
"""

from . import make_faulty

SOURCE = r"""
/* JB.team6 - JamesB (contest) - table-based codification */

int in_seed;
int in_len;
char in_str[81];

void main() {
    int i;
    int len;
    int key;
    int chk;
    char phrase2[81];
    char phrase[81];
    int tab[95];

    key = in_seed % 95;
    for (i = 0; i < 95; i++) {
        tab[i] = 32 + (i + key) % 95;
    }

    len = 0;
    while (in_str[len] != 0) {
        phrase[len] = in_str[len];
        len = len + 1;
    }
    phrase[len] = 0;

    chk = 7;
    for (i = 0; i < len; i++) {
        phrase2[i] = tab[(phrase[i] - 32 + i) % 95];
        chk = chk * 31 + phrase2[i];
    }
    phrase2[len] = 0;

    print_str(phrase2);
    print_char('\n');
    print_int(chk);
    print_char('\n');
    exit(0);
}
"""

CORRECT_FRAGMENT = "char phrase2[81];"
FAULTY_FRAGMENT = "char phrase2[80];"

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""C.team8 — Camelot with precomputed neighbour lists (non-recursive).

No known fault; used in the §6 class-emulation campaigns as a second
"non-recursive algorithms" entry alongside C.team2 (Table 2).

Structure: the knight-move graph is materialised once into flat
neighbour arrays (``nbr``/``nbr_count``), so the per-source BFS inner
loop is pure array traffic with no boundary checks.
"""

SOURCE = r"""
/* C.team8 - Camelot (IOI) - precomputed neighbour lists */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int nbr[64][8];
int nbr_count[64];
int queue[64];
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void build_graph(void) {
    int sq;
    int m;
    int x;
    int y;
    int nx;
    int ny;
    for (sq = 0; sq < 64; sq++) {
        nbr_count[sq] = 0;
        x = sq / 8;
        y = sq % 8;
        for (m = 0; m < 8; m++) {
            nx = x + dxs[m];
            ny = y + dys[m];
            if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                nbr[sq][nbr_count[sq]] = nx * 8 + ny;
                nbr_count[sq] = nbr_count[sq] + 1;
            }
        }
    }
}

void bfs(int source) {
    int head;
    int tail;
    int sq;
    int m;
    int t;
    int next;
    for (t = 0; t < 64; t++) {
        kd[source][t] = 99;
    }
    kd[source][source] = 0;
    queue[0] = source;
    head = 0;
    tail = 1;
    while (head < tail) {
        sq = queue[head];
        head = head + 1;
        for (m = 0; m < nbr_count[sq]; m++) {
            next = nbr[sq][m];
            if (kd[source][next] == 99) {
                kd[source][next] = kd[source][sq] + 1;
                queue[tail] = next;
                tail = tail + 1;
            }
        }
    }
}

int kingdist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

void main() {
    int s;
    int g;
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    build_graph();
    for (s = 0; s < 64; s++) {
        bfs(s);
    }
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = 0;
        for (i = 0; i < in_n; i++) {
            base = base + kd[in_nx[i] * 8 + in_ny[i]][g];
        }
        kc = kingdist(in_kx, in_ky, g / 8, g % 8);
        for (p = 0; p < 64; p++) {
            w = kingdist(in_kx, in_ky, p / 8, p % 8);
            if (w >= kc) {
                continue;
            }
            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

FAULTY_SOURCE = None

"""SOR — the parallel red-black Laplace relaxation in MiniC.

Runs on all four cores of the machine: every core strides over the
interior rows (row ``r`` belongs to core ``(r - 1) % num_cores``), the
red and black half-sweeps are separated by barriers, and core 0 prints
the result matrix (row sums, their total, and the final residual) after
the last barrier.

This is the reproduction's "real life program ... larger size" entry: the
paper's SOR was ~2400 lines of production C; ours is proportionally
smaller but remains the largest workload and the only parallel one
(see DESIGN.md §2).  No known real fault; SOR participates in the §6
class-emulation campaigns, where the paper observed it to be "quite
sensitive to checking faults" with a large share of crashes.
"""

SOURCE = r"""
/* SOR - parallel red-black over-relaxation on an n x n grid.
 *
 * Phases (all cores execute main; work is split by core id):
 *   1. core 0 initialises the grid and boundaries
 *   2. in_iters iterations of: red half-sweep, barrier,
 *                              black half-sweep, barrier
 *   3. core 0 prints row sums, the grand total, and the residual
 */

#define MAXN 16
#define RED 0
#define BLACK 1

int in_size;
int in_iters;
int in_north[16];
int in_south[16];
int in_west[16];
int in_east[16];

int grid[16][16];

void clear_interior(void) {
    int i;
    int j;
    for (i = 0; i < in_size; i++) {
        for (j = 0; j < in_size; j++) {
            grid[i][j] = 0;
        }
    }
}

void init_north_edge(void) {
    int j;
    for (j = 0; j < in_size; j++) {
        grid[0][j] = in_north[j];
    }
}

void init_south_edge(void) {
    int j;
    for (j = 0; j < in_size; j++) {
        grid[in_size - 1][j] = in_south[j];
    }
}

void init_west_edge(void) {
    int i;
    for (i = 1; i < in_size - 1; i++) {
        grid[i][0] = in_west[i];
    }
}

void init_east_edge(void) {
    int i;
    for (i = 1; i < in_size - 1; i++) {
        grid[i][in_size - 1] = in_east[i];
    }
}

void init_boundaries(void) {
    clear_interior();
    init_north_edge();
    init_south_edge();
    init_west_edge();
    init_east_edge();
}

int stencil(int i, int j) {
    int acc;
    acc = grid[i - 1][j] + grid[i + 1][j];
    acc = acc + grid[i][j - 1] + grid[i][j + 1];
    return acc / 4;
}

void sweep_row(int i, int parity) {
    int j;
    for (j = 1; j < in_size - 1; j++) {
        if ((i + j) % 2 == parity) {
            grid[i][j] = stencil(i, j);
        }
    }
}

void half_sweep(int me, int workers, int parity) {
    int i;
    for (i = 1 + me; i < in_size - 1; i += workers) {
        sweep_row(i, parity);
    }
}

int row_sum(int i) {
    int j;
    int total = 0;
    for (j = 0; j < in_size; j++) {
        total = total + grid[i][j];
    }
    return total;
}

int col_sum(int j) {
    int i;
    int total = 0;
    for (i = 0; i < in_size; i++) {
        total = total + grid[i][j];
    }
    return total;
}

int grid_min(void) {
    int i;
    int j;
    int best = grid[0][0];
    for (i = 0; i < in_size; i++) {
        for (j = 0; j < in_size; j++) {
            if (grid[i][j] < best) {
                best = grid[i][j];
            }
        }
    }
    return best;
}

int grid_max(void) {
    int i;
    int j;
    int best = grid[0][0];
    for (i = 0; i < in_size; i++) {
        for (j = 0; j < in_size; j++) {
            if (grid[i][j] > best) {
                best = grid[i][j];
            }
        }
    }
    return best;
}

int residual(void) {
    /* Sum of |cell - stencil(cell)| over the interior: how far the grid
     * still is from the discrete-Laplace fixpoint. */
    int i;
    int j;
    int diff;
    int total = 0;
    for (i = 1; i < in_size - 1; i++) {
        for (j = 1; j < in_size - 1; j++) {
            diff = grid[i][j] - stencil(i, j);
            if (diff < 0) {
                diff = -diff;
            }
            total = total + diff;
        }
    }
    return total;
}

void print_result(void) {
    int i;
    int j;
    int r;
    int total = 0;
    for (i = 0; i < in_size; i++) {
        r = row_sum(i);
        total = total + r;
        print_int(r);
        print_char('\n');
    }
    for (j = 0; j < in_size; j++) {
        print_int(col_sum(j));
        print_char('\n');
    }
    print_int(total);
    print_char('\n');
    print_int(grid_min());
    print_char(' ');
    print_int(grid_max());
    print_char('\n');
    print_int(residual());
    print_char('\n');
}

void main() {
    int me;
    int workers;
    int iter;

    me = core_id();
    workers = num_cores();

    if (me == 0) {
        init_boundaries();
    }
    barrier();

    for (iter = 0; iter < in_iters; iter++) {
        half_sweep(me, workers, RED);
        barrier();
        half_sweep(me, workers, BLACK);
        barrier();
    }

    if (me == 0) {
        print_result();
    }
    exit(0);
}
"""

FAULTY_SOURCE = None

"""C.team9 — Camelot built on dynamic data structures.

Table 2 singles this entry out: "non-recursive algorithm, use many
dynamic structures".  Every BFS queue node is a malloc'd linked-list cell
(freed as it is dequeued) and the distance table itself is an array of 64
heap-allocated rows reached through a pointer table.

Under §6 fault injection this program shows an elevated crash rate — the
paper's explanation being exactly this design: corrupted values flow into
pointers (queue links, row pointers) and the next dereference or ``free``
hits unmapped memory or the heap manager's consistency checks.
"""

SOURCE = r"""
/* C.team9 - Camelot (IOI) - linked-list queue, heap-allocated table */

struct cell {
    int sq;
    struct cell *next;
};

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int *rows[64];
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void bfs(int source) {
    struct cell *head;
    struct cell *tail;
    struct cell *node;
    int *dist;
    int sq;
    int m;
    int nx;
    int ny;
    int t;
    dist = rows[source];
    for (t = 0; t < 64; t++) {
        dist[t] = 99;
    }
    dist[source] = 0;
    head = malloc(sizeof(struct cell));
    head->sq = source;
    head->next = 0;
    tail = head;
    while (head != 0) {
        sq = head->sq;
        for (m = 0; m < 8; m++) {
            nx = sq / 8 + dxs[m];
            ny = sq % 8 + dys[m];
            if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                if (dist[nx * 8 + ny] == 99) {
                    dist[nx * 8 + ny] = dist[sq] + 1;
                    node = malloc(sizeof(struct cell));
                    node->sq = nx * 8 + ny;
                    node->next = 0;
                    tail->next = node;
                    tail = node;
                }
            }
        }
        node = head;
        head = head->next;
        free(node);
    }
}

int kingdist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    dy = y1 - y2;
    if (dx < 0) {
        dx = -dx;
    }
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

void main() {
    int s;
    int g;
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    for (s = 0; s < 64; s++) {
        rows[s] = malloc(64 * sizeof(int));
        bfs(s);
    }
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = 0;
        for (i = 0; i < in_n; i++) {
            base = base + rows[in_nx[i] * 8 + in_ny[i]][g];
        }
        kc = kingdist(in_kx, in_ky, g / 8, g % 8);
        for (p = 0; p < 64; p++) {
            w = kingdist(in_kx, in_ky, p / 8, p % 8);
            if (w >= kc) {
                continue;
            }
            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = rows[ks][p] + w + rows[p][g] - rows[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    for (s = 0; s < 64; s++) {
        free(rows[s]);
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

FAULTY_SOURCE = None

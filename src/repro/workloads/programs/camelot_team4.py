"""C.team4 — Camelot, knight-major search order, with an assignment fault.

Structure: iterative BFS distances (like team2) but the gather
minimisation iterates knights in the outer loop of the carry search and
uses a dedicated carrier index variable ``c``.

Real fault (ODC **assignment**, the paper's Figure-3 shape): the carrier
loop is initialised with the wrong constant — ``for (c = 1; ...)`` where
the correct program starts at ``c = 0`` — so knight 0 is never considered
as the king's carrier.  At machine level the difference is exactly
Figure 3's: one ``addi rX, r0, 1`` that should be ``addi rX, r0, 0``.
The fault is emulated on the corrected binary by corrupting the operand
stored by that initialisation (+1) on every execution — the Figure-3
option-2 "data bus" emulation.

Wrong results appear whenever knight 0 is the uniquely-best carrier,
which with few knights on the board is frequent — this is the program
with the highest Table-1 failure rate (30.8% in the paper).
"""

from . import make_faulty

SOURCE = r"""
/* C.team4 - Camelot (IOI) - knight-major carry search */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int queue[64];
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void bfs(int source) {
    int head;
    int tail;
    int sq;
    int m;
    int nx;
    int ny;
    int t;
    for (t = 0; t < 64; t++) {
        kd[source][t] = 99;
    }
    kd[source][source] = 0;
    queue[0] = source;
    head = 0;
    tail = 1;
    while (head < tail) {
        sq = queue[head];
        head = head + 1;
        for (m = 0; m < 8; m++) {
            nx = sq / 8 + dxs[m];
            ny = sq % 8 + dys[m];
            if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                if (kd[source][nx * 8 + ny] > kd[source][sq] + 1) {
                    kd[source][nx * 8 + ny] = kd[source][sq] + 1;
                    queue[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int kingdist(int x1, int y1, int x2, int y2) {
    int dx;
    int dy;
    dx = x1 - x2;
    if (dx < 0) {
        dx = -dx;
    }
    dy = y1 - y2;
    if (dy < 0) {
        dy = -dy;
    }
    if (dx > dy) {
        return dx;
    }
    return dy;
}

void main() {
    int s;
    int g;
    int p;
    int i;
    int c;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    for (s = 0; s < 64; s++) {
        bfs(s);
    }
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = 0;
        for (i = 0; i < in_n; i++) {
            base = base + kd[in_nx[i] * 8 + in_ny[i]][g];
        }
        kc = kingdist(in_kx, in_ky, g / 8, g % 8);
        for (c = 0; c < in_n; c++) {
            ks = in_nx[c] * 8 + in_ny[c];
            for (p = 0; p < 64; p++) {
                w = kingdist(in_kx, in_ky, p / 8, p % 8);
                if (w >= kc) {
                    continue;
                }
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

CORRECT_FRAGMENT = "for (c = 0; c < in_n; c++)"
FAULTY_FRAGMENT = "for (c = 1; c < in_n; c++)"

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""C.team5 — Camelot with the paper's Figure-6 algorithm fault, verbatim.

Structure: straightforward iterative BFS plus a small ``dist`` helper for
the king's distance — the function shown in Figure 6.

Real fault (ODC **algorithm**, Figure 6): ``dist`` returns

    ((dx>0)?dx:-dx) + ((dy>0)?dy:-dy)        /* faulty: Manhattan */

where the king actually moves like a chess king, so the correct value is

    max(((dx>0)?dx:-dx), ((dy>0)?dy:-dy))    /* Chebyshev */

The correction introduces a call to a ``max`` function: as the paper's
Figure-6 note 2 observes, "the stack size reserved for the function dist
in the corrected version is greater than in the original program" — the
two binaries differ in code shape and frame layout, which is precisely
why the Xception cannot emulate this fault.

The failure rate is low (2.9% in Table 1): the king usually rides a
knight, and the short walks to pickup squares are most often straight
lines, where Manhattan and Chebyshev agree.
"""

from . import make_faulty

SOURCE = r"""
/* C.team5 - Camelot (IOI) - BFS with a dist() helper */

int in_n;
int in_kx;
int in_ky;
int in_nx[64];
int in_ny[64];

int kd[64][64];
int queue[64];
int dxs[8] = {1, 2, 2, 1, -1, -2, -2, -1};
int dys[8] = {2, 1, -1, -2, -2, -1, 1, 2};

void bfs(int source) {
    int head;
    int tail;
    int sq;
    int m;
    int nx;
    int ny;
    int t;
    for (t = 0; t < 64; t++) {
        kd[source][t] = 99;
    }
    kd[source][source] = 0;
    queue[0] = source;
    head = 0;
    tail = 1;
    while (head < tail) {
        sq = queue[head];
        head = head + 1;
        for (m = 0; m < 8; m++) {
            nx = sq / 8 + dxs[m];
            ny = sq % 8 + dys[m];
            if (nx >= 0 && nx < 8 && ny >= 0 && ny < 8) {
                if (kd[source][nx * 8 + ny] == 99) {
                    kd[source][nx * 8 + ny] = kd[source][sq] + 1;
                    queue[tail] = nx * 8 + ny;
                    tail = tail + 1;
                }
            }
        }
    }
}

int max(int a, int b) {
    return (a > b) ? a : b;
}

int dist(int x1, int y1, int x2, int y2) {
    int dx = x1 - x2;
    int dy = y1 - y2;
    return max(((dx > 0) ? dx : -dx), ((dy > 0) ? dy : -dy));
}

void main() {
    int s;
    int g;
    int p;
    int i;
    int base;
    int kc;
    int w;
    int ks;
    int cand;
    int best;

    if (in_n == 0) {
        print_int(0);
        print_char('\n');
        exit(0);
    }
    for (s = 0; s < 64; s++) {
        bfs(s);
    }
    best = 1000000;
    for (g = 0; g < 64; g++) {
        base = 0;
        for (i = 0; i < in_n; i++) {
            base = base + kd[in_nx[i] * 8 + in_ny[i]][g];
        }
        kc = dist(in_kx, in_ky, g / 8, g % 8);
        for (p = 0; p < 64; p++) {
            w = dist(in_kx, in_ky, p / 8, p % 8);
            if (w >= kc) {
                continue;
            }
            for (i = 0; i < in_n; i++) {
                ks = in_nx[i] * 8 + in_ny[i];
                cand = kd[ks][p] + w + kd[p][g] - kd[ks][g];
                if (cand < kc) {
                    kc = cand;
                }
            }
        }
        if (base + kc < best) {
            best = base + kc;
        }
    }
    print_int(best);
    print_char('\n');
    exit(0);
}
"""

CORRECT_FRAGMENT = "return max(((dx > 0) ? dx : -dx), ((dy > 0) ? dy : -dy));"
FAULTY_FRAGMENT = "return ((dx > 0) ? dx : -dx) + ((dy > 0) ? dy : -dy);"

FAULTY_SOURCE = make_faulty(SOURCE, CORRECT_FRAGMENT, FAULTY_FRAGMENT)

"""Field-data distribution of software-fault types.

The paper anchors its headline finding on the field data of
Christmansson & Chillarege (FTCS-26, 1996) — the paper's reference [5]:
"Considered the field data results published in [5] these kind of faults
(algorithm and function) accounts for nearly 44% of the software faults."

The exact per-type percentages of [5] are not reprinted in the paper, so
the distribution below is a documented reconstruction: algorithm+function
is pinned to the 44% the paper quotes, and the remaining mass follows the
qualitative ordering reported in the ODC literature for code-related
defects (assignment > checking > interface > timing).  Every consumer of
this table only relies on (a) the 44% share and (b) that ordering, both of
which come straight from the paper.  See DESIGN.md §2.
"""

from __future__ import annotations

from .defect_types import DefectType, Emulability, TYPE_EMULABILITY

#: Reconstructed share of each ODC code-related defect type in field data.
FIELD_DISTRIBUTION: dict[DefectType, float] = {
    DefectType.ASSIGNMENT: 0.2180,
    DefectType.CHECKING: 0.1750,
    DefectType.INTERFACE: 0.1330,
    DefectType.TIMING: 0.0340,
    DefectType.ALGORITHM: 0.4040,
    DefectType.FUNCTION: 0.0360,
}

assert abs(sum(FIELD_DISTRIBUTION.values()) - 1.0) < 1e-9


def share(*types: DefectType) -> float:
    """Combined field share of the given defect types."""
    return sum(FIELD_DISTRIBUTION[defect_type] for defect_type in types)


def non_emulable_share() -> float:
    """The paper's ~44%: faults no SWIFI tool can emulate (algorithm+function)."""
    return share(DefectType.ALGORITHM, DefectType.FUNCTION)


def share_by_emulability() -> dict[Emulability, float]:
    """Field mass per §5 emulability verdict."""
    out: dict[Emulability, float] = {}
    for defect_type, fraction in FIELD_DISTRIBUTION.items():
        verdict = TYPE_EMULABILITY[defect_type]
        out[verdict] = out.get(verdict, 0.0) + fraction
    return out


def weighted_fault_counts(total: int) -> dict[DefectType, int]:
    """Distribute *total* faults across types per the field distribution.

    This is use (b) of field data identified in §6.1: "to choose the most
    common type of errors".  Rounds down and gives the remainder to the
    largest type, so the counts always sum to *total*.
    """
    counts = {
        defect_type: int(total * fraction)
        for defect_type, fraction in FIELD_DISTRIBUTION.items()
    }
    remainder = total - sum(counts.values())
    if remainder:
        largest = max(FIELD_DISTRIBUTION, key=lambda t: FIELD_DISTRIBUTION[t])
        counts[largest] += remainder
    return counts

"""Orthogonal Defect Classification: defect types, triggers, field data."""

from .defect_types import TYPE_EMULABILITY, DefectType, Emulability
from .field_data import (
    FIELD_DISTRIBUTION,
    non_emulable_share,
    share,
    share_by_emulability,
    weighted_fault_counts,
)
from .triggers import EXPOSURE_CHAIN, ODCTrigger

__all__ = [
    "TYPE_EMULABILITY",
    "DefectType",
    "Emulability",
    "FIELD_DISTRIBUTION",
    "non_emulable_share",
    "share",
    "share_by_emulability",
    "weighted_fault_counts",
    "EXPOSURE_CHAIN",
    "ODCTrigger",
]

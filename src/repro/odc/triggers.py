"""ODC fault triggers (the *system test* trigger classes).

§3: "Only the system test class of triggers is relevant for our study, as
it represents the broad environmental conditions when the faults are
exposed during the operational use in the field. ... The normal mode
category means that the software fault has been exposed when everything
was supposed to work normally.  This is the trigger category relevant for
our study as all the experiments have been done with the target system
working in normal conditions."

ODC triggers describe *environmental conditions*, not injection points —
which is exactly why they "cannot be used to define the SWIFI fault
triggers" and the paper decomposes the SWIFI When into Which + When
instead (see :mod:`repro.swifi.faults`).
"""

from __future__ import annotations

from enum import Enum


class ODCTrigger(str, Enum):
    STARTUP_RESTART = "startup/restart"
    WORKLOAD_STRESS = "workload volume/stress"
    RECOVERY_EXCEPTION = "recovery/exception"
    HW_SW_CONFIGURATION = "hardware/software configuration"
    NORMAL_MODE = "normal mode"

    @property
    def is_experiment_relevant(self) -> bool:
        """True for the trigger class this study injects under."""
        return self is ODCTrigger.NORMAL_MODE


#: p1 * p2 * p3 — the paper's Figure 2 exposure chain.  Injecting *errors*
#: rather than faults collapses p1 and p2 to 1 (§3), which is the source of
#: the representativeness question the paper investigates.
EXPOSURE_CHAIN = ("p1: faulty code executed", "p2: errors generated", "p3: failure")

"""Orthogonal Defect Classification (ODC) defect types.

The paper characterises a software fault "by the change in the code that
is necessary to correct it" (the ODC notion of defect) and uses the ODC
code-related defect types as its fault taxonomy (§3).  Descriptions below
are the paper's own wording.
"""

from __future__ import annotations

from enum import Enum


class DefectType(str, Enum):
    ASSIGNMENT = "assignment"
    CHECKING = "checking"
    INTERFACE = "interface"
    TIMING = "timing"
    ALGORITHM = "algorithm"
    FUNCTION = "function"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    DefectType.ASSIGNMENT: "values assigned incorrectly or not assigned",
    DefectType.CHECKING: (
        "missing or incorrect validation of data or incorrect loop or "
        "conditional statements"
    ),
    DefectType.INTERFACE: (
        "errors in the interaction among components, modules, device "
        "drivers, call statements, etc"
    ),
    DefectType.TIMING: "missing or incorrect serialization of shared resources",
    DefectType.ALGORITHM: (
        "incorrect or missing implementation that can be fixed by "
        "(re)implementing an algorithm or data structure without the need "
        "for a design change"
    ),
    DefectType.FUNCTION: (
        "incorrect or missing implementation of a capability that affects a "
        "substantial amount of code and requires a formal design change to "
        "be corrected"
    ),
}


class Emulability(str, Enum):
    """The three §5 verdict categories for SWIFI emulation of a fault class."""

    EMULABLE = "emulable"                      # category A
    NEEDS_TOOL_EXTENSIONS = "needs-extensions"  # category B
    NOT_EMULABLE = "not-emulable"               # category C


# §5's per-type verdicts.  Interface faults "are somehow similar to
# assignment faults ... and some of them can be emulated"; timing faults
# are "heavily dependent on the specific fault".  The headline result uses
# the clear-cut categories.
TYPE_EMULABILITY = {
    DefectType.ASSIGNMENT: Emulability.EMULABLE,
    DefectType.CHECKING: Emulability.EMULABLE,
    DefectType.INTERFACE: Emulability.NEEDS_TOOL_EXTENSIONS,
    DefectType.TIMING: Emulability.NEEDS_TOOL_EXTENSIONS,
    DefectType.ALGORITHM: Emulability.NOT_EMULABLE,
    DefectType.FUNCTION: Emulability.NOT_EMULABLE,
}

"""repro.srcfi — source-level fault injection (the paper's missing tier).

Machine-level SWIFI covers assignment and checking faults; the paper's
§5 verdict is that algorithm and function faults — ~44% of the field
distribution — cannot be emulated at that level.  This package injects
those faults where they actually live: as ODC-typed mutations of the
MiniC statement trees, compiled into mutant binaries that run through the
unchanged campaign machinery.  :class:`SourceFault` is the
``tier="source"`` member of the :class:`repro.swifi.InjectionSpec`
hierarchy; ``CampaignConfig(tier="source")`` routes any campaign here,
and :mod:`repro.experiments.srcfi_compare` measures per-ODC-class
agreement between the two tiers.
"""

from .campaign import run_source_campaign
from .locator import SourceErrorSet, SourceLocator, generate_source_error_set
from .mutator import (
    MutantCache,
    SourceMutant,
    SrcfiError,
    realize_source_fault,
    recompiled_identical,
)
from .operators import (
    ALGORITHM_CLASS,
    COUNTERPART_APPROXIMATE,
    COUNTERPART_EXACT,
    COUNTERPART_NONE,
    FUNCTION_CLASS,
    MUTATION_CLASSES,
    OPERATORS,
    OPERATORS_BY_NAME,
    MutationError,
    MutationOperator,
    MutationSite,
    get_operator,
    operators_for_class,
)
from .spec import SourceFault

__all__ = [
    "ALGORITHM_CLASS",
    "COUNTERPART_APPROXIMATE",
    "COUNTERPART_EXACT",
    "COUNTERPART_NONE",
    "FUNCTION_CLASS",
    "MUTATION_CLASSES",
    "MutantCache",
    "MutationError",
    "MutationOperator",
    "MutationSite",
    "OPERATORS",
    "OPERATORS_BY_NAME",
    "SourceErrorSet",
    "SourceFault",
    "SourceLocator",
    "SourceMutant",
    "SrcfiError",
    "generate_source_error_set",
    "get_operator",
    "operators_for_class",
    "realize_source_fault",
    "recompiled_identical",
    "run_source_campaign",
]

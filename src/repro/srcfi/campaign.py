"""Source-tier campaign execution.

:func:`run_source_campaign` is what :meth:`repro.swifi.CampaignRunner.run`
dispatches to for ``CampaignConfig(tier="source")``.  Each
:class:`~repro.srcfi.spec.SourceFault` compiles to a mutant binary
(cached per process) which then runs *fault-free* through the very same
:func:`repro.swifi.campaign.execute_injection_run` unit the machine tier
uses — same calibrated hang budgets (derived from the *original*
program's fault-free runs, so both tiers are judged against the same
clock), same failure-mode classification, same record schema.

Supported execution options: ``jobs`` (process pool over faults),
``journal_dir``/``resume`` (JSONL journal keyed by (fault, case)),
``engine``, ``label``.  ``trace`` and ``telemetry`` are accepted as
no-ops at this tier.  Snapshot restore and the campaign planner reason
about machine-level trigger/action structure that source faults do not
have, so ``snapshot``/``prune``/``memoize`` raise
:class:`~repro.swifi.campaign.CampaignError`.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable

from ..swifi.campaign import (
    SNAPSHOT_OFF,
    CampaignConfig,
    CampaignError,
    CampaignResult,
    CampaignRunner,
    InputCase,
    RunRecord,
    execute_injection_run,
)
from ..persist import trim_partial_tail
from ..swifi.spec import TIER_SOURCE
from .mutator import MutantCache, SourceMutant, SrcfiError, realize_source_fault
from .spec import SourceFault

JOURNAL_NAME = "source_runs.jsonl"


def _check_config(config: CampaignConfig) -> None:
    if config.snapshot != SNAPSHOT_OFF:
        raise CampaignError(
            "snapshot restore is a machine-tier fast path; source-tier "
            "campaigns run mutant binaries and need snapshot='off'"
        )
    if config.prune or config.memoize or config.plan_verify > 0.0:
        raise CampaignError(
            "the campaign planner reasons about machine-level triggers; "
            "it does not apply to tier='source' campaigns"
        )


def _check_faults(faults: list) -> list[SourceFault]:
    for fault in faults:
        if not isinstance(fault, SourceFault):
            raise CampaignError(
                f"tier='source' campaigns take SourceFault specs, got "
                f"{type(fault).__name__} ({getattr(fault, 'fault_id', fault)!r})"
            )
    return faults


def _run_fault(
    mutant: SourceMutant,
    cases: list[InputCase],
    budgets: dict[str, int],
    *,
    num_cores: int,
    quantum: int,
    engine: str,
    wanted: "set[str] | None" = None,
) -> list[RunRecord]:
    """All input cases of one realized mutant, in case order."""
    records: list[RunRecord] = []
    for case in cases:
        if wanted is not None and case.case_id not in wanted:
            continue
        base = execute_injection_run(
            mutant.compiled.executable,
            None,
            case,
            budget=budgets[case.case_id],
            num_cores=num_cores,
            quantum=quantum,
            engine=engine,
        )
        # The mutation is compiled in, so the "fault" is present and
        # active on every instruction: record it as one activation/
        # injection, with the SourceFault's identity and metadata.
        records.append(replace(
            base,
            fault_id=mutant.fault.fault_id,
            metadata=mutant.fault.metadata,
            activations=1,
            injections=1,
        ))
    return records


# -- worker-process plumbing -------------------------------------------------

_WORKER: dict | None = None


def _worker_init(compiled, cases, budgets, num_cores, quantum, engine) -> None:
    global _WORKER
    _WORKER = {
        "compiled": compiled,
        "cases": cases,
        "budgets": budgets,
        "num_cores": num_cores,
        "quantum": quantum,
        "engine": engine,
        "cache": MutantCache(),
    }


def _worker_run(payload: tuple) -> list[RunRecord]:
    fault, wanted = payload
    assert _WORKER is not None
    mutant = realize_source_fault(_WORKER["compiled"], fault, _WORKER["cache"])
    return _run_fault(
        mutant, _WORKER["cases"], _WORKER["budgets"],
        num_cores=_WORKER["num_cores"], quantum=_WORKER["quantum"],
        engine=_WORKER["engine"], wanted=wanted,
    )


# -- journal -----------------------------------------------------------------

def _load_journal(path: str) -> dict[tuple[str, str], RunRecord]:
    done: dict[tuple[str, str], RunRecord] = {}
    if not os.path.exists(path):
        return done
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail write of a killed campaign
            if entry.get("type") != "run":
                continue
            record = RunRecord.from_dict(entry["record"])
            done[(record.fault_id, record.case_id)] = record
    return done


def run_source_campaign(
    runner: CampaignRunner,
    faults: list,
    config: CampaignConfig,
    progress: Callable[[int, int], None] | None = None,
) -> CampaignResult:
    """Execute a source-tier campaign through an existing runner."""
    _check_config(config)
    source_faults = _check_faults(faults)
    runner.calibrate()  # budgets + golden oracle come from the ORIGINAL binary
    budgets = dict(runner.budgets)
    cases = runner.cases

    journal_path = None
    done: dict[tuple[str, str], RunRecord] = {}
    if config.journal_dir is not None:
        os.makedirs(config.journal_dir, exist_ok=True)
        journal_path = os.path.join(config.journal_dir, JOURNAL_NAME)
        # Repair a crash-torn tail before the append below fuses a new
        # record onto it (the resume reader only *tolerates* the tear).
        trim_partial_tail(journal_path)
        if config.resume:
            done = _load_journal(journal_path)

    # Which (fault, case) units still need executing?
    pending: list[tuple[SourceFault, set[str] | None]] = []
    for fault in source_faults:
        missing = {
            case.case_id for case in cases
            if (fault.fault_id, case.case_id) not in done
        }
        if missing:
            pending.append(
                (fault, None if len(missing) == len(cases) else missing)
            )

    total = len(source_faults) * len(cases)
    completed = len(done)
    journal = None
    try:
        if journal_path is not None:
            journal = open(journal_path, "a", encoding="utf-8")

        def consume(batch: list[RunRecord]) -> None:
            nonlocal completed
            for record in batch:
                done[(record.fault_id, record.case_id)] = record
                if journal is not None:
                    journal.write(json.dumps(
                        {"type": "run", "record": record.to_dict()}
                    ) + "\n")
                    journal.flush()
                completed += 1
                if progress is not None:
                    progress(completed, total)

        try:
            if config.jobs == 1 or len(pending) <= 1:
                cache = MutantCache()
                for fault, wanted in pending:
                    mutant = realize_source_fault(runner.compiled, fault, cache)
                    consume(_run_fault(
                        mutant, cases, budgets,
                        num_cores=runner.num_cores, quantum=runner.quantum,
                        engine=config.engine, wanted=wanted,
                    ))
            else:
                with ProcessPoolExecutor(
                    max_workers=min(config.jobs, len(pending)),
                    initializer=_worker_init,
                    initargs=(runner.compiled, cases, budgets,
                              runner.num_cores, runner.quantum, config.engine),
                ) as pool:
                    for batch in pool.map(_worker_run, pending):
                        consume(batch)
        except SrcfiError as error:
            raise CampaignError(str(error)) from error
    finally:
        if journal is not None:
            journal.close()

    result = CampaignResult(program=runner.compiled.name)
    for fault in source_faults:
        for case in cases:
            key = (fault.fault_id, case.case_id)
            if key not in done:
                raise CampaignError(
                    f"source campaign lost run {key}"
                )  # pragma: no cover - defensive
            result.records.append(done[key])
    return result

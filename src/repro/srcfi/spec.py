"""The source-tier injection spec.

A :class:`SourceFault` is the ``tier="source"`` member of the unified
:class:`repro.swifi.InjectionSpec` hierarchy: instead of a machine-level
trigger/action program, it names a mutation operator and a site ordinal
within that operator's deterministic site enumeration.  Realization
(:func:`repro.srcfi.mutator.realize_source_fault`) turns it into a mutant
binary; campaigns then run the mutant fault-free through the exact same
record pipeline machine-tier injections use.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..swifi.spec import InjectionSpec, TIER_SOURCE


@dataclass(frozen=True)
class SourceFault(InjectionSpec):
    """One source-level fault: (operator, site ordinal).

    ``site_index`` indexes the operator's site list for the target
    program (wrapping, so any non-negative ordinal is valid).  Metadata
    rides along into every :class:`repro.swifi.RunRecord` the fault
    produces, exactly like :class:`repro.swifi.MachineFault` metadata.
    """

    operator: str
    site_index: int
    metadata: tuple[tuple[str, object], ...] = field(default=())

    tier = TIER_SOURCE

    @property
    def fault_id(self) -> str:
        return f"sf:{self.operator}:{self.site_index}"

    @property
    def spec_id(self) -> str:
        return self.fault_id

    @property
    def meta(self) -> dict[str, object]:
        return dict(self.metadata)

    def with_metadata(self, **extra: object) -> "SourceFault":
        merged = dict(self.metadata)
        merged.update(extra)
        return replace(self, metadata=tuple(merged.items()))

    def describe(self) -> str:
        where = ""
        meta = self.meta
        if "function" in meta and "line" in meta:
            where = f" at {meta['function']}:{meta['line']}"
        return f"{self.fault_id}{where} [source tier]"

    def to_dict(self) -> dict[str, object]:
        return {
            "tier": TIER_SOURCE,
            "operator": self.operator,
            "site_index": self.site_index,
            "metadata": [[key, value] for key, value in self.metadata],
        }

    @staticmethod
    def from_dict(payload: dict) -> "SourceFault":
        return SourceFault(
            operator=payload["operator"],
            site_index=payload["site_index"],
            metadata=tuple((key, value) for key, value in payload.get("metadata", [])),
        )

"""Source-level fault-site enumeration and error-set generation.

The source-tier analogue of :class:`repro.emulation.FaultLocator` and
:func:`repro.emulation.rules.generate_error_set`: enumerate where each
mutation operator applies (reusing the compiler's debug records to keep
only sites whose machine-tier anchoring is unambiguous, where exactness
demands it), and sample §6.3-style error sets over those locations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lang.compiler import CompiledProgram
from ..swifi.spec import TIER_SOURCE
from .operators import (
    MUTATION_CLASSES,
    OPERATORS,
    MutationError,
    MutationOperator,
    MutationSite,
    get_operator,
    operators_for_class,
)
from .spec import SourceFault


@dataclass
class SourceErrorSet:
    """A §6.3-style sampled error set at the source tier."""

    program: str
    klass: str
    possible_locations: int
    chosen_locations: int
    faults: list[SourceFault] = field(default_factory=list)


class SourceLocator:
    """Enumerates mutation sites of one compiled program."""

    def __init__(self, compiled: CompiledProgram) -> None:
        self.compiled = compiled

    def sites(self, operator: "str | MutationOperator") -> list[MutationSite]:
        if isinstance(operator, str):
            operator = get_operator(operator)
        return operator.sites(self.compiled)

    def source_faults(
        self,
        klass: str | None = None,
        *,
        max_sites_per_operator: int | None = None,
    ) -> list[SourceFault]:
        """Every applicable (operator, site) pair as a :class:`SourceFault`.

        Metadata carries the grouping keys the figures and the compare
        study slice on (program, klass, operator, error label, position,
        counterpart kind).
        """
        operators = OPERATORS if klass is None else operators_for_class(klass)
        faults: list[SourceFault] = []
        for operator in operators:
            sites = operator.sites(self.compiled)
            if max_sites_per_operator is not None:
                sites = sites[:max_sites_per_operator]
            for index, site in enumerate(sites):
                faults.append(self._fault(operator, index, site))
        return faults

    def _fault(self, operator: MutationOperator, index: int,
               site: MutationSite) -> SourceFault:
        return SourceFault(
            operator=operator.name,
            site_index=index,
            metadata=(
                ("program", self.compiled.name),
                ("klass", operator.klass),
                ("operator", operator.name),
                ("error_type", operator.name),
                ("error_label", operator.label),
                ("function", site.function),
                ("line", site.line),
                ("counterpart", operator.counterpart),
                ("tier", TIER_SOURCE),
            ),
        )

    def describe(self) -> list[str]:
        """One human-readable line per (operator, site) — CLI listing."""
        lines: list[str] = []
        for operator in OPERATORS:
            for index, site in enumerate(operator.sites(self.compiled)):
                lines.append(
                    f"{self.compiled.name}:{site.function}:{site.line} "
                    f"[{operator.klass}/{operator.name}#{index}] {site.detail}"
                )
        return lines


def generate_source_error_set(
    compiled: CompiledProgram,
    klass: str,
    *,
    max_locations: int,
    rng: random.Random,
) -> SourceErrorSet:
    """Apply the §6.3 sampling rules at the source tier.

    Locations are distinct ``(function, line)`` positions where any
    operator of the class applies; ``max_locations`` of them are sampled
    and every applicable operator at a chosen location contributes one
    fault — mirroring the machine tier's per-location error types.
    """
    if klass not in MUTATION_CLASSES:
        raise MutationError(f"unknown mutation class {klass!r}")
    locator = SourceLocator(compiled)
    faults = locator.source_faults(klass)
    locations = sorted({
        (fault.meta["function"], fault.meta["line"]) for fault in faults
    })
    count = min(max_locations, len(locations))
    chosen = set(sorted(rng.sample(locations, count)))
    kept = [
        fault for fault in faults
        if (fault.meta["function"], fault.meta["line"]) in chosen
    ]
    return SourceErrorSet(
        program=compiled.name,
        klass=klass,
        possible_locations=len(locations),
        chosen_locations=count,
        faults=kept,
    )

"""ODC-typed mutation operators over MiniC statement trees.

The paper's headline negative result is that machine-level SWIFI can only
emulate *assignment* and *checking* faults — the ~44% of field faults in
the *algorithm* and *function* ODC classes have no Table-3 counterpart.
This module is the other side of that experiment: first-class
**source-level** fault injection.  Each operator mutates the compiler's
statement tree (the change a programmer's bug would have made), and also
knows the best machine-level emulation the Table-3 vocabulary can offer:

========================  ==========  =============================
operator                  ODC class   machine counterpart
========================  ==========  =============================
``assign-plus-1``         assignment  exact (``value+1`` store corruption)
``assign-minus-1``        assignment  exact (``value-1`` store corruption)
``assign-omit``           assignment  exact (store elided, ``no-assign``)
``bound-swap``            checking    exact (branch-condition patch)
``check-invert``          checking    exact (branch-condition patch)
``check-drop``            checking    exact (``false->true`` forcing)
``branch-swap``           algorithm   approximate (``true->false``)
``call-omit``             algorithm   approximate (NOP one instruction)
``call-dup``              algorithm   none (cannot add instructions)
``block-omit``            function    approximate (NOP one instruction)
========================  ==========  =============================

Exact counterparts only exist where the machine rewrite provably computes
the same program: those operators restrict their site lists (unique debug
anchor, side-effect-free subexpressions where the two tiers evaluate
different code).  The algorithm/function operators deliberately offer only
what a machine-level tool could actually do — measuring their divergence
*is* the experiment (:mod:`repro.experiments.srcfi_compare`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterator

from ..emulation.locator import FaultLocation, FaultLocator, LocatorError
from ..emulation.operators import (
    ASSIGNMENT_CLASS,
    ASSIGNMENT_ERROR_TYPES,
    CHECKING_CLASS,
    NO_ASSIGN,
    REL_COND,
    VALUE_MINUS_1,
    VALUE_PLUS_1,
    checking_swaps_for,
    swap_error_type,
)
from ..isa.encoding import COND_ALWAYS, NOP_WORD
from ..lang import astnodes as ast
from ..lang.compiler import CompiledProgram
from ..lang.debuginfo import AssignmentSite, CheckSite, StatementSite
from ..odc.defect_types import DefectType
from ..swifi.faults import (
    Action,
    FetchedWord,
    MachineFault,
    OpcodeFetch,
    PatchField,
    SetValue,
)

ALGORITHM_CLASS = "algorithm"
FUNCTION_CLASS = "function"
MUTATION_CLASSES = (ASSIGNMENT_CLASS, CHECKING_CLASS, ALGORITHM_CLASS, FUNCTION_CLASS)

COUNTERPART_EXACT = "exact"
COUNTERPART_APPROXIMATE = "approximate"
COUNTERPART_NONE = "none"

#: One navigation step: ``(attribute, None)`` reads the attribute,
#: ``(attribute, i)`` reads element ``i`` of the attribute (a list).
PathStep = "tuple[str, int | None]"
Path = "tuple[tuple[str, int | None], ...]"


class MutationError(ValueError):
    """A mutation that cannot be applied where it was asked to."""


@dataclass(frozen=True)
class MutationSite:
    """One place a mutation operator applies, addressed structurally.

    The ``path`` is a stable index path from the :class:`ast.Program` root
    (attribute / list-index steps), so it survives a ``deepcopy`` of the
    tree — mutants are always built on copies, the original tree is never
    touched.
    """

    function: str
    line: int
    path: tuple
    detail: str

    def describe(self) -> str:
        return f"{self.function}:{self.line} {self.detail}"


# -- structural navigation ---------------------------------------------------

def node_at(root: ast.Program, path: tuple) -> object:
    node: object = root
    for attr, index in path:
        node = getattr(node, attr)
        if index is not None:
            node = node[index]
    return node


def replace_at(root: ast.Program, path: tuple, replacement: object) -> None:
    if not path:
        raise MutationError("cannot replace the program root")
    parent: object = root
    for attr, index in path[:-1]:
        parent = getattr(parent, attr)
        if index is not None:
            parent = parent[index]
    attr, index = path[-1]
    if index is None:
        setattr(parent, attr, replacement)
    else:
        getattr(parent, attr)[index] = replacement


def iter_statements(program: ast.Program) -> Iterator[tuple]:
    """Yield ``(function_name, statement, path)`` in emission order."""
    for fi, function in enumerate(program.functions):
        if function.body is None:
            continue
        base = (("functions", fi), ("body", None))
        yield from _walk(function.name, function.body, base)


def _walk(function: str, stmt: object, path: tuple) -> Iterator[tuple]:
    yield function, stmt, path
    if isinstance(stmt, ast.Block):
        for i, child in enumerate(stmt.statements):
            yield from _walk(function, child, path + (("statements", i),))
    elif isinstance(stmt, ast.If):
        yield from _walk(function, stmt.then, path + (("then", None),))
        if stmt.other is not None:
            yield from _walk(function, stmt.other, path + (("other", None),))
    elif isinstance(stmt, ast.While):
        yield from _walk(function, stmt.body, path + (("body", None),))
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            yield from _walk(function, stmt.init, path + (("init", None),))
        yield from _walk(function, stmt.body, path + (("body", None),))


def _expr_children(expr: object) -> list:
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.left, expr.right]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.then, expr.other]
    if isinstance(expr, ast.Assign):
        return [expr.target, expr.value]
    if isinstance(expr, ast.IncDec):
        return [expr.target]
    if isinstance(expr, ast.Call):
        return list(expr.args)
    if isinstance(expr, ast.Index):
        return [expr.base, expr.index]
    if isinstance(expr, ast.Member):
        return [expr.base]
    return []


def _contains(expr: object, kinds: tuple) -> bool:
    if isinstance(expr, kinds):
        return True
    return any(_contains(child, kinds) for child in _expr_children(expr))


# Pure *and trap-free*: no calls, no writes, no loads from computed
# addresses, no division (the machine tier keeps evaluating the original
# expression after an "omit" mutation, so it must be impossible for that
# evaluation to differ observably from not evaluating at all).
_PURE_UNARY_OPS = frozenset({"-", "!", "~", "&"})
_PURE_BINARY_OPS = frozenset({
    "+", "-", "*", "&", "|", "^", "<<", ">>",
    "<", "<=", ">", ">=", "==", "!=", "&&", "||",
})


def _is_pure(expr: object) -> bool:
    if isinstance(expr, (ast.IntLiteral, ast.Identifier, ast.SizeOf)):
        return True
    if isinstance(expr, ast.Unary):
        return expr.op in _PURE_UNARY_OPS and _is_pure(expr.operand)
    if isinstance(expr, ast.Binary):
        return (expr.op in _PURE_BINARY_OPS
                and _is_pure(expr.left) and _is_pure(expr.right))
    if isinstance(expr, ast.Ternary):
        return _is_pure(expr.cond) and _is_pure(expr.then) and _is_pure(expr.other)
    return False


# -- debug-record matching ---------------------------------------------------

def _unique_assignment_site(compiled: CompiledProgram, function: str,
                            line: int) -> AssignmentSite | None:
    matches = [
        site for site in compiled.debug.assignments
        if site.function == function and site.line == line and site.kind == "assign"
    ]
    return matches[0] if len(matches) == 1 else None


def _unique_check_site(compiled: CompiledProgram, function: str, line: int,
                       context: str, op: str | None = None) -> CheckSite | None:
    matches = [
        site for site in compiled.debug.checks
        if site.function == function and site.line == line
        and site.context == context and (op is None or site.op == op)
    ]
    return matches[0] if len(matches) == 1 else None


def _unique_statement_anchor(compiled: CompiledProgram, function: str,
                             line: int, kind: str) -> StatementSite | None:
    matches = compiled.debug.statements_for(function, line, kind)
    return matches[0] if len(matches) == 1 else None


def _cond_patch(compiled: CompiledProgram, site: CheckSite, cond_code: int,
                error_type: str, error_label: str, klass: str) -> MachineFault:
    """A branch-condition-field patch at a check site's bc instruction.

    Same databus mechanism as the locator's Table-3 swaps, constructed
    directly because the complement swaps (``< -> >=`` etc.) are not all
    in the Table-3 vocabulary.
    """
    assert site.address is not None
    spec = MachineFault(
        fault_id=(f"{compiled.name}:{site.function}:{site.line}"
                  f"@{site.address:#x}:{error_type}"),
        trigger=OpcodeFetch(site.address),
        actions=(Action(FetchedWord(), PatchField(21, 5, cond_code)),),
    )
    return spec.with_metadata(
        program=compiled.name, klass=klass, error_type=error_type,
        error_label=error_label, function=site.function, line=site.line,
        strategy="databus",
    )


def _nop_anchor(compiled: CompiledProgram, address: int, function: str,
                line: int, error_type: str, error_label: str,
                klass: str) -> MachineFault:
    """NOP one anchored instruction — the strongest move a machine-level
    tool has against a statement it cannot re-express."""
    spec = MachineFault(
        fault_id=f"{compiled.name}:{function}:{line}@{address:#x}:{error_type}",
        trigger=OpcodeFetch(address),
        actions=(Action(FetchedWord(), SetValue(NOP_WORD)),),
    )
    return spec.with_metadata(
        program=compiled.name, klass=klass, error_type=error_type,
        error_label=error_label, function=function, line=line,
        strategy="databus",
    )


# -- operator base -----------------------------------------------------------

class MutationOperator:
    """One source-level mutation: where it applies, how to apply it, and
    the closest machine-level emulation of it."""

    name: str = ""
    odc: DefectType = DefectType.ASSIGNMENT
    label: str = ""
    counterpart: str = COUNTERPART_NONE
    description: str = ""

    @property
    def klass(self) -> str:
        return self.odc.value

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        raise NotImplementedError

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        """Mutate ``tree`` (a deepcopy — never the original) in place."""
        raise NotImplementedError

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        """The Table-3 emulation of this mutation, or None if the
        machine-level vocabulary cannot express anything for it."""
        return None


# -- assignment operators ----------------------------------------------------

def _describe_target(target: object) -> str:
    if isinstance(target, ast.Identifier):
        return target.name
    if isinstance(target, ast.Index):
        return f"{_describe_target(target.base)}[...]"
    if isinstance(target, ast.Member):
        sep = "->" if target.arrow else "."
        return f"{_describe_target(target.base)}{sep}{target.field}"
    if isinstance(target, ast.Unary) and target.op == "*":
        return f"*{_describe_target(target.operand)}"
    return "<lvalue>"


class _AssignmentOperator(MutationOperator):
    odc = DefectType.ASSIGNMENT
    counterpart = COUNTERPART_EXACT

    def _statement_applies(self, stmt: ast.ExprStatement) -> bool:
        return True

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            if not (isinstance(stmt, ast.ExprStatement)
                    and isinstance(stmt.expr, ast.Assign)
                    and stmt.expr.op == "="):
                continue
            # Exactly one assignment in the statement, and exactly one
            # 'assign'-kind store anchored at this source position — the
            # machine counterpart must hit the *same* store.
            if _contains(stmt.expr.value, (ast.Assign, ast.IncDec)):
                continue
            if _contains(stmt.expr.target, (ast.Assign, ast.IncDec)):
                continue
            if _unique_assignment_site(compiled, function, stmt.line) is None:
                continue
            if not self._statement_applies(stmt):
                continue
            out.append(MutationSite(
                function=function, line=stmt.line, path=path,
                detail=f"{_describe_target(stmt.expr.target)} = ... ({self.name})",
            ))
        return out

    def _location(self, compiled: CompiledProgram,
                  site: MutationSite) -> FaultLocation | None:
        anchor = _unique_assignment_site(compiled, site.function, site.line)
        if anchor is None:
            return None
        return FaultLocation(
            program=compiled.name, klass=ASSIGNMENT_CLASS,
            site=anchor, error_types=ASSIGNMENT_ERROR_TYPES,
        )


class AssignPlusOne(_AssignmentOperator):
    name = "assign-plus-1"
    label = "value +1"
    description = "assigned expression replaced by expression+1"

    delta = 1
    error_type = VALUE_PLUS_1

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        if not (isinstance(stmt, ast.ExprStatement)
                and isinstance(stmt.expr, ast.Assign)):
            raise MutationError(f"no assignment at {site.describe()}")
        op = "+" if self.delta > 0 else "-"
        stmt.expr.value = ast.Binary(
            stmt.line, op, stmt.expr.value, ast.IntLiteral(stmt.line, abs(self.delta))
        )

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        location = self._location(compiled, site)
        if location is None:
            return None
        try:
            return FaultLocator(compiled).build_fault(location, self.error_type)
        except LocatorError:
            return None


class AssignMinusOne(AssignPlusOne):
    name = "assign-minus-1"
    label = "value -1"
    description = "assigned expression replaced by expression-1"

    delta = -1
    error_type = VALUE_MINUS_1


class AssignOmit(_AssignmentOperator):
    name = "assign-omit"
    label = "no assign"
    description = "assignment statement deleted"

    def _statement_applies(self, stmt: ast.ExprStatement) -> bool:
        # The machine tier's no-assign still *evaluates* the right-hand
        # side (only the store is NOPed), so the source deletion is only
        # equivalent when that evaluation has no observable effect.
        return (isinstance(stmt.expr.target, ast.Identifier)
                and _is_pure(stmt.expr.value))

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        if not (isinstance(stmt, ast.ExprStatement)
                and isinstance(stmt.expr, ast.Assign)):
            raise MutationError(f"no assignment at {site.describe()}")
        replace_at(tree, site.path, ast.Block(stmt.line, []))

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        location = self._location(compiled, site)
        if location is None:
            return None
        try:
            return FaultLocator(compiled).build_fault(location, NO_ASSIGN)
        except LocatorError:
            return None


# -- checking operators ------------------------------------------------------

_CONTEXT_BY_STMT = {ast.If: "if", ast.While: "while", ast.For: "for"}

#: Off-by-one bound rewrites (the single-target Table-3 swaps).
BOUND_SWAPS = {"<": "<=", "<=": "<", ">": ">=", ">=": ">"}

#: Relational complements (inverted checks).
COMPLEMENT = {"<": ">=", ">=": "<", ">": "<=", "<=": ">", "==": "!=", "!=": "=="}


class _CondOperator(MutationOperator):
    odc = DefectType.CHECKING
    counterpart = COUNTERPART_EXACT

    #: which relational operators this operator rewrites
    table: dict = {}

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            context = _CONTEXT_BY_STMT.get(type(stmt))
            if context is None:
                continue
            cond = stmt.cond
            if cond is None or not isinstance(cond, ast.Binary):
                continue
            if cond.op not in self.table:
                continue
            if _unique_check_site(compiled, function, stmt.line, context,
                                  cond.op) is None:
                continue
            out.append(MutationSite(
                function=function, line=stmt.line, path=path,
                detail=f"{context} ({cond.op}) -> ({self.table[cond.op]})",
            ))
        return out

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        cond = getattr(stmt, "cond", None)
        if not isinstance(cond, ast.Binary) or cond.op not in self.table:
            raise MutationError(f"no rewritable condition at {site.describe()}")
        cond.op = self.table[cond.op]

    def _anchor(self, compiled: CompiledProgram,
                site: MutationSite) -> tuple[CheckSite, str] | None:
        stmt = node_at(compiled.tree, site.path)
        context = _CONTEXT_BY_STMT.get(type(stmt))
        cond = getattr(stmt, "cond", None)
        if context is None or not isinstance(cond, ast.Binary):
            return None
        anchor = _unique_check_site(compiled, site.function, site.line,
                                    context, cond.op)
        if anchor is None:
            return None
        return anchor, cond.op


class BoundSwap(_CondOperator):
    name = "bound-swap"
    label = "bound swap"
    description = "off-by-one bound: relational operator swapped with its weak/strict pair"

    table = BOUND_SWAPS

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        anchored = self._anchor(compiled, site)
        if anchored is None:
            return None
        anchor, op = anchored
        location = FaultLocation(
            program=compiled.name, klass=CHECKING_CLASS,
            site=anchor, error_types=checking_swaps_for(op),
        )
        try:
            return FaultLocator(compiled).build_fault(
                location, swap_error_type(op, self.table[op])
            )
        except LocatorError:
            return None


class CheckInvert(_CondOperator):
    name = "check-invert"
    label = "inverted check"
    description = "relational condition replaced by its complement"

    table = COMPLEMENT

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        anchored = self._anchor(compiled, site)
        if anchored is None:
            return None
        anchor, op = anchored
        return _cond_patch(
            compiled, anchor, REL_COND[self.table[op]],
            error_type=f"invert:{op}->{self.table[op]}",
            error_label=self.label, klass=CHECKING_CLASS,
        )


class CheckDrop(MutationOperator):
    name = "check-drop"
    odc = DefectType.CHECKING
    label = "omitted check"
    counterpart = COUNTERPART_EXACT
    description = "condition replaced by the constant 1 (check omitted)"

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            if not isinstance(stmt, (ast.If, ast.While)):
                continue
            context = _CONTEXT_BY_STMT[type(stmt)]
            # The machine tier's false->true still evaluates the original
            # condition before forcing the branch, so the condition must
            # be side-effect- and trap-free for the tiers to coincide.
            if not _is_pure(stmt.cond):
                continue
            # A constant condition is not a check: dropping it would be a
            # no-op mutation (same binary bytes).
            if isinstance(stmt.cond, ast.IntLiteral):
                continue
            if _unique_check_site(compiled, function, stmt.line, context) is None:
                continue
            out.append(MutationSite(
                function=function, line=stmt.line, path=path,
                detail=f"{context} (...) -> (1)",
            ))
        return out

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        if not isinstance(stmt, (ast.If, ast.While)):
            raise MutationError(f"no check to drop at {site.describe()}")
        stmt.cond = ast.IntLiteral(stmt.line, 1)

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        stmt = node_at(compiled.tree, site.path)
        context = _CONTEXT_BY_STMT.get(type(stmt))
        if context is None:
            return None
        anchor = _unique_check_site(compiled, site.function, site.line, context)
        if anchor is None:
            return None
        return _cond_patch(
            compiled, anchor, COND_ALWAYS,
            error_type="false->true", error_label=self.label,
            klass=CHECKING_CLASS,
        )


# -- algorithm operators -----------------------------------------------------

class BranchSwap(MutationOperator):
    name = "branch-swap"
    odc = DefectType.ALGORITHM
    label = "wrong branch"
    counterpart = COUNTERPART_APPROXIMATE
    description = "then/else branches of an if exchanged"

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            if isinstance(stmt, ast.If) and stmt.other is not None:
                out.append(MutationSite(
                    function=function, line=stmt.line, path=path,
                    detail="if then/else swapped",
                ))
        return out

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        if not isinstance(stmt, ast.If) or stmt.other is None:
            raise MutationError(f"no two-armed if at {site.describe()}")
        stmt.then, stmt.other = stmt.other, stmt.then

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        # Best the Table-3 vocabulary offers: force the branch one way
        # (true->false).  Right whenever the condition held, wrong on
        # every run where it ever failed — the measured divergence is the
        # point.
        anchor = _unique_check_site(compiled, site.function, site.line, "if")
        if anchor is None:
            return None
        assert anchor.address is not None
        return _nop_anchor(
            compiled, anchor.address, site.function, site.line,
            error_type="true->false", error_label=self.label,
            klass=ALGORITHM_CLASS,
        )


class CallOmit(MutationOperator):
    name = "call-omit"
    odc = DefectType.ALGORITHM
    label = "missing call"
    counterpart = COUNTERPART_APPROXIMATE
    description = "call statement deleted"

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            if (isinstance(stmt, ast.ExprStatement)
                    and isinstance(stmt.expr, ast.Call)):
                out.append(MutationSite(
                    function=function, line=stmt.line, path=path,
                    detail=f"call {stmt.expr.name}(...) deleted",
                ))
        return out

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        if not (isinstance(stmt, ast.ExprStatement)
                and isinstance(stmt.expr, ast.Call)):
            raise MutationError(f"no call statement at {site.describe()}")
        replace_at(tree, site.path, ast.Block(stmt.line, []))

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        anchor = _unique_statement_anchor(compiled, site.function, site.line, "expr")
        if anchor is None or anchor.address is None:
            return None
        return _nop_anchor(
            compiled, anchor.address, site.function, site.line,
            error_type="nop-statement", error_label=self.label,
            klass=ALGORITHM_CLASS,
        )


class CallDup(MutationOperator):
    name = "call-dup"
    odc = DefectType.ALGORITHM
    label = "extra call"
    counterpart = COUNTERPART_NONE
    description = "call statement duplicated"

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            if not (isinstance(stmt, ast.ExprStatement)
                    and isinstance(stmt.expr, ast.Call)):
                continue
            attr, index = path[-1]
            if attr != "statements" or index is None:
                continue  # duplication needs a statement-list slot
            out.append(MutationSite(
                function=function, line=stmt.line, path=path,
                detail=f"call {stmt.expr.name}(...) duplicated",
            ))
        return out

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        parent: object = tree
        for attr, index in site.path[:-1]:
            parent = getattr(parent, attr)
            if index is not None:
                parent = parent[index]
        attr, index = site.path[-1]
        if attr != "statements" or index is None:
            raise MutationError(f"no statement list at {site.describe()}")
        statements = getattr(parent, attr)
        statements.insert(index + 1, copy.deepcopy(statements[index]))

    # machine_counterpart stays None: machine-level SWIFI can corrupt or
    # suppress existing instructions but cannot add new ones — exactly the
    # paper's argument for why extra-code faults are not emulable.


class BlockOmit(MutationOperator):
    name = "block-omit"
    odc = DefectType.FUNCTION
    label = "missing block"
    counterpart = COUNTERPART_APPROXIMATE
    description = "whole if/while/for construct deleted"

    def sites(self, compiled: CompiledProgram) -> list[MutationSite]:
        out: list[MutationSite] = []
        for function, stmt, path in iter_statements(compiled.tree):
            if isinstance(stmt, (ast.If, ast.While, ast.For)):
                kind = _CONTEXT_BY_STMT[type(stmt)]
                out.append(MutationSite(
                    function=function, line=stmt.line, path=path,
                    detail=f"{kind} construct deleted",
                ))
        return out

    def apply(self, tree: ast.Program, site: MutationSite) -> None:
        stmt = node_at(tree, site.path)
        if not isinstance(stmt, (ast.If, ast.While, ast.For)):
            raise MutationError(f"no compound statement at {site.describe()}")
        replace_at(tree, site.path, ast.Block(stmt.line, []))

    def machine_counterpart(self, compiled: CompiledProgram,
                            site: MutationSite) -> MachineFault | None:
        stmt = node_at(compiled.tree, site.path)
        kind = _CONTEXT_BY_STMT.get(type(stmt))
        if kind is None:
            return None
        anchor = _unique_statement_anchor(compiled, site.function, site.line, kind)
        if anchor is None or anchor.address is None:
            return None
        return _nop_anchor(
            compiled, anchor.address, site.function, site.line,
            error_type="nop-statement", error_label=self.label,
            klass=FUNCTION_CLASS,
        )


# -- registry ----------------------------------------------------------------

OPERATORS: tuple[MutationOperator, ...] = (
    AssignPlusOne(),
    AssignMinusOne(),
    AssignOmit(),
    BoundSwap(),
    CheckInvert(),
    CheckDrop(),
    BranchSwap(),
    CallOmit(),
    CallDup(),
    BlockOmit(),
)

OPERATORS_BY_NAME: dict[str, MutationOperator] = {op.name: op for op in OPERATORS}


def get_operator(name: str) -> MutationOperator:
    try:
        return OPERATORS_BY_NAME[name]
    except KeyError:
        raise MutationError(f"unknown mutation operator {name!r}") from None


def operators_for_class(klass: str) -> list[MutationOperator]:
    if klass not in MUTATION_CLASSES:
        raise MutationError(f"unknown mutation class {klass!r}")
    return [op for op in OPERATORS if op.klass == klass]

"""Mutant compilation: SourceFault -> mutant binary (+ machine counterpart).

Mutants are compiled from a ``deepcopy`` of the original program's
statement tree via :func:`repro.lang.compile_tree`; the original
:class:`~repro.lang.CompiledProgram` is never touched, and reverting (i.e.
recompiling the untouched tree) reproduces the original binary
bit-identically (:func:`recompiled_identical` asserts exactly that — it is
the mutation round-trip oracle the test suite and the source-tier fuzzer
lean on).

Compilation dominates source-tier campaign cost, so realized mutants are
cached per process in a bounded :class:`MutantCache` keyed by
``(program, operator, resolved site ordinal)`` — the same role the
machine tier's snapshot cache plays, one layer up.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from dataclasses import dataclass

from ..lang.compiler import CompiledProgram, CompileError, compile_tree
from ..swifi.faults import MachineFault
from .operators import OPERATORS_BY_NAME, MutationOperator, MutationSite
from .spec import SourceFault


class SrcfiError(RuntimeError):
    """A source fault that cannot be realized against this program."""


@dataclass
class SourceMutant:
    """A realized source fault: the mutant binary plus its machine twin."""

    fault: SourceFault
    operator: MutationOperator
    site: MutationSite
    compiled: CompiledProgram          # the mutant binary
    counterpart: MachineFault | None   # best machine-tier emulation, if any


class MutantCache:
    """Bounded LRU of compiled mutants, keyed per (program, operator, site)."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CompiledProgram] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> CompiledProgram | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, compiled: CompiledProgram) -> None:
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def realize_source_fault(
    compiled: CompiledProgram,
    fault: SourceFault,
    cache: MutantCache | None = None,
) -> SourceMutant:
    """Compile the mutant a :class:`SourceFault` describes.

    The fault's ``site_index`` wraps over the operator's deterministic
    site enumeration for this program; an operator with no applicable
    sites raises :class:`SrcfiError`.
    """
    operator = OPERATORS_BY_NAME.get(fault.operator)
    if operator is None:
        raise SrcfiError(f"unknown mutation operator {fault.operator!r}")
    sites = operator.sites(compiled)
    if not sites:
        raise SrcfiError(
            f"{compiled.name}: no {fault.operator} mutation sites"
        )
    resolved = fault.site_index % len(sites)
    site = sites[resolved]
    key = (compiled.name, fault.operator, resolved, compiled.opt_level)
    mutant = cache.get(key) if cache is not None else None
    if mutant is None:
        tree = copy.deepcopy(compiled.tree)
        operator.apply(tree, site)
        try:
            mutant = compile_tree(tree, name=compiled.name,
                                  source=compiled.source,
                                  opt_level=compiled.opt_level)
        except CompileError as error:
            raise SrcfiError(
                f"{compiled.name}: mutant {fault.fault_id} does not compile: {error}"
            ) from error
        if cache is not None:
            cache.put(key, mutant)
    counterpart = operator.machine_counterpart(compiled, site)
    return SourceMutant(
        fault=fault, operator=operator, site=site,
        compiled=mutant, counterpart=counterpart,
    )


def recompiled_identical(compiled: CompiledProgram) -> bool:
    """The revert oracle: recompiling the untouched tree must reproduce
    the original binary bit-for-bit (code and data segments)."""
    rebuilt = compile_tree(
        copy.deepcopy(compiled.tree), name=compiled.name,
        source=compiled.source, opt_level=compiled.opt_level,
    )
    return (
        rebuilt.executable.code == compiled.executable.code
        and rebuilt.executable.data == compiled.executable.data
    )

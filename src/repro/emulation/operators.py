"""The error types of the paper's Table 3.

Table 3 defines the subset of injected error types, "described in
high-level language terms", that the §6 campaigns draw from:

* **assignment** errors: ``value → value+1``, ``value → value-1``,
  ``value → unassigned``, ``value → random``;
* **checking** errors: relational-operator swaps (``>= → >``, ``> → >=``,
  ``<= → <``, ``< → <=``, ``== → !=``, ``== → >=``, ``== → <=``,
  ``!= → ==``), logical-junction swaps (``&& → ||``, ``|| → &&``),
  truth-value forcing (``true → false``, ``false → true``) and — "only
  for checking over arrays" — index shifts (``[i] → [i+1]``,
  ``[i] → [i-1]``).

Each error type carries the exact machine-level rewrite it corresponds to
on RX32; :mod:`repro.emulation.locator` turns (site, error type) pairs into
:class:`repro.swifi.MachineFault` objects.

"The number of error types from table 3 that can be applied to each fault
location depends on the actual instruction" — applicability here: a
relational site takes its operator's swaps, a truth-value site (a bare
``if (x)`` / ``while (p)`` test) takes the truth swaps, a junction site its
logical swap, and sites whose condition reads an array element additionally
take the index shifts.  Set ``truth_on_all=True`` in the locator to apply
truth forcing to every checking site instead (the paper is not explicit;
the default keeps per-location error-type counts in Table 4's range).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.encoding import COND_EQ, COND_GE, COND_GT, COND_LE, COND_LT, COND_NE

ASSIGNMENT_CLASS = "assignment"
CHECKING_CLASS = "checking"


@dataclass(frozen=True)
class ErrorType:
    """One Table-3 error type."""

    name: str         # stable identifier, e.g. "swap:<-><="
    klass: str        # "assignment" or "checking"
    paper_label: str  # the label used on the Figure 9/10 axes
    description: str


# -- assignment (Figure 9's four columns) -----------------------------------

VALUE_PLUS_1 = ErrorType(
    "value+1", ASSIGNMENT_CLASS, "value +1", "assigned value replaced by value+1"
)
VALUE_MINUS_1 = ErrorType(
    "value-1", ASSIGNMENT_CLASS, "value -1", "assigned value replaced by value-1"
)
NO_ASSIGN = ErrorType(
    "no-assign", ASSIGNMENT_CLASS, "no assign", "assignment never performed (store elided)"
)
RANDOM_VALUE = ErrorType(
    "random", ASSIGNMENT_CLASS, "random", "assigned value replaced by a random word"
)

ASSIGNMENT_ERROR_TYPES: tuple[ErrorType, ...] = (
    VALUE_PLUS_1,
    VALUE_MINUS_1,
    NO_ASSIGN,
    RANDOM_VALUE,
)

# -- checking ----------------------------------------------------------------

#: source operator -> list of operators Table 3 swaps it into
CHECKING_SWAPS: dict[str, tuple[str, ...]] = {
    ">=": (">",),
    ">": (">=",),
    "<=": ("<",),
    "<": ("<=",),
    "==": ("!=", ">=", "<="),
    "!=": ("==",),
}

#: source relational operator -> RX32 branch condition code
REL_COND: dict[str, int] = {
    "<": COND_LT,
    "<=": COND_LE,
    ">": COND_GT,
    ">=": COND_GE,
    "==": COND_EQ,
    "!=": COND_NE,
}

_PAPER_OP = {"==": "=", "!=": "!="}


def _op_label(op: str) -> str:
    return _PAPER_OP.get(op, op)


def swap_error_type(source_op: str, injected_op: str) -> ErrorType:
    return ErrorType(
        name=f"swap:{source_op}->{injected_op}",
        klass=CHECKING_CLASS,
        paper_label=f"{_op_label(source_op)} {_op_label(injected_op)}",
        description=f"checking operator {source_op} replaced by {injected_op}",
    )


TRUE_TO_FALSE = ErrorType(
    "true->false", CHECKING_CLASS, "true false", "condition forced to false"
)
FALSE_TO_TRUE = ErrorType(
    "false->true", CHECKING_CLASS, "false true", "condition forced to true"
)
AND_TO_OR = ErrorType(
    "and->or", CHECKING_CLASS, "and or", "logical && replaced by ||"
)
OR_TO_AND = ErrorType(
    "or->and", CHECKING_CLASS, "or and", "logical || replaced by &&"
)
INDEX_PLUS_1 = ErrorType(
    "index+1", CHECKING_CLASS, "[i] [i+1]", "array checking index shifted by +1"
)
INDEX_MINUS_1 = ErrorType(
    "index-1", CHECKING_CLASS, "[i] [i-1]", "array checking index shifted by -1"
)

TRUTH_ERROR_TYPES: tuple[ErrorType, ...] = (TRUE_TO_FALSE, FALSE_TO_TRUE)
JUNCTION_ERROR_TYPES: dict[str, ErrorType] = {"&&": AND_TO_OR, "||": OR_TO_AND}
ARRAY_ERROR_TYPES: tuple[ErrorType, ...] = (INDEX_PLUS_1, INDEX_MINUS_1)


def checking_swaps_for(op: str) -> tuple[ErrorType, ...]:
    """The swap error types applicable to a relational operator."""
    return tuple(swap_error_type(op, injected) for injected in CHECKING_SWAPS.get(op, ()))


def all_error_types() -> list[ErrorType]:
    """Every Table-3 error type (for the Table 3 reproduction)."""
    out: list[ErrorType] = list(ASSIGNMENT_ERROR_TYPES)
    for source_op, targets in CHECKING_SWAPS.items():
        for injected in targets:
            out.append(swap_error_type(source_op, injected))
    out.extend(TRUTH_ERROR_TYPES)
    out.extend(JUNCTION_ERROR_TYPES.values())
    out.extend(ARRAY_ERROR_TYPES)
    return out

"""Rule-based error-set generation (§6.3) — the Christmansson/Chillarege-
style rules evaluated by the paper.

The five-step procedure, as the paper lists it:

1. identify all possible fault locations (assignment / checking
   statements, anchored at the assembly level via the compiler's symbol
   information);
2. choose some locations at random (the **where** parameter);
3. at each location, take every applicable error type from Table 3 (the
   **what** parameter);
4. use the located instruction itself as the trigger (the **which**
   parameter);
5. insert the fault on every execution of the trigger (the **when**
   parameter).

:func:`generate_error_set` performs steps 1–5 for one program and one
fault class and reports the same bookkeeping as the paper's Table 4:
possible locations, chosen locations, and the resulting number of injected
faults (``len(faults) × number of input data sets``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lang.compiler import CompiledProgram
from ..swifi.faults import MachineFault
from .locator import STRATEGY_DATABUS, FaultLocation, FaultLocator
from .operators import ASSIGNMENT_CLASS, CHECKING_CLASS


@dataclass
class GeneratedErrorSet:
    """The output of the rule engine for one (program, fault class) pair."""

    program: str
    klass: str
    possible_locations: int
    chosen_locations: int
    faults: list[MachineFault] = field(default_factory=list)
    locations: list[FaultLocation] = field(default_factory=list)

    def injected_faults(self, runs_per_fault: int) -> int:
        """Table 4's 'Injected faults (all error types)' column."""
        return len(self.faults) * runs_per_fault


def generate_error_set(
    compiled: CompiledProgram,
    klass: str,
    *,
    max_locations: int,
    rng: random.Random,
    strategy: str = STRATEGY_DATABUS,
    mode: str = "breakpoint",
    truth_on_all: bool = False,
) -> GeneratedErrorSet:
    """Apply the §6.3 rules to one program for one fault class."""
    if klass not in (ASSIGNMENT_CLASS, CHECKING_CLASS):
        raise ValueError(f"unknown fault class {klass!r}")
    locator = FaultLocator(compiled, truth_on_all=truth_on_all)
    all_locations = locator.locations(klass)                       # step 1
    count = min(max_locations, len(all_locations))
    chosen = sorted(
        rng.sample(all_locations, count),                          # step 2
        key=lambda location: (location.function, location.line, location.address),
    )
    faults: list[MachineFault] = []
    for location in chosen:                                        # steps 3-5
        faults.extend(
            locator.faults_for_location(location, rng=rng, strategy=strategy, mode=mode)
        )
    return GeneratedErrorSet(
        program=compiled.name,
        klass=klass,
        possible_locations=len(all_locations),
        chosen_locations=count,
        faults=faults,
        locations=chosen,
    )


def generate_both_classes(
    compiled: CompiledProgram,
    *,
    max_assignment_locations: int,
    max_checking_locations: int,
    rng: random.Random,
    strategy: str = STRATEGY_DATABUS,
    mode: str = "breakpoint",
) -> dict[str, GeneratedErrorSet]:
    """Both Table-4 rows (assignment and checking) for one program."""
    return {
        ASSIGNMENT_CLASS: generate_error_set(
            compiled,
            ASSIGNMENT_CLASS,
            max_locations=max_assignment_locations,
            rng=rng,
            strategy=strategy,
            mode=mode,
        ),
        CHECKING_CLASS: generate_error_set(
            compiled,
            CHECKING_CLASS,
            max_locations=max_checking_locations,
            rng=rng,
            strategy=strategy,
            mode=mode,
        ),
    }

"""Emulation of *specific real* software faults (§5 of the paper).

A real fault is a (faulty program, corrected program) pair plus the ODC
classification of the change that corrects it.  Emulating the fault means:
run the **corrected** binary while injecting errors that should make it
behave exactly like the faulty binary — "if the results are the same in
both runs it means Xception do emulate the fault accurately".

The strategies here mirror the paper's Figures 3–6:

* :class:`ValueDeltaEmulation` — Figure 3's assignment fault (a loop
  initialised with the wrong constant): corrupt the operand stored by the
  initialisation, every execution.
* :class:`OperatorSwapEmulation` — Figure 5's checking fault (``<`` vs
  ``<=``): rewrite the condition field of the anchored conditional branch.
* :class:`StackShiftEmulation` — Figure 4's assignment fault (a stack
  array declared one element short): shift every frame reference to the
  victim array so it overlaps its neighbour exactly as in the faulty
  binary.  In breakpoint mode this needs one trigger per referencing
  instruction and **fails on the third** — the PowerPC/RX32 debug unit has
  two instruction-address breakpoint registers, reproducing the paper's
  finding B.  The ``memory`` strategy (patch the instructions through the
  debug port, one trigger) is the "new Xception feature" the paper says
  would fix it; ``trap`` mode works too but is intrusive.
* :class:`NoEmulation` — algorithm/function faults (Figure 6): the
  correction changes the shape of the generated code (different
  instruction counts, different stack frames), so no machine-level error
  at fixed locations can reproduce it.  ``build`` raises
  :class:`NotEmulableError` carrying the structural evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lang.compiler import CompiledProgram
from ..lang.debuginfo import AssignmentSite, CheckSite
from ..odc.defect_types import DefectType
from ..swifi.faults import (
    Action,
    Arithmetic,
    CodeWord,
    MachineFault,
    FetchedWord,
    OpcodeFetch,
    PatchField,
    StoreValue,
    WhenPolicy,
)
from .operators import REL_COND


class NotEmulableError(RuntimeError):
    """The fault cannot be emulated by machine-level error injection."""

    def __init__(self, reason: str, evidence: dict[str, object] | None = None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.evidence = evidence or {}


class SiteNotFound(LookupError):
    """A selector matched no debug-info site (catalogue/program mismatch)."""


# ---------------------------------------------------------------------------
# site selectors
# ---------------------------------------------------------------------------

def _pick(matches: list, nth: int, what: str):
    try:
        return matches[nth]
    except IndexError:
        raise SiteNotFound(f"no {what} site #{nth} among {len(matches)} matches") from None


def find_assignment(
    compiled: CompiledProgram,
    *,
    function: str | None = None,
    target: str | None = None,
    kind: str | None = None,
    line: int | None = None,
    nth: int = 0,
) -> AssignmentSite:
    """Select an assignment site; *nth* may be negative (from the end)."""
    matches = [
        site
        for site in compiled.debug.assignments
        if (function is None or site.function == function)
        and (target is None or site.target == target)
        and (kind is None or site.kind == kind)
        and (line is None or site.line == line)
    ]
    return _pick(matches, nth, f"assignment ({function}/{target}/{kind})")


def find_check(
    compiled: CompiledProgram,
    *,
    function: str | None = None,
    op: str | None = None,
    context: str | None = None,
    line: int | None = None,
    nth: int = 0,
) -> CheckSite:
    """Select a checking site; *nth* may be negative (from the end)."""
    matches = [
        site
        for site in compiled.debug.checks
        if (function is None or site.function == function)
        and (op is None or site.op == op)
        and (context is None or site.context == context)
        and (line is None or site.line == line)
    ]
    return _pick(matches, nth, f"check ({function}/{op})")


# ---------------------------------------------------------------------------
# emulation strategies
# ---------------------------------------------------------------------------

class EmulationStrategy:
    """Builds the fault specs that emulate one real fault on the corrected binary."""

    #: how many hardware breakpoints the emulation needs in breakpoint mode
    def build(self, corrected: CompiledProgram, *, mode: str = "breakpoint") -> list[MachineFault]:
        raise NotImplementedError  # pragma: no cover

    def describe(self) -> str:
        raise NotImplementedError  # pragma: no cover


@dataclass(frozen=True)
class ValueDeltaEmulation(EmulationStrategy):
    """Corrupt the value stored by one assignment by a constant delta."""

    function: str
    target: str
    delta: int
    kind: str | None = None
    nth: int = 0

    def build(self, corrected: CompiledProgram, *, mode: str = "breakpoint") -> list[MachineFault]:
        site = find_assignment(
            corrected, function=self.function, target=self.target, kind=self.kind, nth=self.nth
        )
        assert site.address is not None
        spec = MachineFault(
            fault_id=f"emulate:{corrected.name}:{self.describe()}",
            trigger=OpcodeFetch(site.address),
            actions=(Action(StoreValue(), Arithmetic(self.delta)),),
            when=WhenPolicy.every(),
            mode=mode,
        )
        return [spec.with_metadata(strategy="value-delta", target=self.target)]

    def describe(self) -> str:
        return f"{self.function}:{self.target} value{self.delta:+d}"


@dataclass(frozen=True)
class OperatorSwapEmulation(EmulationStrategy):
    """Swap a relational operator in one checking statement."""

    function: str
    from_op: str
    to_op: str
    nth: int = 0
    line: int | None = None

    def build(self, corrected: CompiledProgram, *, mode: str = "breakpoint") -> list[MachineFault]:
        site = find_check(
            corrected, function=self.function, op=self.from_op, nth=self.nth, line=self.line
        )
        assert site.address is not None
        new_cond = REL_COND[self.to_op]
        spec = MachineFault(
            fault_id=f"emulate:{corrected.name}:{self.describe()}",
            trigger=OpcodeFetch(site.address),
            actions=(Action(FetchedWord(), PatchField(21, 5, new_cond)),),
            when=WhenPolicy.every(),
            mode=mode,
        )
        return [spec.with_metadata(strategy="operator-swap",
                                   swap=f"{self.from_op}->{self.to_op}")]

    def describe(self) -> str:
        return f"{self.function}: {self.from_op} -> {self.to_op}"


@dataclass(frozen=True)
class StackShiftEmulation(EmulationStrategy):
    """Shift every frame reference to one local variable by *delta* bytes.

    ``mode="breakpoint"``: one MachineFault per referencing instruction, each
    needing its own instruction-address breakpoint — arming fails when the
    references outnumber the two IABRs (the paper's §5 finding B).

    ``mode="trap"``: same per-reference specs via inserted trap
    instructions — works, but intrusive.

    ``mode="memory"``: a single spec whose trigger is the first reference
    and whose actions patch *all* referencing instructions in memory — the
    tool extension the paper proposes.
    """

    function: str
    var: str
    delta: int

    def _reference_sites(self, corrected: CompiledProgram):
        refs = corrected.debug.refs_for(self.function, self.var)
        if not refs:
            raise SiteNotFound(
                f"no references to {self.function}:{self.var} in {corrected.name}"
            )
        return refs

    def _patched_word(self, corrected: CompiledProgram, address: int) -> int:
        code = corrected.executable.code
        offset = address - corrected.executable.code_base
        word = int.from_bytes(code[offset : offset + 4], "big")
        displacement = word & 0xFFFF
        if displacement >= 0x8000:
            displacement -= 0x10000
        new_displacement = displacement + self.delta
        if not -0x8000 <= new_displacement <= 0x7FFF:
            raise NotEmulableError("shifted frame displacement out of range")
        return (word & ~0xFFFF) | (new_displacement & 0xFFFF)

    def build(self, corrected: CompiledProgram, *, mode: str = "breakpoint") -> list[MachineFault]:
        refs = self._reference_sites(corrected)
        if mode == "memory":
            actions = []
            for ref in refs:
                assert ref.address is not None
                actions.append(
                    Action(
                        CodeWord(ref.address),
                        # SetValue of the fully patched word
                        _set_word(self._patched_word(corrected, ref.address)),
                    )
                )
            first = min(ref.address for ref in refs if ref.address is not None)
            spec = MachineFault(
                fault_id=f"emulate:{corrected.name}:{self.describe()}",
                trigger=OpcodeFetch(first),
                actions=tuple(actions),
                when=WhenPolicy.every(),  # idempotent patches
                mode="breakpoint",        # a single trigger: one IABR suffices
            )
            return [spec.with_metadata(strategy="stack-shift", flavour="memory-patch",
                                       references=len(refs))]
        specs = []
        for position, ref in enumerate(refs):
            assert ref.address is not None
            spec = MachineFault(
                fault_id=(
                    f"emulate:{corrected.name}:{self.describe()}#ref{position}"
                ),
                trigger=OpcodeFetch(ref.address),
                actions=(
                    Action(
                        FetchedWord(),
                        _set_word(self._patched_word(corrected, ref.address)),
                    ),
                ),
                when=WhenPolicy.every(),
                mode=mode,
            )
            specs.append(
                spec.with_metadata(strategy="stack-shift", flavour=mode,
                                   references=len(refs))
            )
        return specs

    def describe(self) -> str:
        return f"{self.function}:{self.var} shift{self.delta:+d}"


def _set_word(word: int):
    from ..swifi.faults import SetValue

    return SetValue(word)


@dataclass(frozen=True)
class NoEmulation(EmulationStrategy):
    """Algorithm/function faults: raise with the structural evidence."""

    reason: str
    function: str | None = None

    def build(self, corrected: CompiledProgram, *, mode: str = "breakpoint") -> list[MachineFault]:
        evidence: dict[str, object] = {}
        if self.function and self.function in corrected.debug.functions:
            info = corrected.debug.functions[self.function]
            evidence["corrected_instructions"] = (
                (info.end_index - info.start_index)
            )
            evidence["corrected_frame_size"] = info.frame_size
        raise NotEmulableError(self.reason, evidence)

    def describe(self) -> str:
        return f"not emulable: {self.reason}"


# ---------------------------------------------------------------------------
# the real-fault record
# ---------------------------------------------------------------------------

@dataclass
class RealFault:
    """One §5 real software fault (a faulty/corrected program pair)."""

    fault_id: str                 # e.g. "C.team4"
    program: str                  # workload family member carrying this fault
    odc_type: DefectType
    source_change: str            # the change that corrects the fault
    paper_figure: str | None
    strategy: EmulationStrategy
    notes: str = ""
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def emulable_in_principle(self) -> bool:
        return not isinstance(self.strategy, NoEmulation)

    def build_emulation(
        self, corrected: CompiledProgram, *, mode: str = "breakpoint"
    ) -> list[MachineFault]:
        return self.strategy.build(corrected, mode=mode)


StrategyFactory = Callable[[], EmulationStrategy]

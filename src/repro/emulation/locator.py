"""The fault locator: source-level fault sites → machine-level fault specs.

This automates §6.3 step 1 ("all possible fault locations were identified
... at the assembly level", guided by the compiler's symbol tables) and
step 3 (selecting the applicable Table-3 error types per location), and
then compiles each (location, error type) pair into a complete
What/Where/Which/When :class:`repro.swifi.MachineFault`:

* **Which** — opcode fetch from the anchored instruction ("the
  instructions selected to work as trigger for the injection were the same
  instructions selected as location to inject the fault");
* **When** — every execution ("the fault was inserted every time the
  trigger instruction was executed");
* **Where/What** — the machine-level rewrite for the error type, either as
  a data-bus substitution of the fetched word / operand (``strategy
  "databus"``, Figures 3/5 option 2) or as a persistent corruption of the
  instruction in memory (``strategy "memory"``, option 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..isa.encoding import COND_ALWAYS, NOP_WORD, OP_B, decode
from ..lang.compiler import CompiledProgram
from ..lang.debuginfo import AssignmentSite, CheckSite, JunctionSite
from ..swifi.faults import (
    Action,
    Arithmetic,
    CodeWord,
    MachineFault,
    FetchedWord,
    OpcodeFetch,
    PatchField,
    SetValue,
    StoreValue,
    WhenPolicy,
)
from .operators import (
    ARRAY_ERROR_TYPES,
    ASSIGNMENT_CLASS,
    ASSIGNMENT_ERROR_TYPES,
    CHECKING_CLASS,
    JUNCTION_ERROR_TYPES,
    REL_COND,
    TRUTH_ERROR_TYPES,
    ErrorType,
    checking_swaps_for,
)

STRATEGY_DATABUS = "databus"  # transient corruption of the fetched word/operand
STRATEGY_MEMORY = "memory"    # persistent corruption of the instruction in memory


class LocatorError(ValueError):
    """An (site, error type) pairing that does not apply."""


@dataclass(frozen=True)
class FaultLocation:
    """One possible fault location plus its applicable error types."""

    program: str
    klass: str  # "assignment" | "checking"
    site: AssignmentSite | CheckSite | JunctionSite
    error_types: tuple[ErrorType, ...]

    @property
    def function(self) -> str:
        return self.site.function

    @property
    def line(self) -> int:
        return self.site.line

    @property
    def address(self) -> int:
        if isinstance(self.site, AssignmentSite):
            assert self.site.address is not None
            return self.site.address
        if isinstance(self.site, CheckSite):
            assert self.site.address is not None
            return self.site.address
        assert self.site.bc_address is not None
        return self.site.bc_address

    def describe(self) -> str:
        kinds = ",".join(e.name for e in self.error_types)
        return f"{self.program}:{self.function}:{self.line} @{self.address:#x} [{kinds}]"


class FaultLocator:
    """Enumerates fault locations of a compiled program and builds specs."""

    def __init__(self, compiled: CompiledProgram, *, truth_on_all: bool = False) -> None:
        self.compiled = compiled
        self.truth_on_all = truth_on_all
        self._code = compiled.executable.code
        self._code_base = compiled.executable.code_base

    # -- enumeration -------------------------------------------------------

    def assignment_locations(self) -> list[FaultLocation]:
        return [
            FaultLocation(
                program=self.compiled.name,
                klass=ASSIGNMENT_CLASS,
                site=site,
                error_types=ASSIGNMENT_ERROR_TYPES,
            )
            for site in self.compiled.debug.assignments
            if site.anchorable
        ]

    def checking_locations(self) -> list[FaultLocation]:
        locations: list[FaultLocation] = []
        for site in self.compiled.debug.checks:
            if not site.anchorable:
                continue
            error_types: list[ErrorType] = []
            if site.op in REL_COND:
                error_types.extend(checking_swaps_for(site.op))
                if self.truth_on_all:
                    error_types.extend(TRUTH_ERROR_TYPES)
            else:  # a bare truth test: if (x), while (p), ...
                error_types.extend(TRUTH_ERROR_TYPES)
            if site.array_load_addresses:
                error_types.extend(ARRAY_ERROR_TYPES)
            locations.append(
                FaultLocation(
                    program=self.compiled.name,
                    klass=CHECKING_CLASS,
                    site=site,
                    error_types=tuple(error_types),
                )
            )
        for junction in self.compiled.debug.junctions:
            if not junction.anchorable:
                continue
            locations.append(
                FaultLocation(
                    program=self.compiled.name,
                    klass=CHECKING_CLASS,
                    site=junction,
                    error_types=(JUNCTION_ERROR_TYPES[junction.op],),
                )
            )
        return locations

    def locations(self, klass: str) -> list[FaultLocation]:
        if klass == ASSIGNMENT_CLASS:
            return self.assignment_locations()
        if klass == CHECKING_CLASS:
            return self.checking_locations()
        raise LocatorError(f"unknown fault class {klass!r}")

    # -- spec construction ---------------------------------------------------

    def _word_at(self, address: int) -> int:
        offset = address - self._code_base
        return int.from_bytes(self._code[offset : offset + 4], "big")

    def build_fault(
        self,
        location: FaultLocation,
        error_type: ErrorType,
        *,
        rng: random.Random | None = None,
        strategy: str = STRATEGY_DATABUS,
        mode: str = "breakpoint",
        when: WhenPolicy | None = None,
        fault_id: str | None = None,
    ) -> MachineFault:
        """Compile one (location, error type) pair into a MachineFault."""
        if error_type not in location.error_types:
            raise LocatorError(
                f"error type {error_type.name} does not apply at {location.describe()}"
            )
        if strategy not in (STRATEGY_DATABUS, STRATEGY_MEMORY):
            raise LocatorError(f"unknown strategy {strategy!r}")
        when = when or WhenPolicy.every()
        site = location.site

        if isinstance(site, AssignmentSite):
            trigger_address, actions = self._assignment_actions(site, error_type, rng, strategy)
        elif isinstance(site, CheckSite):
            trigger_address, actions = self._checking_actions(site, error_type, strategy)
        else:
            trigger_address, actions = self._junction_actions(site, error_type)

        identifier = fault_id or (
            f"{location.program}:{location.function}:{location.line}"
            f"@{trigger_address:#x}:{error_type.name}"
        )
        spec = MachineFault(
            fault_id=identifier,
            trigger=OpcodeFetch(trigger_address),
            actions=tuple(actions),
            when=when,
            mode=mode,
        )
        return spec.with_metadata(
            program=location.program,
            klass=location.klass,
            error_type=error_type.name,
            error_label=error_type.paper_label,
            function=location.function,
            line=location.line,
            strategy=strategy,
        )

    # -- per-class action builders -------------------------------------------

    def _assignment_actions(self, site: AssignmentSite, error_type: ErrorType,
                            rng: random.Random | None, strategy: str):
        assert site.address is not None
        address = site.address
        if error_type.name == "value+1":
            return address, [Action(StoreValue(), Arithmetic(1))]
        if error_type.name == "value-1":
            return address, [Action(StoreValue(), Arithmetic(-1))]
        if error_type.name == "no-assign":
            if strategy == STRATEGY_MEMORY:
                return address, [Action(CodeWord(address), SetValue(NOP_WORD))]
            return address, [Action(FetchedWord(), SetValue(NOP_WORD))]
        if error_type.name == "random":
            if rng is None:
                raise LocatorError("the 'random' error type needs an RNG")
            return address, [Action(StoreValue(), SetValue(rng.getrandbits(32)))]
        raise LocatorError(f"unknown assignment error type {error_type.name}")

    def _checking_actions(self, site: CheckSite, error_type: ErrorType, strategy: str):
        assert site.address is not None
        bc_address = site.address

        def substitution(address: int, corruption) -> tuple[int, list[Action]]:
            if strategy == STRATEGY_MEMORY:
                return address, [Action(CodeWord(address), corruption)]
            return address, [Action(FetchedWord(), corruption)]

        name = error_type.name
        if name.startswith("swap:"):
            injected_op = name.split("->", 1)[1]
            new_cond = REL_COND[injected_op]
            return substitution(bc_address, PatchField(21, 5, new_cond))
        if name == "true->false":
            # The branch to the true target is never taken; control falls
            # through to the unconditional branch to the false target.
            return substitution(bc_address, SetValue(NOP_WORD))
        if name == "false->true":
            return substitution(bc_address, PatchField(21, 5, COND_ALWAYS))
        if name in ("index+1", "index-1"):
            if not site.array_load_addresses:
                raise LocatorError("no array load to shift at this checking site")
            load_address, element_size = site.array_load_addresses[0]
            word = self._word_at(load_address)
            displacement = word & 0xFFFF
            if displacement >= 0x8000:
                displacement -= 0x10000
            delta = element_size if name == "index+1" else -element_size
            new_displacement = displacement + delta
            if not -0x8000 <= new_displacement <= 0x7FFF:
                raise LocatorError("shifted displacement out of range")
            return substitution(
                load_address, PatchField(0, 16, new_displacement & 0xFFFF)
            )
        raise LocatorError(f"unknown checking error type {error_type.name}")

    def _junction_actions(self, site: JunctionSite, error_type: ErrorType):
        """Swap ``&&``/``||`` by retargeting the short-circuit branch pair.

        Two instruction words change, so this is a persistent memory
        corruption with a single trigger on the first of them — the
        paper's Figure 3 option 1 flavour ("error inserted in memory").
        """
        if JUNCTION_ERROR_TYPES.get(site.op) != error_type:
            raise LocatorError(f"{error_type.name} does not apply to a {site.op} junction")
        assert site.bc_address is not None and site.b_address is not None
        assert site.true_address is not None and site.false_address is not None
        assert site.mid_address is not None
        bc_word = self._word_at(site.bc_address)
        if site.op == "&&":
            # a && b:  bc cond -> mid ... b false      becomes (a || b):
            #          bc cond -> TRUE ... b mid
            new_bc_target = site.true_address
            new_b_target = site.mid_address
        else:
            # a || b:  bc cond -> true ... b mid       becomes (a && b):
            #          bc cond -> mid  ... b FALSE
            new_bc_target = site.mid_address
            new_b_target = site.false_address
        bc_offset = (new_bc_target - site.bc_address) >> 2
        b_offset = (new_b_target - site.b_address) >> 2
        if not -0x8000 <= bc_offset <= 0x7FFF:
            raise LocatorError("junction branch offset out of range")
        new_bc_word = (bc_word & ~0xFFFF) | (bc_offset & 0xFFFF)
        new_b_word = (OP_B << 26) | (b_offset & 0x3FFFFFF)
        # Sanity: both words must still decode.
        decode(new_bc_word)
        decode(new_b_word)
        actions = [
            Action(CodeWord(site.bc_address), SetValue(new_bc_word)),
            Action(CodeWord(site.b_address), SetValue(new_b_word)),
        ]
        return site.bc_address, actions

    # -- convenience -----------------------------------------------------------

    def faults_for_location(
        self,
        location: FaultLocation,
        *,
        rng: random.Random | None = None,
        strategy: str = STRATEGY_DATABUS,
        mode: str = "breakpoint",
        when: WhenPolicy | None = None,
    ) -> list[MachineFault]:
        """All applicable error types at one location (§6.3 step 3)."""
        return [
            self.build_fault(
                location, error_type, rng=rng, strategy=strategy, mode=mode, when=when
            )
            for error_type in location.error_types
        ]

"""Software-fault emulation: Table-3 error types, the fault locator, the
§6.3 rule engine, and the §5 real-fault emulation strategies."""

from .locator import (
    STRATEGY_DATABUS,
    STRATEGY_MEMORY,
    FaultLocation,
    FaultLocator,
    LocatorError,
)
from .operators import (
    ARRAY_ERROR_TYPES,
    ASSIGNMENT_CLASS,
    ASSIGNMENT_ERROR_TYPES,
    CHECKING_CLASS,
    CHECKING_SWAPS,
    JUNCTION_ERROR_TYPES,
    REL_COND,
    TRUTH_ERROR_TYPES,
    ErrorType,
    all_error_types,
    checking_swaps_for,
)
from .realfaults import (
    EmulationStrategy,
    NoEmulation,
    NotEmulableError,
    OperatorSwapEmulation,
    RealFault,
    SiteNotFound,
    StackShiftEmulation,
    ValueDeltaEmulation,
    find_assignment,
    find_check,
)
from .rules import GeneratedErrorSet, generate_both_classes, generate_error_set

__all__ = [
    "STRATEGY_DATABUS",
    "STRATEGY_MEMORY",
    "FaultLocation",
    "FaultLocator",
    "LocatorError",
    "ARRAY_ERROR_TYPES",
    "ASSIGNMENT_CLASS",
    "ASSIGNMENT_ERROR_TYPES",
    "CHECKING_CLASS",
    "CHECKING_SWAPS",
    "JUNCTION_ERROR_TYPES",
    "REL_COND",
    "TRUTH_ERROR_TYPES",
    "ErrorType",
    "all_error_types",
    "checking_swaps_for",
    "EmulationStrategy",
    "NoEmulation",
    "NotEmulableError",
    "OperatorSwapEmulation",
    "RealFault",
    "SiteNotFound",
    "StackShiftEmulation",
    "ValueDeltaEmulation",
    "find_assignment",
    "find_check",
    "GeneratedErrorSet",
    "generate_both_classes",
    "generate_error_set",
]

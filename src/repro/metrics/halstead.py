"""Halstead software-science metrics over the MiniC token stream."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..lang.lexer import Token, tokenize

_OPERATOR_KEYWORDS = {
    "if", "else", "while", "for", "return", "break", "continue", "sizeof",
    "struct",
}
_TYPE_KEYWORDS = {"int", "char", "void"}


@dataclass(frozen=True)
class HalsteadMetrics:
    distinct_operators: int   # n1
    distinct_operands: int    # n2
    total_operators: int      # N1
    total_operands: int       # N2

    @property
    def vocabulary(self) -> int:
        return self.distinct_operators + self.distinct_operands

    @property
    def length(self) -> int:
        return self.total_operators + self.total_operands

    @property
    def volume(self) -> float:
        if self.vocabulary == 0:
            return 0.0
        return self.length * math.log2(self.vocabulary)

    @property
    def difficulty(self) -> float:
        if self.distinct_operands == 0:
            return 0.0
        return (self.distinct_operators / 2.0) * (
            self.total_operands / self.distinct_operands
        )

    @property
    def effort(self) -> float:
        return self.difficulty * self.volume


def from_tokens(tokens: list[Token]) -> HalsteadMetrics:
    operators: dict[object, int] = {}
    operands: dict[object, int] = {}
    for token in tokens:
        if token.kind == "op":
            operators[token.value] = operators.get(token.value, 0) + 1
        elif token.kind == "keyword":
            if token.value in _OPERATOR_KEYWORDS or token.value in _TYPE_KEYWORDS:
                operators[token.value] = operators.get(token.value, 0) + 1
        elif token.kind in ("ident", "int", "string"):
            key = (token.kind, token.value)
            operands[key] = operands.get(key, 0) + 1
    return HalsteadMetrics(
        distinct_operators=len(operators),
        distinct_operands=len(operands),
        total_operators=sum(operators.values()),
        total_operands=sum(operands.values()),
    )


def from_source(source: str) -> HalsteadMetrics:
    return from_tokens(tokenize(source))

"""McCabe cyclomatic complexity over the MiniC AST.

§6.1: "Existing studies indicate that fault probability correlates with
the software module complexity.  This suggests that existing metrics (and
tools) to predict the probability of a given module having software faults
could be used when field data is not available."  Cyclomatic complexity is
the canonical such metric.
"""

from __future__ import annotations

from ..lang import astnodes as ast


def _expression_decisions(expr: ast.Expr | None) -> int:
    """Count decision points contributed by an expression (&&, ||, ?:)."""
    if expr is None:
        return 0
    if isinstance(expr, ast.Binary):
        own = 1 if expr.op in ("&&", "||") else 0
        return own + _expression_decisions(expr.left) + _expression_decisions(expr.right)
    if isinstance(expr, ast.Unary):
        return _expression_decisions(expr.operand)
    if isinstance(expr, ast.Ternary):
        return (
            1
            + _expression_decisions(expr.cond)
            + _expression_decisions(expr.then)
            + _expression_decisions(expr.other)
        )
    if isinstance(expr, ast.Assign):
        return _expression_decisions(expr.target) + _expression_decisions(expr.value)
    if isinstance(expr, ast.IncDec):
        return _expression_decisions(expr.target)
    if isinstance(expr, ast.Call):
        return sum(_expression_decisions(argument) for argument in expr.args)
    if isinstance(expr, ast.Index):
        return _expression_decisions(expr.base) + _expression_decisions(expr.index)
    if isinstance(expr, ast.Member):
        return _expression_decisions(expr.base)
    return 0


def _statement_decisions(statement: ast.Stmt) -> int:
    if isinstance(statement, ast.Block):
        return sum(_statement_decisions(child) for child in statement.statements)
    if isinstance(statement, ast.If):
        total = 1 + _expression_decisions(statement.cond)
        total += _statement_decisions(statement.then)
        if statement.other is not None:
            total += _statement_decisions(statement.other)
        return total
    if isinstance(statement, ast.While):
        return 1 + _expression_decisions(statement.cond) + _statement_decisions(statement.body)
    if isinstance(statement, ast.For):
        total = 1 if statement.cond is not None else 0
        total += _expression_decisions(statement.cond)
        if statement.init is not None:
            total += _statement_decisions(statement.init)
        total += _expression_decisions(statement.post)
        total += _statement_decisions(statement.body)
        return total
    if isinstance(statement, ast.Return):
        return _expression_decisions(statement.value)
    if isinstance(statement, ast.ExprStatement):
        return _expression_decisions(statement.expr)
    if isinstance(statement, ast.Declaration):
        return _expression_decisions(statement.init)
    return 0


def function_complexity(function: ast.Function) -> int:
    """Cyclomatic complexity of one function: decisions + 1."""
    return 1 + _statement_decisions(function.body)


def program_complexity(program: ast.Program) -> dict[str, int]:
    """Per-function cyclomatic complexity."""
    return {function.name: function_complexity(function) for function in program.functions}


def total_complexity(program: ast.Program) -> int:
    return sum(program_complexity(program).values())

"""Metric-guided fault allocation (§6.1).

When field data on previous software faults is unavailable — which §6.1
argues is the common case — complexity metrics can substitute for its two
uses: choosing *where* (which modules/programs) to inject and *how many*
faults each gets.  This module implements that allocation, plus the
baselines it is compared against in the ablation benchmark:

* ``uniform``   — every program gets the same share ("all the possible
  software faults and locations are equally likely");
* ``loc``       — proportional to lines of code;
* ``mccabe``    — proportional to total cyclomatic complexity;
* ``halstead``  — proportional to Halstead volume;
* ``sites``     — proportional to the number of actual fault locations
  the locator finds (an oracle-ish upper bound for comparison).
"""

from __future__ import annotations

from ..emulation.locator import FaultLocator
from ..lang.compiler import CompiledProgram
from . import halstead, mccabe

STRATEGIES = ("uniform", "loc", "mccabe", "halstead", "sites")


def metric_value(compiled: CompiledProgram, strategy: str) -> float:
    if strategy == "uniform":
        return 1.0
    if strategy == "loc":
        return float(compiled.source_lines)
    if strategy == "mccabe":
        return float(mccabe.total_complexity(compiled.tree))
    if strategy == "halstead":
        return halstead.from_source(compiled.source).volume
    if strategy == "sites":
        locator = FaultLocator(compiled)
        return float(
            len(locator.assignment_locations()) + len(locator.checking_locations())
        )
    raise ValueError(f"unknown allocation strategy {strategy!r}")


def allocate(
    programs: list[CompiledProgram], total_faults: int, strategy: str = "mccabe"
) -> dict[str, int]:
    """Distribute *total_faults* across programs, proportional to the metric.

    Uses the largest-remainder method so the counts always sum exactly to
    *total_faults* and every program with positive weight gets its fair
    rounding.
    """
    if total_faults < 0:
        raise ValueError("total_faults must be non-negative")
    weights = {program.name: metric_value(program, strategy) for program in programs}
    total_weight = sum(weights.values())
    if total_weight <= 0:
        raise ValueError("all metric weights are zero")
    quotas = {
        name: total_faults * weight / total_weight for name, weight in weights.items()
    }
    counts = {name: int(quota) for name, quota in quotas.items()}
    remainder = total_faults - sum(counts.values())
    by_fraction = sorted(
        quotas, key=lambda name: (quotas[name] - counts[name], name), reverse=True
    )
    for name in by_fraction[:remainder]:
        counts[name] += 1
    return counts


def allocation_table(
    programs: list[CompiledProgram], total_faults: int
) -> dict[str, dict[str, int]]:
    """Every strategy's allocation side by side (the A1 ablation)."""
    return {
        strategy: allocate(programs, total_faults, strategy) for strategy in STRATEGIES
    }

"""Software complexity metrics and metric-guided injection (§6.1)."""

from .guidance import STRATEGIES, allocate, allocation_table, metric_value
from .halstead import HalsteadMetrics, from_source, from_tokens
from .mccabe import function_complexity, program_complexity, total_complexity

__all__ = [
    "STRATEGIES",
    "allocate",
    "allocation_table",
    "metric_value",
    "HalsteadMetrics",
    "from_source",
    "from_tokens",
    "function_complexity",
    "program_complexity",
    "total_complexity",
]

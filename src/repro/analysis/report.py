"""Assemble every regenerated artefact in ``results/`` into one report.

After ``pytest benchmarks/ --benchmark-only`` has populated ``results/``,
:func:`build_report` stitches the rendered tables and figures into a
single Markdown document (``results/REPORT.md`` by default) in the
paper's order — handy for reading a full reproduction run top to bottom.
"""

from __future__ import annotations

import os

#: (results-file stem, section heading) in the paper's presentation order.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("table1_real_fault_symptoms", "Table 1 — failure symptoms of the real software faults"),
    ("table2_program_features", "Table 2 — target programs and main features"),
    ("table3_error_types", "Table 3 — subset of injected error types"),
    ("table4_fault_counts", "Table 4 — injected faults"),
    ("table4_paper_scale_total", "Table 4 at paper scale"),
    ("sec5_real_fault_emulation", "§5 — emulation of the actual software faults"),
    ("sec5_emulability_share", "§5 — field share by emulability"),
    ("fig2_exposure_chain", "Figure 2 — the exposure chain, measured"),
    ("fig7_assignment_by_program", "Figure 7 — failure modes per program (assignment)"),
    ("fig8_checking_by_program", "Figure 8 — failure modes per program (checking)"),
    ("fig9_assignment_by_errortype", "Figure 9 — failure modes per error type (assignment)"),
    ("fig10_checking_by_errortype", "Figure 10 — failure modes per error type (checking)"),
    ("ablation_a1_metric_guidance", "Ablation A1 — metric-guided allocation"),
    ("ablation_a2_triggers", "Ablation A2 — trigger When policy"),
    ("ablation_a3_hardware_vs_software", "Ablation A3 — software vs hardware faults"),
)


def build_report(results_dir: str, output_name: str = "REPORT.md") -> str:
    """Concatenate the rendered artefacts; returns the report path.

    Missing artefacts are listed as not-yet-regenerated rather than
    failing, so a partial benchmark run still yields a useful report.
    """
    lines = [
        "# Reproduction report",
        "",
        "Regenerated artefacts from `pytest benchmarks/ --benchmark-only`.",
        "Paper: Madeira, Costa, Vieira — *On the Emulation of Software*",
        "*Faults by Software Fault Injection*, DSN 2000.",
        "",
    ]
    for stem, heading in SECTIONS:
        lines.append(f"## {heading}")
        lines.append("")
        path = os.path.join(results_dir, f"{stem}.txt")
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                lines.append("```text")
                lines.append(handle.read().rstrip())
                lines.append("```")
        else:
            lines.append(f"*not regenerated yet (`{stem}.txt` missing)*")
        lines.append("")
    report_path = os.path.join(results_dir, output_name)
    with open(report_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return report_path

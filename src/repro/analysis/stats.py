"""Small statistics helpers for comparing failure-mode distributions.

Used by the Figure-9/10 analysis: the paper observes that "the results
for each error type for the emulation of assignment faults are relatively
similar, the same does not apply to the error types used to emulate
checking faults".  We quantify that with the maximum pairwise total
variation distance between the per-type distributions.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..swifi.outcomes import MODE_ORDER, FailureMode

Distribution = Mapping[FailureMode, float]


def total_variation(first: Distribution, second: Distribution) -> float:
    """Total variation distance between two percentage distributions (0..1)."""
    return sum(
        abs(first.get(mode, 0.0) - second.get(mode, 0.0)) for mode in MODE_ORDER
    ) / 200.0


def max_pairwise_distance(series: Mapping[str, Distribution]) -> float:
    """The largest total-variation distance between any two distributions."""
    labels = list(series)
    best = 0.0
    for i, a in enumerate(labels):
        for b in labels[i + 1:]:
            best = max(best, total_variation(series[a], series[b]))
    return best


def mean_distribution(series: Mapping[str, Distribution]) -> dict[FailureMode, float]:
    labels = list(series)
    if not labels:
        return {mode: 0.0 for mode in MODE_ORDER}
    return {
        mode: sum(series[label].get(mode, 0.0) for label in labels) / len(labels)
        for mode in MODE_ORDER
    }


def dispersion(series: Mapping[str, Distribution]) -> float:
    """Mean total-variation distance of each member from the mean."""
    labels = list(series)
    if not labels:
        return 0.0
    centre = mean_distribution(series)
    return sum(total_variation(series[label], centre) for label in labels) / len(labels)


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a proportion (used for Table-1 rates)."""
    if trials == 0:
        return (0.0, 1.0)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - margin), min(1.0, centre + margin))

"""Plain-text table rendering for experiment reports."""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table (right-aligns numeric cells)."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    columns = len(headers)
    for row in text_rows:
        if len(row) != columns:
            raise ValueError("row width does not match header width")
    widths = [
        max(len(headers[index]), *(len(row[index]) for row in text_rows))
        if text_rows
        else len(headers[index])
        for index in range(columns)
    ]
    numeric = [
        bool(text_rows) and all(_is_numeric(row[index]) for row in text_rows)
        for index in range(columns)
    ]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index] and _is_numeric(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * width for width in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(separator)
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    if not text or text == "-":
        return text == "-"
    try:
        float(text.rstrip("%"))
        return True
    except ValueError:
        return False

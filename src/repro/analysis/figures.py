"""Plain-text stacked-bar rendering for the Figure 7-10 reproductions.

The paper's figures are 100%-stacked bars of the four failure modes, one
bar per program (Figures 7/8) or per injected error type (Figures 9/10).
:func:`render_stacked_bars` draws the same thing in ASCII; the underlying
data series are also returned by the experiment drivers for direct
inspection and JSON export.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..swifi.outcomes import MODE_ORDER, FailureMode

_GLYPHS = {
    FailureMode.CORRECT: ".",
    FailureMode.INCORRECT: "i",
    FailureMode.HANG: "h",
    FailureMode.CRASH: "#",
}


def render_stacked_bars(
    series: Mapping[str, Mapping[FailureMode, float]],
    *,
    title: str,
    width: int = 50,
    order: Sequence[str] | None = None,
) -> str:
    """Render one 100%-stacked bar per key of *series*.

    *series* maps a bar label to ``{FailureMode: percentage}`` (summing to
    ~100).  Glyphs: ``.`` correct, ``i`` incorrect, ``h`` hang, ``#`` crash.
    """
    labels = list(order) if order is not None else list(series)
    label_width = max((len(label) for label in labels), default=0)
    lines = [title, "=" * len(title)]
    legend = "  ".join(f"{_GLYPHS[mode]}={mode.label}" for mode in MODE_ORDER)
    lines.append(legend)
    lines.append("")
    for label in labels:
        percentages = series[label]
        bar = ""
        consumed = 0
        for mode in MODE_ORDER:
            share = percentages.get(mode, 0.0)
            cells = int(round(share * width / 100.0))
            cells = min(cells, width - consumed)
            bar += _GLYPHS[mode] * cells
            consumed += cells
        bar = bar.ljust(width)
        detail = " ".join(
            f"{_GLYPHS[mode]}{percentages.get(mode, 0.0):5.1f}%" for mode in MODE_ORDER
        )
        lines.append(f"{label.rjust(label_width)} |{bar}| {detail}")
    return "\n".join(lines)


def series_to_jsonable(
    series: Mapping[str, Mapping[FailureMode, float]]
) -> dict[str, dict[str, float]]:
    return {
        label: {mode.value: round(value, 3) for mode, value in modes.items()}
        for label, modes in series.items()
    }

"""Result analysis: ASCII tables, stacked-bar figures, distribution stats."""

from .figures import render_stacked_bars, series_to_jsonable
from .report import SECTIONS, build_report
from .stats import (
    dispersion,
    max_pairwise_distance,
    mean_distribution,
    total_variation,
    wilson_interval,
)
from .tables import render_table

__all__ = [
    "SECTIONS",
    "build_report",
    "render_stacked_bars",
    "series_to_jsonable",
    "dispersion",
    "max_pairwise_distance",
    "mean_distribution",
    "total_variation",
    "wilson_interval",
    "render_table",
]

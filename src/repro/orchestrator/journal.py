"""The resumable campaign journal: an append-only JSONL run log.

Layout of a journal directory::

    <journal_dir>/
        manifest.json   # campaign fingerprint, written atomically
        runs.jsonl      # one line per completed run (or shard failure)

The manifest pins the journal to one exact campaign — program, seed,
fault ids, case ids, run count — so ``--resume`` can refuse to splice
records from a different campaign into this one.  It is written through
:func:`repro.persist.atomic_write_json`, the same helper
:meth:`CampaignResult.to_json` uses, so a crash never leaves a truncated
manifest.

``runs.jsonl`` is append-only: each completed run is one self-contained
JSON line, flushed as soon as the supervisor sees it.  With tracing on
(``CampaignConfig(trace=True)`` / ``--trace``) every run entry is
followed by a ``trace`` entry carrying the run's span tree and fast-path
accounting; ``repro trace report`` reads them back.  If the campaign
process is killed mid-append the file may end in a partial line;
:meth:`CampaignJournal.open` tolerates exactly that (the half-written
trailing line is dropped, the run re-executes on resume) — every other
malformed line is an error.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from ..persist import atomic_write_json, trim_partial_tail
from ..swifi.campaign import RunRecord

MANIFEST_NAME = "manifest.json"
RUNS_NAME = "runs.jsonl"
JOURNAL_VERSION = 1


def encode_entry(entry: dict) -> str:
    """Serialise one journal entry to its canonical JSONL line.

    Every writer of ``runs.jsonl`` — the in-process journal below and the
    service broker's segment merge (:mod:`repro.service.merge`) — must go
    through this function: the distributed chaos suite asserts merged
    journals bit-identical to serial ones, so the byte encoding of a line
    is part of the journal contract, not an implementation detail.
    """
    return json.dumps(entry) + "\n"


class JournalError(RuntimeError):
    """Raised for fingerprint mismatches and malformed journal files."""


def campaign_fingerprint(
    *,
    program: str,
    seed: int,
    fault_ids: list[str],
    case_ids: list[str],
) -> dict:
    """The identity of one campaign, as stored in the manifest."""
    fault_digest = hashlib.sha256("\n".join(fault_ids).encode("utf-8")).hexdigest()
    return {
        "version": JOURNAL_VERSION,
        "program": program,
        "seed": seed,
        "total_runs": len(fault_ids) * len(case_ids),
        "fault_count": len(fault_ids),
        "fault_digest": fault_digest,
        "case_ids": list(case_ids),
    }


@dataclass
class JournalState:
    """What a (re)opened journal already knows about the campaign."""

    records: dict[int, RunRecord] = field(default_factory=dict)
    past_failures: list[dict] = field(default_factory=list)
    #: Per-run trace payloads (see repro.observability.trace), present
    #: only for runs journaled with tracing enabled.
    traces: dict[int, dict] = field(default_factory=dict)
    #: The campaign's plan-partition summary (see repro.planning.plan),
    #: appended once at completion; last one wins across resumes.
    plan: dict | None = None

    @property
    def completed_runs(self) -> int:
        return len(self.records)


def load_runs_file(path: str) -> JournalState:
    """Parse one ``runs.jsonl`` into a :class:`JournalState`.

    Tolerates exactly one malformed line — an unterminated final line
    left by a kill mid-append (that run simply re-executes on resume);
    any other malformed or unknown entry is a :class:`JournalError`.
    Used both by :meth:`CampaignJournal.open` and by the fingerprint-free
    readers in :mod:`repro.observability.report`.
    """
    state = JournalState()
    if not os.path.exists(path):
        return state
    with open(path, "r", encoding="utf-8") as handle:
        raw = handle.read()
    lines = raw.split("\n")
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            # Only an unterminated final line can be a crash artefact.
            if position == len(lines) - 1 and not raw.endswith("\n"):
                break
            raise JournalError(
                f"corrupt journal line {position + 1} in {path!r}"
            ) from None
        kind = entry.get("type")
        if kind == "run":
            state.records[int(entry["index"])] = RunRecord.from_dict(entry["record"])
        elif kind == "trace":
            state.traces[int(entry["index"])] = entry["trace"]
        elif kind == "shard-failed":
            state.past_failures.append(entry)
        elif kind == "plan":
            state.plan = entry.get("plan")
        else:
            raise JournalError(
                f"unknown journal entry type {kind!r} in {path!r}"
            )
    return state


def _trim_partial_tail(path: str) -> None:
    """Truncate an unterminated final line left by a crash mid-append."""
    trim_partial_tail(path)


class CampaignJournal:
    """Append-only journal of completed runs for one campaign."""

    def __init__(self, directory: str, fingerprint: dict) -> None:
        self.directory = directory
        self.fingerprint = fingerprint
        self._handle = None

    # -- opening -------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def runs_path(self) -> str:
        return os.path.join(self.directory, RUNS_NAME)

    def open(self, *, resume: bool) -> JournalState:
        """Create or re-open the journal; return already-journaled state.

        A fresh directory is always fine.  An existing journal is only
        re-opened when *resume* is set (anything else silently mixing two
        campaigns' records would be worse than an error) and only when
        its manifest matches this campaign's fingerprint.
        """
        os.makedirs(self.directory, exist_ok=True)
        state = JournalState()
        if os.path.exists(self.manifest_path):
            if not resume:
                raise JournalError(
                    f"journal {self.directory!r} already exists; pass resume=True "
                    "to continue it or point --journal-dir at a fresh directory"
                )
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                stored = json.load(handle)
            if stored != self.fingerprint:
                raise JournalError(
                    f"journal {self.directory!r} was written by a different "
                    "campaign (program/seed/fault set/case set differ); refusing "
                    "to resume from it"
                )
            state = self._load_runs()
        else:
            atomic_write_json(self.manifest_path, self.fingerprint)
        # A kill mid-append can leave runs.jsonl ending in a partial line.
        # The reader drops it, but appending after it would fuse the next
        # record onto the fragment — corrupting the middle of the file for
        # every later resume — so trim the fragment before reopening.
        _trim_partial_tail(self.runs_path)
        self._handle = open(self.runs_path, "a", encoding="utf-8")
        return state

    def _load_runs(self) -> JournalState:
        return load_runs_file(self.runs_path)

    # -- appending -----------------------------------------------------

    def _append(self, entry: dict) -> None:
        if self._handle is None:
            raise JournalError("journal is not open")
        self._handle.write(encode_entry(entry))
        self._handle.flush()

    def append_record(self, run_index: int, record: RunRecord) -> None:
        self._append({"type": "run", "index": run_index, "record": record.to_dict()})

    def append_trace(self, run_index: int, trace: dict) -> None:
        """Journal one run's trace payload next to its run entry."""
        self._append({"type": "trace", "index": run_index, "trace": trace})

    def append_plan(self, plan: dict) -> None:
        """Journal the campaign's plan-partition summary (schema-additive)."""
        self._append({"type": "plan", "plan": plan})

    def append_shard_failure(
        self, shard_id: int, run_indices: list[int], error: str
    ) -> None:
        self._append(
            {
                "type": "shard-failed",
                "shard": shard_id,
                "runs": list(run_indices),
                "error": error,
            }
        )

    def sync(self) -> None:
        """Flush and fsync the run log (called at shard boundaries)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.sync()
            finally:
                self._handle.close()
                self._handle = None

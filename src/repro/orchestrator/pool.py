"""The campaign orchestrator: sharded worker pool with supervision.

This is the host-side "experiment management software" scaled out: the
(fault × case) matrix is partitioned by the scheduler, each shard runs
in a fresh worker process (:mod:`.worker`), every completed run is
journaled (:mod:`.journal`) the moment its message arrives, and the
telemetry aggregator (:mod:`.telemetry`) keeps live rates and tallies.

Supervision contract:

* a worker that exits without its ``shard-done`` marker — crash, kill,
  unpicklable explosion — or that exceeds the per-shard wall-clock
  deadline is terminated and its shard retried with **only the runs
  whose results never arrived**;
* after ``max_retries`` retries the shard's remaining runs are recorded
  as failed in the journal and the campaign *continues* — one bad shard
  cannot abort 100k runs;
* the merged :class:`CampaignResult` lists records in serial order, so
  any ``--jobs`` value yields bit-identical aggregated results.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Callable

from ..observability import trace as _trace
from ..swifi.campaign import CampaignResult, InputCase, RunRecord, execute_injection_run
from ..swifi.faults import MachineFault
from .journal import CampaignJournal, JournalState, campaign_fingerprint
from .scheduler import Shard, pair_for_index, plan_shards
from .telemetry import (
    NullSink,
    TelemetryAggregator,
    TelemetrySink,
    TelemetrySnapshot,
)
from .worker import (
    MSG_DONE,
    MSG_ERROR,
    MSG_RUN,
    ShardTask,
    build_shard_task,
    shard_worker_main,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..swifi.campaign import CampaignRunner

#: Grace period between noticing a dead worker and declaring its shard
#: crashed — messages the worker flushed right before dying may still be
#: in the queue's pipe buffer.
DEAD_WORKER_GRACE = 0.5

#: Supervisor poll interval.
POLL_INTERVAL = 0.05


class CampaignInterrupted(RuntimeError):
    """Raised when the orchestrator is stopped before the campaign ends.

    The journal is already closed and consistent when this propagates;
    re-running with ``resume=True`` continues from the journaled state.
    """

    def __init__(self, message: str, completed_runs: int, total_runs: int) -> None:
        super().__init__(message)
        self.completed_runs = completed_runs
        self.total_runs = total_runs


@dataclass(frozen=True)
class OrchestratorOptions:
    """Everything that shapes *how* a campaign executes (never *what*)."""

    jobs: int = 1
    journal_dir: str | None = None
    resume: bool = False
    seed: int = 0
    snapshot: str = "off"                   # golden-run restore fast path
    trace: bool = False                     # per-run span tracing
    engine: str = "simple"                  # machine execution engine
    prune: bool = False                     # planner: dormant-fault pruning
    memoize: bool = False                   # planner: outcome memoization
    memo_dir: str | None = None             # planner: on-disk memo (JSONL)
    plan_verify: float = 0.0                # planner: re-execute sample
    shard_size: int | None = None
    max_retries: int = 2
    shard_deadline: float | None = None     # seconds per shard attempt
    mp_start_method: str | None = None      # None → multiprocessing default
    interrupt_after: int | None = None      # stop after N newly executed runs
    #: Supervision drill: shard_id → (crashing attempts, crash after N runs).
    crash_shards: dict[int, tuple[int, int]] = dataclass_field(default_factory=dict)
    #: Supervision drill: shard_id → (stalling attempts, stall seconds).
    stall_shards: dict[int, tuple[int, float]] = dataclass_field(default_factory=dict)


@dataclass
class OrchestratorOutcome:
    """The merged campaign result plus orchestration bookkeeping."""

    result: CampaignResult
    snapshot: TelemetrySnapshot
    failed_runs: dict[int, str] = dataclass_field(default_factory=dict)
    resumed_runs: int = 0
    executed_runs: int = 0


@dataclass
class _ShardState:
    shard: Shard
    attempt: int = 1
    remaining: set[int] = dataclass_field(default_factory=set)
    process: multiprocessing.process.BaseProcess | None = None
    started_at: float = 0.0
    done: bool = False
    dead_since: float | None = None

    def __post_init__(self) -> None:
        if not self.remaining:
            self.remaining = set(self.shard.run_indices)


class CampaignOrchestrator:
    """Executes one campaign matrix through the sharded worker pool."""

    def __init__(
        self,
        *,
        program: str,
        executable,
        cases: list[InputCase],
        faults: list[MachineFault],
        budgets: dict[str, int],
        num_cores: int = 1,
        quantum: int = 64,
        options: OrchestratorOptions | None = None,
        telemetry: TelemetrySink | None = None,
        progress: Callable[[int, int], None] | None = None,
        label: str | None = None,
    ) -> None:
        if not cases:
            raise ValueError("a campaign needs at least one input case")
        self.program = program
        self.executable = executable
        self.cases = list(cases)
        self.faults = list(faults)
        self.budgets = dict(budgets)
        self.num_cores = num_cores
        self.quantum = quantum
        self.options = options or OrchestratorOptions()
        self.telemetry = telemetry or NullSink()
        self.progress = progress
        self.label = label or program
        self.total_runs = len(self.faults) * len(self.cases)

    @classmethod
    def from_runner(
        cls,
        runner: "CampaignRunner",
        faults: list[MachineFault],
        *,
        options: OrchestratorOptions | None = None,
        telemetry: TelemetrySink | None = None,
        progress: Callable[[int, int], None] | None = None,
        label: str | None = None,
    ) -> "CampaignOrchestrator":
        """Build an orchestrator from a calibrated :class:`CampaignRunner`."""
        runner.calibrate()
        return cls(
            program=runner.compiled.name,
            executable=runner.compiled.executable,
            cases=runner.cases,
            faults=faults,
            budgets=runner.budgets,
            num_cores=runner.num_cores,
            quantum=runner.quantum,
            options=options,
            telemetry=telemetry,
            progress=progress,
            label=label,
        )

    # ------------------------------------------------------------------

    def _pair(self, run_index: int) -> tuple[MachineFault, InputCase]:
        fault_index, case_index = pair_for_index(run_index, len(self.cases))
        return self.faults[fault_index], self.cases[case_index]

    def _fingerprint(self) -> dict:
        return campaign_fingerprint(
            program=self.program,
            seed=self.options.seed,
            fault_ids=[spec.fault_id for spec in self.faults],
            case_ids=[case.case_id for case in self.cases],
        )

    def _notify_progress(self, completed: int) -> None:
        if self.progress is not None:
            self.progress(completed, self.total_runs)

    # ------------------------------------------------------------------

    def run(self) -> OrchestratorOutcome:
        journal: CampaignJournal | None = None
        state = JournalState()
        if self.options.journal_dir is not None:
            journal = CampaignJournal(self.options.journal_dir, self._fingerprint())
            state = journal.open(resume=self.options.resume)
        # Drop journaled indices outside this campaign (fingerprint match
        # makes this impossible in practice, but stay defensive).
        completed = {
            index: record
            for index, record in state.records.items()
            if 0 <= index < self.total_runs
        }
        pending = [index for index in range(self.total_runs) if index not in completed]

        aggregator = TelemetryAggregator(
            label=self.label,
            total_runs=self.total_runs,
            workers=max(1, self.options.jobs),
            resumed=completed,
            tracing=self.options.trace,
        )
        self.telemetry.begin(aggregator.snapshot())
        self._notify_progress(len(completed))

        failed: dict[int, str] = {}
        previous_tracing = False
        if self.options.trace:
            # Inline runs execute in this process; pool workers enable the
            # flag themselves from ShardTask.trace.
            previous_tracing = _trace.set_tracing(True)
        try:
            if self.options.jobs <= 1:
                self._run_inline(pending, completed, journal, aggregator)
            else:
                self._run_pool(pending, completed, failed, journal, aggregator)
            if journal is not None:
                from ..planning.plan import plan_from_records

                plan = plan_from_records(
                    completed[index]
                    for index in sorted(completed)
                    if index not in failed
                )
                journal.append_plan(plan.to_dict())
        finally:
            if self.options.trace:
                _trace.set_tracing(previous_tracing)
            if journal is not None:
                journal.close()

        result = CampaignResult(program=self.program)
        result.records = [
            completed[index] for index in sorted(completed) if index not in failed
        ]
        snapshot = aggregator.snapshot()
        self.telemetry.finish(snapshot)
        return OrchestratorOutcome(
            result=result,
            snapshot=snapshot,
            failed_runs=failed,
            resumed_runs=aggregator.resumed_runs,
            executed_runs=aggregator.executed,
        )

    def _snapshot_cache(self):
        """One golden-run snapshot cache for this process, or ``None``."""
        if self.options.snapshot == "off":
            return None
        from ..swifi.snapshot import SnapshotCache

        return SnapshotCache(
            self.executable,
            self.faults,
            num_cores=self.num_cores,
            quantum=self.quantum,
            policy=self.options.snapshot,
            engine=self.options.engine,
        )

    def _planner_cache(self):
        """One campaign planner for this process, or ``None``."""
        if not self.options.prune and not self.options.memoize:
            return None
        from ..planning import PlannerCache

        return PlannerCache(
            self.executable,
            self.faults,
            num_cores=self.num_cores,
            quantum=self.quantum,
            engine=self.options.engine,
            prune=self.options.prune,
            memoize=self.options.memoize,
            memo_dir=self.options.memo_dir,
            verify_fraction=self.options.plan_verify,
            seed=self.options.seed,
        )

    # -- inline (jobs=1) path ------------------------------------------

    def _run_inline(
        self,
        pending: list[int],
        completed: dict[int, RunRecord],
        journal: CampaignJournal | None,
        aggregator: TelemetryAggregator,
    ) -> None:
        snapshots = self._snapshot_cache()
        planner = self._planner_cache()
        try:
            for index in pending:
                spec, case = self._pair(index)
                record = execute_injection_run(
                    self.executable,
                    spec,
                    case,
                    budget=self.budgets[case.case_id],
                    num_cores=self.num_cores,
                    quantum=self.quantum,
                    snapshots=snapshots,
                    engine=self.options.engine,
                    planner=planner,
                )
                trace_payload = _trace.take_completed() if self.options.trace else None
                completed[index] = record
                if journal is not None:
                    journal.append_record(index, record)
                    if trace_payload is not None:
                        journal.append_trace(index, trace_payload)
                aggregator.record_run(record, trace=trace_payload)
                self.telemetry.update(aggregator.snapshot())
                self._notify_progress(len(completed))
                if (
                    self.options.interrupt_after is not None
                    and aggregator.executed >= self.options.interrupt_after
                ):
                    raise CampaignInterrupted(
                        f"campaign stopped after {aggregator.executed} runs "
                        "(interrupt_after)",
                        len(completed),
                        self.total_runs,
                    )
        finally:
            if planner is not None:
                planner.close()

    # -- parallel path --------------------------------------------------

    def _make_task(self, state: _ShardState) -> ShardTask:
        crash_attempts, crash_after = self.options.crash_shards.get(
            state.shard.shard_id, (0, 0)
        )
        stall_attempts, stall_seconds = self.options.stall_shards.get(
            state.shard.shard_id, (0, 0.0)
        )
        return build_shard_task(
            shard_id=state.shard.shard_id,
            attempt=state.attempt,
            indices=sorted(state.remaining),
            program=self.program,
            executable=self.executable,
            faults=self.faults,
            cases=self.cases,
            budgets=self.budgets,
            num_cores=self.num_cores,
            quantum=self.quantum,
            seed=state.shard.seed,
            snapshot=self.options.snapshot,
            trace=self.options.trace,
            engine=self.options.engine,
            prune=self.options.prune,
            memoize=self.options.memoize,
            memo_dir=self.options.memo_dir,
            plan_verify=self.options.plan_verify,
            crash_after_runs=crash_after if crash_attempts else None,
            crash_attempts=crash_attempts,
            stall_seconds=stall_seconds,
            stall_attempts=stall_attempts,
        )

    def _run_pool(
        self,
        pending: list[int],
        completed: dict[int, RunRecord],
        failed: dict[int, str],
        journal: CampaignJournal | None,
        aggregator: TelemetryAggregator,
    ) -> None:
        shards = plan_shards(
            pending,
            jobs=self.options.jobs,
            campaign_seed=self.options.seed,
            shard_size=self.options.shard_size,
        )
        if not shards:
            return
        context = multiprocessing.get_context(self.options.mp_start_method)
        results = context.Queue()
        waiting = [_ShardState(shard) for shard in shards]
        active: dict[int, _ShardState] = {}
        states = {state.shard.shard_id: state for state in waiting}

        def launch(state: _ShardState) -> None:
            task = self._make_task(state)
            process = context.Process(
                target=shard_worker_main,
                args=(task, results),
                name=f"repro-shard-{state.shard.shard_id}.{state.attempt}",
                daemon=True,
            )
            state.process = process
            state.started_at = time.monotonic()
            state.dead_since = None
            process.start()
            active[state.shard.shard_id] = state

        def finalize(state: _ShardState) -> None:
            if state.process is not None:
                state.process.join(timeout=5)
                state.process = None
            active.pop(state.shard.shard_id, None)
            if journal is not None:
                journal.sync()

        def retry_or_fail(state: _ShardState, reason: str) -> None:
            finalize(state)
            if not state.remaining:
                state.done = True
                return
            if state.attempt > self.options.max_retries:
                indices = sorted(state.remaining)
                for index in indices:
                    failed[index] = reason
                if journal is not None:
                    journal.append_shard_failure(state.shard.shard_id, indices, reason)
                aggregator.record_failures(len(indices))
                state.done = True
                self.telemetry.update(aggregator.snapshot())
                return
            state.attempt += 1
            aggregator.record_retry()
            waiting.append(state)

        def terminate_all() -> None:
            for state in list(active.values()):
                if state.process is not None and state.process.is_alive():
                    state.process.terminate()
            for state in list(active.values()):
                if state.process is not None:
                    state.process.join(timeout=5)
                    state.process = None
            active.clear()

        try:
            while waiting or active:
                while waiting and len(active) < self.options.jobs:
                    launch(waiting.pop(0))

                try:
                    message = results.get(timeout=POLL_INTERVAL)
                except queue_module.Empty:
                    message = None

                if message is not None:
                    tag = message[0]
                    if tag == MSG_RUN:
                        _, shard_id, run_index, payload, trace_payload = message
                        state = states[shard_id]
                        record = RunRecord.from_dict(payload)
                        completed[run_index] = record
                        state.remaining.discard(run_index)
                        if journal is not None:
                            journal.append_record(run_index, record)
                            if trace_payload is not None:
                                journal.append_trace(run_index, trace_payload)
                        aggregator.record_run(record, trace=trace_payload)
                        self.telemetry.update(aggregator.snapshot())
                        self._notify_progress(len(completed))
                        if (
                            self.options.interrupt_after is not None
                            and aggregator.executed >= self.options.interrupt_after
                        ):
                            raise CampaignInterrupted(
                                f"campaign stopped after {aggregator.executed} "
                                "runs (interrupt_after)",
                                len(completed),
                                self.total_runs,
                            )
                    elif tag == MSG_DONE:
                        _, shard_id, _attempt = message
                        state = states[shard_id]
                        state.done = True
                        finalize(state)
                    elif tag == MSG_ERROR:
                        _, shard_id, trace = message
                        state = states[shard_id]
                        retry_or_fail(state, f"worker exception:\n{trace}")
                    continue  # drain the queue before health checks

                now = time.monotonic()
                for state in list(active.values()):
                    if state.done:
                        continue
                    process = state.process
                    deadline = self.options.shard_deadline
                    if (
                        deadline is not None
                        and process is not None
                        and process.is_alive()
                        and now - state.started_at > deadline
                    ):
                        process.terminate()
                        process.join(timeout=5)
                        retry_or_fail(
                            state,
                            f"shard exceeded {deadline:.1f}s wall-clock deadline",
                        )
                        continue
                    if process is not None and not process.is_alive():
                        # Give flushed-but-unread messages time to arrive.
                        if state.dead_since is None:
                            state.dead_since = now
                        elif now - state.dead_since > DEAD_WORKER_GRACE:
                            code = process.exitcode
                            retry_or_fail(
                                state, f"worker died with exit code {code}"
                            )
        except BaseException:
            terminate_all()
            raise
        finally:
            results.close()
            results.join_thread()

"""Live campaign telemetry: progress events, rates, ETA, per-mode tallies.

The worker pool feeds one event per completed run into a
:class:`TelemetryAggregator`; the aggregator maintains the running
campaign statistics (runs/sec over a sliding window, per-failure-mode
tallies, ETA, retry/failure counts) and produces JSON-serialisable
:class:`TelemetrySnapshot` objects.  Consumers implement the small
:class:`TelemetrySink` interface:

* :class:`ProgressRenderer` — the CLI's live one-line progress display
  (written to stderr so piped stdout stays clean);
* :class:`JsonTelemetryWriter` — collects the final snapshot of every
  campaign and atomically writes them to a JSON file for the benchmarks.
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import IO

from ..persist import atomic_write_json
from ..swifi.campaign import RunRecord
from ..swifi.outcomes import MODE_ORDER

#: Sliding window (seconds) for the instantaneous runs/sec estimate.
RATE_WINDOW = 20.0


@dataclass
class TelemetrySnapshot:
    """One JSON-serialisable view of a campaign's progress."""

    label: str
    total_runs: int
    resumed_runs: int      # loaded from the journal, not re-executed
    executed_runs: int     # executed by this invocation
    failed_runs: int       # abandoned after worker retries were exhausted
    retries: int
    workers: int
    elapsed_seconds: float
    runs_per_second: float
    eta_seconds: float | None
    mode_tallies: dict[str, int]

    @property
    def completed_runs(self) -> int:
        return self.resumed_runs + self.executed_runs

    @property
    def remaining_runs(self) -> int:
        return max(0, self.total_runs - self.completed_runs - self.failed_runs)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "total_runs": self.total_runs,
            "resumed_runs": self.resumed_runs,
            "executed_runs": self.executed_runs,
            "completed_runs": self.completed_runs,
            "failed_runs": self.failed_runs,
            "retries": self.retries,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "runs_per_second": round(self.runs_per_second, 3),
            "eta_seconds": None if self.eta_seconds is None else round(self.eta_seconds, 3),
            "mode_tallies": dict(self.mode_tallies),
        }


class TelemetryAggregator:
    """Consumes per-run events and maintains the campaign statistics."""

    def __init__(self, *, label: str, total_runs: int, workers: int,
                 resumed: dict[int, RunRecord] | None = None) -> None:
        self.label = label
        self.total_runs = total_runs
        self.workers = workers
        self.started = time.monotonic()
        self.executed = 0
        self.failed = 0
        self.retries = 0
        self.modes: Counter = Counter()
        self.resumed_runs = 0
        self._recent: list[float] = []  # completion times inside RATE_WINDOW
        if resumed:
            self.resumed_runs = len(resumed)
            for record in resumed.values():
                self.modes[record.mode.value] += 1

    # -- event intake ---------------------------------------------------

    def record_run(self, record: RunRecord) -> None:
        self.executed += 1
        self.modes[record.mode.value] += 1
        now = time.monotonic()
        self._recent.append(now)
        cutoff = now - RATE_WINDOW
        while self._recent and self._recent[0] < cutoff:
            self._recent.pop(0)

    def record_retry(self) -> None:
        self.retries += 1

    def record_failures(self, count: int) -> None:
        self.failed += count

    # -- derived numbers ------------------------------------------------

    def rate(self) -> float:
        """Runs per second over the recent window (whole run if shorter)."""
        elapsed = time.monotonic() - self.started
        if self.executed == 0 or elapsed <= 0:
            return 0.0
        if len(self._recent) >= 2 and elapsed > RATE_WINDOW:
            span = self._recent[-1] - self._recent[0]
            if span > 0:
                return (len(self._recent) - 1) / span
        return self.executed / elapsed

    def snapshot(self) -> TelemetrySnapshot:
        rate = self.rate()
        completed = self.resumed_runs + self.executed
        remaining = max(0, self.total_runs - completed - self.failed)
        eta = (remaining / rate) if rate > 0 else None
        return TelemetrySnapshot(
            label=self.label,
            total_runs=self.total_runs,
            resumed_runs=self.resumed_runs,
            executed_runs=self.executed,
            failed_runs=self.failed,
            retries=self.retries,
            workers=self.workers,
            elapsed_seconds=time.monotonic() - self.started,
            runs_per_second=rate,
            eta_seconds=eta,
            mode_tallies={mode.value: self.modes.get(mode.value, 0) for mode in MODE_ORDER},
        )


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TelemetrySink:
    """Interface for progress consumers; every method is optional."""

    def begin(self, snapshot: TelemetrySnapshot) -> None:  # pragma: no cover
        pass

    def update(self, snapshot: TelemetrySnapshot) -> None:  # pragma: no cover
        pass

    def finish(self, snapshot: TelemetrySnapshot) -> None:  # pragma: no cover
        pass


class NullSink(TelemetrySink):
    pass


class CompositeSink(TelemetrySink):
    def __init__(self, *sinks: TelemetrySink) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def begin(self, snapshot: TelemetrySnapshot) -> None:
        for sink in self.sinks:
            sink.begin(snapshot)

    def update(self, snapshot: TelemetrySnapshot) -> None:
        for sink in self.sinks:
            sink.update(snapshot)

    def finish(self, snapshot: TelemetrySnapshot) -> None:
        for sink in self.sinks:
            sink.finish(snapshot)


class ProgressRenderer(TelemetrySink):
    """One-line live progress display for the CLI.

    On a TTY the line is redrawn in place; otherwise a plain line is
    printed at most every *interval* seconds, so logs stay readable.
    """

    def __init__(self, stream: IO[str] | None = None, *, interval: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._last_emit = 0.0
        self._line_open = False

    def _is_tty(self) -> bool:
        return bool(getattr(self.stream, "isatty", lambda: False)())

    def _format(self, snapshot: TelemetrySnapshot) -> str:
        done = snapshot.completed_runs
        percent = 100.0 * done / snapshot.total_runs if snapshot.total_runs else 100.0
        tallies = " ".join(
            f"{name[:4]}={count}" for name, count in snapshot.mode_tallies.items()
        )
        eta = "--" if snapshot.eta_seconds is None else f"{snapshot.eta_seconds:.0f}s"
        parts = [
            f"[{snapshot.label}]",
            f"{done}/{snapshot.total_runs} ({percent:.0f}%)",
            f"{snapshot.runs_per_second:.1f} runs/s",
            f"eta {eta}",
            tallies,
            f"jobs={snapshot.workers}",
        ]
        if snapshot.resumed_runs:
            parts.append(f"resumed={snapshot.resumed_runs}")
        if snapshot.retries:
            parts.append(f"retries={snapshot.retries}")
        if snapshot.failed_runs:
            parts.append(f"failed={snapshot.failed_runs}")
        return "  ".join(parts)

    def begin(self, snapshot: TelemetrySnapshot) -> None:
        self._last_emit = 0.0
        self.update(snapshot)

    def update(self, snapshot: TelemetrySnapshot) -> None:
        now = time.monotonic()
        if now - self._last_emit < self.interval:
            return
        self._last_emit = now
        line = self._format(snapshot)
        if self._is_tty():
            self.stream.write("\r\x1b[2K" + line)
            self._line_open = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self, snapshot: TelemetrySnapshot) -> None:
        line = self._format(snapshot)
        if self._is_tty() and self._line_open:
            self.stream.write("\r\x1b[2K" + line + "\n")
            self._line_open = False
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


class JsonTelemetryWriter(TelemetrySink):
    """Collects final snapshots and atomically writes them as JSON."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.snapshots: list[TelemetrySnapshot] = []

    def finish(self, snapshot: TelemetrySnapshot) -> None:
        self.snapshots.append(snapshot)
        self.write()

    def write(self) -> None:
        atomic_write_json(
            self.path,
            [snapshot.to_dict() for snapshot in self.snapshots],
            indent=2,
        )

"""Live campaign telemetry: progress events, rates, ETA, per-mode tallies.

The worker pool feeds one event per completed run into a
:class:`TelemetryAggregator`; the aggregator maintains the running
campaign statistics (runs/sec over a sliding window, per-failure-mode
tallies, ETA, retry/failure counts) and produces JSON-serialisable
:class:`TelemetrySnapshot` objects.  Consumers implement the small
:class:`TelemetrySink` interface:

* :class:`ProgressRenderer` — the CLI's live one-line progress display
  (written to stderr so piped stdout stays clean);
* :class:`JsonTelemetryWriter` — streams the campaign's snapshots to a
  JSON file: the latest in-progress snapshot is written atomically at
  most once per ``interval`` from :meth:`update` (so a killed campaign
  still leaves recent telemetry on disk), and the final snapshot of
  every campaign is appended in :meth:`finish`.

With tracing on (``CampaignConfig(trace=True)``), snapshots additionally
carry an aggregated ``trace`` block (:class:`repro.observability.trace.
TraceStats`); the key is simply absent otherwise, so schema-v2 consumers
are unaffected.
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import IO

from ..observability.trace import TraceStats
from ..persist import atomic_write_json
from ..swifi.campaign import RunRecord
from ..swifi.outcomes import MODE_ORDER

#: Sliding window (seconds) for the instantaneous runs/sec estimate.
RATE_WINDOW = 20.0


@dataclass
class TelemetrySnapshot:
    """One JSON-serialisable view of a campaign's progress."""

    label: str
    total_runs: int
    resumed_runs: int      # loaded from the journal, not re-executed
    executed_runs: int     # executed by this invocation
    failed_runs: int       # abandoned after worker retries were exhausted
    retries: int
    workers: int
    elapsed_seconds: float
    runs_per_second: float
    eta_seconds: float | None
    mode_tallies: dict[str, int]
    #: Aggregated run tracing (TraceStats.to_dict()); None when tracing
    #: is off — the JSON key is then absent entirely (schema-additive).
    trace: dict | None = None
    #: Runs answered by the campaign planner (repro.planning) instead of
    #: a fresh boot: statically pruned / replayed from the outcome memo.
    #: Zero outside planner campaigns — the JSON keys are then absent,
    #: so schema-v2 consumers are unaffected.
    pruned_runs: int = 0
    memoized_runs: int = 0

    @property
    def completed_runs(self) -> int:
        return self.resumed_runs + self.executed_runs

    @property
    def remaining_runs(self) -> int:
        return max(0, self.total_runs - self.completed_runs - self.failed_runs)

    def to_dict(self) -> dict:
        payload = {
            "label": self.label,
            "total_runs": self.total_runs,
            "resumed_runs": self.resumed_runs,
            "executed_runs": self.executed_runs,
            "completed_runs": self.completed_runs,
            "failed_runs": self.failed_runs,
            "retries": self.retries,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "runs_per_second": round(self.runs_per_second, 3),
            "eta_seconds": None if self.eta_seconds is None else round(self.eta_seconds, 3),
            "mode_tallies": dict(self.mode_tallies),
        }
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        if self.pruned_runs:
            payload["pruned_runs"] = self.pruned_runs
        if self.memoized_runs:
            payload["memoized_runs"] = self.memoized_runs
        return payload


class TelemetryAggregator:
    """Consumes per-run events and maintains the campaign statistics."""

    def __init__(self, *, label: str, total_runs: int, workers: int,
                 resumed: dict[int, RunRecord] | None = None,
                 tracing: bool = False) -> None:
        self.label = label
        self.total_runs = total_runs
        self.workers = workers
        self.started = time.monotonic()
        self.executed = 0
        self.failed = 0
        self.retries = 0
        self.modes: Counter = Counter()
        self.pruned = 0
        self.memoized = 0
        self.resumed_runs = 0
        self._recent: list[float] = []  # completion times inside RATE_WINDOW
        self.trace_stats: TraceStats | None = TraceStats() if tracing else None
        if resumed:
            self.resumed_runs = len(resumed)
            for record in resumed.values():
                self.modes[record.mode.value] += 1
                self._note_provenance(record)
            if self.trace_stats is not None:
                self.trace_stats.resume_skips = len(resumed)

    # -- event intake ---------------------------------------------------

    def _note_provenance(self, record: RunRecord) -> None:
        if record.provenance == "pruned":
            self.pruned += 1
        elif record.provenance == "memoized":
            self.memoized += 1

    def record_run(self, record: RunRecord, trace: dict | None = None) -> None:
        self.executed += 1
        self.modes[record.mode.value] += 1
        self._note_provenance(record)
        if self.trace_stats is not None and trace is not None:
            self.trace_stats.add_run(trace)
        now = time.monotonic()
        self._recent.append(now)
        cutoff = now - RATE_WINDOW
        while self._recent and self._recent[0] < cutoff:
            self._recent.pop(0)

    def record_retry(self) -> None:
        self.retries += 1
        if self.trace_stats is not None:
            self.trace_stats.retries += 1

    def record_failures(self, count: int) -> None:
        self.failed += count

    # -- derived numbers ------------------------------------------------

    def rate(self) -> float:
        """Runs per second over the recent window (whole run if shorter).

        Guaranteed positive once a run has completed: the first
        ``record_run`` can land within the clock's resolution of
        ``started``, so zero elapsed time is clamped rather than reported
        as a zero rate (which would knock out the ETA right as the
        campaign starts).
        """
        if self.executed == 0:
            return 0.0
        elapsed = max(time.monotonic() - self.started, 1e-9)
        if len(self._recent) >= 2 and elapsed > RATE_WINDOW:
            span = self._recent[-1] - self._recent[0]
            if span > 0:
                return (len(self._recent) - 1) / span
        return self.executed / elapsed

    def snapshot(self) -> TelemetrySnapshot:
        rate = self.rate()
        completed = self.resumed_runs + self.executed
        remaining = max(0, self.total_runs - completed - self.failed)
        eta = (remaining / rate) if rate > 0 else None
        return TelemetrySnapshot(
            label=self.label,
            total_runs=self.total_runs,
            resumed_runs=self.resumed_runs,
            executed_runs=self.executed,
            failed_runs=self.failed,
            retries=self.retries,
            workers=self.workers,
            elapsed_seconds=time.monotonic() - self.started,
            runs_per_second=rate,
            eta_seconds=eta,
            mode_tallies={mode.value: self.modes.get(mode.value, 0) for mode in MODE_ORDER},
            trace=None if self.trace_stats is None else self.trace_stats.to_dict(),
            pruned_runs=self.pruned,
            memoized_runs=self.memoized,
        )


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class TelemetrySink:
    """Interface for progress consumers; every method is optional."""

    def begin(self, snapshot: TelemetrySnapshot) -> None:  # pragma: no cover
        pass

    def update(self, snapshot: TelemetrySnapshot) -> None:  # pragma: no cover
        pass

    def finish(self, snapshot: TelemetrySnapshot) -> None:  # pragma: no cover
        pass


class NullSink(TelemetrySink):
    pass


class CompositeSink(TelemetrySink):
    def __init__(self, *sinks: TelemetrySink) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def begin(self, snapshot: TelemetrySnapshot) -> None:
        for sink in self.sinks:
            sink.begin(snapshot)

    def update(self, snapshot: TelemetrySnapshot) -> None:
        for sink in self.sinks:
            sink.update(snapshot)

    def finish(self, snapshot: TelemetrySnapshot) -> None:
        for sink in self.sinks:
            sink.finish(snapshot)


class ProgressRenderer(TelemetrySink):
    """One-line live progress display for the CLI.

    On a TTY the line is redrawn in place; otherwise a plain line is
    printed at most every *interval* seconds, so logs stay readable.
    """

    def __init__(self, stream: IO[str] | None = None, *, interval: float = 0.5) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        # None = nothing emitted yet.  A 0.0 start value would compare
        # against the raw monotonic clock, whose epoch is arbitrary — on
        # platforms where it starts near zero the begin() render (and
        # every update inside the first interval) would be dropped.
        self._last_emit: float | None = None
        self._line_open = False

    def _is_tty(self) -> bool:
        return bool(getattr(self.stream, "isatty", lambda: False)())

    def _format(self, snapshot: TelemetrySnapshot) -> str:
        done = snapshot.completed_runs
        percent = 100.0 * done / snapshot.total_runs if snapshot.total_runs else 100.0
        tallies = " ".join(
            f"{name[:4]}={count}" for name, count in snapshot.mode_tallies.items()
        )
        eta = "--" if snapshot.eta_seconds is None else f"{snapshot.eta_seconds:.0f}s"
        parts = [
            f"[{snapshot.label}]",
            f"{done}/{snapshot.total_runs} ({percent:.0f}%)",
            f"{snapshot.runs_per_second:.1f} runs/s",
            f"eta {eta}",
            tallies,
            f"jobs={snapshot.workers}",
        ]
        if snapshot.pruned_runs:
            parts.append(f"pruned={snapshot.pruned_runs}")
        if snapshot.memoized_runs:
            parts.append(f"memo={snapshot.memoized_runs}")
        if snapshot.resumed_runs:
            parts.append(f"resumed={snapshot.resumed_runs}")
        if snapshot.retries:
            parts.append(f"retries={snapshot.retries}")
        if snapshot.failed_runs:
            parts.append(f"failed={snapshot.failed_runs}")
        if snapshot.trace is not None:
            fast = snapshot.trace.get("fast_path_hits", 0)
            if fast:
                parts.append(f"fast={fast}")
            fallbacks = sum(
                (snapshot.trace.get("fallback_reasons") or {}).values()
            )
            if fallbacks:
                parts.append(f"fb={fallbacks}")
        return "  ".join(parts)

    def begin(self, snapshot: TelemetrySnapshot) -> None:
        self._last_emit = None
        self.update(snapshot)

    def update(self, snapshot: TelemetrySnapshot) -> None:
        now = time.monotonic()
        if self._last_emit is not None and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        line = self._format(snapshot)
        if self._is_tty():
            self.stream.write("\r\x1b[2K" + line)
            self._line_open = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self, snapshot: TelemetrySnapshot) -> None:
        # Unthrottled on purpose: however recently update() emitted (or
        # swallowed) a snapshot, the final totals always render.
        line = self._format(snapshot)
        if self._is_tty() and self._line_open:
            self.stream.write("\r\x1b[2K" + line + "\n")
            self._line_open = False
        else:
            self.stream.write(line + "\n")
        self.stream.flush()


class JsonTelemetryWriter(TelemetrySink):
    """Streams campaign snapshots to a JSON file, atomically.

    Historically this sink wrote only from :meth:`finish`, so a campaign
    killed mid-flight left *nothing* on disk.  Now every throttled
    :meth:`update` rewrites the file (via ``atomic_write_json``, so
    readers never see a torn file) with the finished campaigns' final
    snapshots plus the in-flight campaign's latest snapshot, marked
    ``"in_progress": true``.  :meth:`finish` replaces that marker entry
    with the final snapshot.
    """

    def __init__(self, path: str, *, interval: float = 1.0) -> None:
        self.path = path
        self.interval = interval
        self.snapshots: list[TelemetrySnapshot] = []
        self._current: TelemetrySnapshot | None = None
        self._last_write: float | None = None

    def update(self, snapshot: TelemetrySnapshot) -> None:
        self._current = snapshot
        now = time.monotonic()
        if self._last_write is not None and now - self._last_write < self.interval:
            return
        self._last_write = now
        self.write()

    def finish(self, snapshot: TelemetrySnapshot) -> None:
        self._current = None
        self.snapshots.append(snapshot)
        self.write()

    def write(self) -> None:
        payload = [snapshot.to_dict() for snapshot in self.snapshots]
        if self._current is not None:
            entry = self._current.to_dict()
            entry["in_progress"] = True
            payload.append(entry)
        atomic_write_json(self.path, payload, indent=2)

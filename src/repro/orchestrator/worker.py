"""The shard worker: one fresh process per shard of injection runs.

The paper reboots the target machine between injections; the serial
campaign loop reproduces that with a fresh simulated machine per run.
The orchestrator strengthens it the way a real farm would: every shard
is executed by a **fresh worker process**, so not even interpreter state
(caches, allocator, a corrupted C extension…) can leak between shards —
and a worker that dies takes only its own shard's un-journaled runs with
it.

Everything a worker needs rides in one picklable :class:`ShardTask`; the
worker streams one message per completed run back through the result
queue and finishes with a ``shard-done`` marker.  The supervisor treats
a missing marker (dead process, exceeded deadline) as a shard failure
and retries only the runs whose messages never arrived.

The run loop itself — snapshot/planner cache setup, per-run execution,
trace capture — is :func:`execute_shard_runs`, shared verbatim with the
distributed service's workers (:mod:`repro.service.worker`): a shard
means exactly the same thing whether it arrived through a
``multiprocessing`` queue or over the broker's HTTP lease protocol.
"""

from __future__ import annotations

import os
import random
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Sequence

from ..machine.loader import Executable
from ..observability import trace as _trace
from ..swifi.campaign import InputCase, RunRecord, execute_injection_run
from ..swifi.faults import MachineFault

#: Message tags on the result queue.
MSG_RUN = "run"          # (MSG_RUN, shard_id, run_index, record_dict, trace|None)
MSG_DONE = "done"        # (MSG_DONE, shard_id, attempt)
MSG_ERROR = "error"      # (MSG_ERROR, shard_id, traceback_text)

#: Exit code used by the crash-simulation hook (tests / supervision drills).
CRASH_EXIT_CODE = 17


@dataclass(frozen=True)
class ShardTask:
    """One shard's worth of work, shipped whole to a fresh process.

    ``faults``/``cases`` are compacted to just the specs this shard
    references; ``runs`` maps each serial run index to positions in those
    tuples.  ``seed`` is the shard's private RNG stream (derived by the
    scheduler from the campaign seed), kept separate per shard so results
    never depend on how the campaign was partitioned.
    """

    shard_id: int
    attempt: int
    program: str
    executable: Executable
    num_cores: int
    quantum: int
    budgets: dict[str, int]
    faults: tuple[MachineFault | None, ...]
    cases: tuple[InputCase, ...]
    runs: tuple[tuple[int, int, int], ...]  # (run_index, fault_pos, case_pos)
    seed: int
    snapshot: str = "off"  # golden-run restore policy; cache built in-process
    trace: bool = False    # per-run span tracing (repro.observability)
    engine: str = "simple"  # machine execution engine for every run
    # -- campaign planner (repro.planning); cache built in-process ------
    prune: bool = False
    memoize: bool = False
    memo_dir: str | None = None
    plan_verify: float = 0.0
    # -- supervision drill hooks (exercised by the test suite) ----------
    crash_after_runs: int | None = None
    crash_attempts: int = 0
    stall_seconds: float = 0.0
    stall_attempts: int = 0

    def should_crash(self, sent: int) -> bool:
        return (
            self.crash_after_runs is not None
            and self.attempt <= self.crash_attempts
            and sent >= self.crash_after_runs
        )

    def should_stall(self) -> bool:
        return self.stall_seconds > 0 and self.attempt <= self.stall_attempts


def build_shard_task(
    *,
    shard_id: int,
    attempt: int,
    indices: Sequence[int],
    program: str,
    executable: Executable,
    faults: Sequence[MachineFault],
    cases: Sequence[InputCase],
    budgets: dict[str, int],
    num_cores: int,
    quantum: int,
    seed: int,
    snapshot: str = "off",
    trace: bool = False,
    engine: str = "simple",
    prune: bool = False,
    memoize: bool = False,
    memo_dir: str | None = None,
    plan_verify: float = 0.0,
    crash_after_runs: int | None = None,
    crash_attempts: int = 0,
    stall_seconds: float = 0.0,
    stall_attempts: int = 0,
) -> ShardTask:
    """Compact one shard of run *indices* into a self-contained task.

    *faults*/*cases* are the full campaign matrix; the task ships only
    the specs this shard references, with ``runs`` mapping each serial
    run index to positions in the compacted tuples.  Shared by the
    ``multiprocessing`` supervisor and the service broker so a shard is
    built identically wherever it executes.
    """
    from .scheduler import pair_for_index

    fault_positions: dict[int, int] = {}
    case_positions: dict[int, int] = {}
    task_faults: list[MachineFault] = []
    task_cases: list[InputCase] = []
    runs: list[tuple[int, int, int]] = []
    for index in sorted(indices):
        fault_index, case_index = pair_for_index(index, len(cases))
        if fault_index not in fault_positions:
            fault_positions[fault_index] = len(task_faults)
            task_faults.append(faults[fault_index])
        if case_index not in case_positions:
            case_positions[case_index] = len(task_cases)
            task_cases.append(cases[case_index])
        runs.append((index, fault_positions[fault_index], case_positions[case_index]))
    return ShardTask(
        shard_id=shard_id,
        attempt=attempt,
        program=program,
        executable=executable,
        num_cores=num_cores,
        quantum=quantum,
        budgets={case.case_id: budgets[case.case_id] for case in task_cases},
        faults=tuple(task_faults),
        cases=tuple(task_cases),
        runs=tuple(runs),
        seed=seed,
        snapshot=snapshot,
        trace=trace,
        engine=engine,
        prune=prune,
        memoize=memoize,
        memo_dir=memo_dir,
        plan_verify=plan_verify,
        crash_after_runs=crash_after_runs,
        crash_attempts=crash_attempts,
        stall_seconds=stall_seconds,
        stall_attempts=stall_attempts,
    )


def execute_shard_runs(
    task: ShardTask,
    emit: Callable[[int, RunRecord, dict | None], None],
) -> None:
    """Execute every run of *task*, calling ``emit`` per completed run.

    ``emit(run_index, record, trace_payload)`` is invoked in serial-index
    order the moment each run finishes; raising from it aborts the shard
    (the service worker uses that to abandon a lease it has lost).  The
    snapshot and planner caches are built fresh for this task and torn
    down afterwards — exactly the per-worker isolation the pool workers
    have always had.
    """
    previous_tracing = None
    if task.trace:
        previous_tracing = _trace.set_tracing(True)
    snapshots = None
    if task.snapshot != "off":
        # Built fresh per task: snapshots are shared by every run of
        # this shard but never cross a process boundary.
        from ..swifi.snapshot import SnapshotCache

        snapshots = SnapshotCache(
            task.executable,
            task.faults,
            num_cores=task.num_cores,
            quantum=task.quantum,
            policy=task.snapshot,
            engine=task.engine,
        )
    planner = None
    try:
        if task.prune or task.memoize:
            # Built fresh per task like the snapshot cache; workers
            # share outcomes only through the on-disk memo directory.
            from ..planning import PlannerCache

            planner = PlannerCache(
                task.executable,
                task.faults,
                num_cores=task.num_cores,
                quantum=task.quantum,
                engine=task.engine,
                prune=task.prune,
                memoize=task.memoize,
                memo_dir=task.memo_dir,
                verify_fraction=task.plan_verify,
                seed=task.seed,
            )
        for run_index, fault_pos, case_pos in task.runs:
            spec = task.faults[fault_pos]
            case = task.cases[case_pos]
            record = execute_injection_run(
                task.executable,
                spec,
                case,
                budget=task.budgets[case.case_id],
                num_cores=task.num_cores,
                quantum=task.quantum,
                snapshots=snapshots,
                engine=task.engine,
                planner=planner,
            )
            payload = _trace.take_completed() if task.trace else None
            emit(run_index, record, payload)
    finally:
        if planner is not None:
            planner.close()
        if previous_tracing is not None:
            _trace.set_tracing(previous_tracing)


def shard_worker_main(task: ShardTask, queue) -> None:
    """Entry point of a worker process: execute the shard, stream results."""
    rng = random.Random(task.seed)  # the shard's private stream; handed to
    del rng                         # stochastic run components when they exist
    sent = 0

    def emit(run_index: int, record: RunRecord, payload: dict | None) -> None:
        nonlocal sent
        queue.put((MSG_RUN, task.shard_id, run_index, record.to_dict(), payload))
        sent += 1
        if task.should_crash(sent):
            _die_abruptly(queue)

    try:
        if task.should_stall():
            time.sleep(task.stall_seconds)  # a "hung" worker for the deadline drill
        execute_shard_runs(task, emit)
        queue.put((MSG_DONE, task.shard_id, task.attempt))
    except BaseException:
        queue.put((MSG_ERROR, task.shard_id, traceback.format_exc()))
        _drain_and_exit(queue, 1)
        return
    _drain_and_exit(queue, 0)


def _drain_and_exit(queue, code: int) -> None:
    """Flush the queue's feeder thread, then exit without cleanup races."""
    queue.close()
    queue.join_thread()
    os._exit(code)


def _die_abruptly(queue) -> None:
    """Simulate a worker crash *after* flushing already-sent messages."""
    queue.close()
    queue.join_thread()
    os._exit(CRASH_EXIT_CODE)

"""Deterministic campaign sharding.

The campaign matrix (every fault × every input case) is flattened into
*run indices* in the exact order the serial :meth:`CampaignRunner.run`
loop visits them (fault-major), and the indices still pending are cut
into contiguous shards.  Two properties keep parallel campaigns
bit-identical to serial ones:

* a run is addressed by its serial index, so merged results can always
  be re-sorted into the serial order regardless of which worker finished
  first;
* every shard gets its own RNG stream derived from the campaign seed and
  the shard's first run index (not from the shard count or the worker
  id), so any stochastic behaviour inside a shard is independent of the
  number of workers *and* of how much of the campaign was already
  journaled when the shard was planned.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

#: Upper bound on runs per shard; small shards bound the work lost when a
#: worker dies (only un-journaled runs of the dead shard are retried).
MAX_SHARD_SIZE = 64


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of pending run indices plus its RNG stream seed."""

    shard_id: int
    run_indices: tuple[int, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.run_indices)


def pair_for_index(run_index: int, num_cases: int) -> tuple[int, int]:
    """Serial-order decomposition: run index → (fault index, case index)."""
    if num_cases <= 0:
        raise ValueError("a campaign needs at least one input case")
    return divmod(run_index, num_cases)


def shard_stream_seed(campaign_seed: int, anchor_index: int) -> int:
    """A 64-bit RNG seed for one shard, stable across resume/resharding."""
    digest = hashlib.sha256(
        f"repro-shard:{campaign_seed}:{anchor_index}".encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big")


def default_shard_size(pending: int, jobs: int) -> int:
    """Roughly four shards per worker, clamped to [1, MAX_SHARD_SIZE]."""
    if pending <= 0:
        return 1
    return max(1, min(MAX_SHARD_SIZE, pending // max(1, jobs * 4) or 1))


def plan_shards(
    run_indices: Iterable[int],
    *,
    jobs: int,
    campaign_seed: int,
    shard_size: int | None = None,
) -> list[Shard]:
    """Partition pending *run_indices* into deterministic shards."""
    indices: Sequence[int] = sorted(run_indices)
    if not indices:
        return []
    size = shard_size if shard_size is not None else default_shard_size(len(indices), jobs)
    if size < 1:
        raise ValueError(f"shard_size must be >= 1, got {size}")
    shards = []
    for shard_id, start in enumerate(range(0, len(indices), size)):
        chunk = tuple(indices[start : start + size])
        shards.append(
            Shard(
                shard_id=shard_id,
                run_indices=chunk,
                seed=shard_stream_seed(campaign_seed, chunk[0]),
            )
        )
    return shards

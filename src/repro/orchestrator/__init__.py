"""Parallel campaign orchestration.

The paper's §6 experiment is 108,600 injection runs with a machine
reboot between every run — an embarrassingly parallel workload.  This
package turns one campaign (program × fault set × input cases) into
deterministic shards executed by a supervised ``multiprocessing`` worker
pool:

* :mod:`.scheduler` — partitions the (fault, case) matrix and derives a
  per-shard RNG stream from the campaign seed, so parallel results are
  bit-identical to serial ones;
* :mod:`.journal` — an append-only JSONL log of completed runs with an
  atomically-written manifest, so a killed campaign resumes instead of
  re-running everything;
* :mod:`.worker` — one fresh process per shard (the paper's "the target
  system is rebooted between injections", promoted to process level);
* :mod:`.pool` — the supervisor: deadline/crash detection, bounded
  retries, failed-shard bookkeeping that never aborts the campaign;
* :mod:`.telemetry` — queue-fed progress events: runs/sec, per-mode
  tallies, ETA, a CLI renderer and a JSON exporter.
"""

from .journal import (
    CampaignJournal,
    JournalError,
    JournalState,
    campaign_fingerprint,
    load_runs_file,
)
from .pool import (
    CampaignInterrupted,
    CampaignOrchestrator,
    OrchestratorOptions,
    OrchestratorOutcome,
)
from .scheduler import (
    Shard,
    default_shard_size,
    pair_for_index,
    plan_shards,
    shard_stream_seed,
)
from .telemetry import (
    CompositeSink,
    JsonTelemetryWriter,
    NullSink,
    ProgressRenderer,
    TelemetryAggregator,
    TelemetrySink,
    TelemetrySnapshot,
)
from .worker import (
    CRASH_EXIT_CODE,
    ShardTask,
    build_shard_task,
    execute_shard_runs,
    shard_worker_main,
)

__all__ = [
    "CampaignJournal",
    "JournalError",
    "JournalState",
    "campaign_fingerprint",
    "encode_entry",
    "load_runs_file",
    "CampaignInterrupted",
    "CampaignOrchestrator",
    "OrchestratorOptions",
    "OrchestratorOutcome",
    "Shard",
    "default_shard_size",
    "pair_for_index",
    "plan_shards",
    "shard_stream_seed",
    "CompositeSink",
    "JsonTelemetryWriter",
    "NullSink",
    "ProgressRenderer",
    "TelemetryAggregator",
    "TelemetrySink",
    "TelemetrySnapshot",
    "CRASH_EXIT_CODE",
    "ShardTask",
    "shard_worker_main",
]

"""The differential oracle: one case, every configuration, one verdict.

Two comparison tiers, both bit-exact:

* **State tier** — for each (program, input, fault) case the oracle runs
  the injection once per execution engine with direct machine access and
  compares a full :class:`StateDigest`: run status, exit code, trap kind,
  retired instruction count, console bytes, every core's registers and a
  SHA-256 over the entire physical memory image and the heap allocator
  state.  Anything the engines disagree on — a single stale register, one
  byte of stack — flips the digest.

* **Record tier** — per generated program the oracle runs the whole
  (faults x inputs) mini-campaign once per configuration in the
  {engine} x {snapshot} x {jobs} matrix and compares the resulting
  :class:`RunRecord` lists against the base configuration
  (simple / off / serial).  This exercises exactly the production paths:
  the snapshot fast path's eligibility analysis and the orchestrator's
  sharded workers.

A mismatch in either tier is reported as a :class:`Divergence` carrying
both sides, ready for the shrinker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.loader import boot
from ..machine.machine import ENGINE_BLOCK, ENGINE_SIMPLE, ENGINES
from ..swifi.campaign import (
    CampaignConfig,
    CampaignRunner,
    DEFAULT_BUDGET_FACTOR,
    DEFAULT_MIN_BUDGET,
    InputCase,
    RunRecord,
    SNAPSHOT_OFF,
    SNAPSHOT_POLICIES,
)
from ..swifi.faults import MachineFault
from ..swifi.injector import InjectionSession

#: The configuration matrix the conformance gate must hold over.
DEFAULT_JOBS_AXIS = (1, 4)


#: The planner axis of the configuration matrix: campaign planning off,
#: or dormant-fault pruning plus outcome memoization (with a fresh
#: in-memory memo per campaign).
PLANNER_OFF = "off"
PLANNER_ON = "prune+memo"
PLANNER_POLICIES = (PLANNER_OFF, PLANNER_ON)


@dataclass(frozen=True)
class MatrixConfig:
    """One point of the {engine} x {snapshot} x {jobs} x {planner} matrix.

    ``opt`` names the compiler optimization level of the binary under
    test; it only differs from 0 in the fuzzer's O0-vs-O1 compiler axis
    (``FuzzConfig(opt_axis=(0, 1))``), where the two sides of a
    divergence ran *different binaries* of the same program.
    """

    engine: str = ENGINE_SIMPLE
    snapshot: str = SNAPSHOT_OFF
    jobs: int = 1
    planner: str = PLANNER_OFF
    opt: int = 0

    def label(self) -> str:
        label = (
            f"engine={self.engine}/snapshot={self.snapshot}/jobs={self.jobs}"
            f"/planner={self.planner}"
        )
        if self.opt:
            label += f"/opt={self.opt}"
        return label

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "snapshot": self.snapshot,
            "jobs": self.jobs,
            "planner": self.planner,
            "opt": self.opt,
        }


def full_matrix(jobs_axis: tuple[int, ...] = DEFAULT_JOBS_AXIS) -> list[MatrixConfig]:
    return [
        MatrixConfig(engine, snapshot, jobs, planner)
        for engine in ENGINES
        for snapshot in SNAPSHOT_POLICIES
        for jobs in jobs_axis
        for planner in PLANNER_POLICIES
    ]


BASE_CONFIG = MatrixConfig()


# ---------------------------------------------------------------------------
# State digests
# ---------------------------------------------------------------------------

# StateDigest and machine_digest moved to repro.planning.digest (the
# campaign planner keys its outcome memo on the same hashing); they are
# re-imported here so every historical import path keeps working.
from ..planning.digest import StateDigest, machine_digest  # noqa: E402


def run_state(executable, spec: MachineFault | None, case: InputCase, *,
              budget: int, engine: str, quantum: int = 64) -> StateDigest:
    """One fresh-boot injection run with direct machine access."""
    machine = boot(executable, inputs=dict(case.pokes), engine=engine)
    session = InjectionSession(machine)
    fault_id = spec.fault_id if spec is not None else "none"
    if spec is not None:
        session.arm(spec)
    result = session.run(budget, quantum=quantum)
    return machine_digest(machine, result, session, fault_id)


# ---------------------------------------------------------------------------
# Divergences
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """One disagreement between two configurations on one case."""

    tier: str                      # "state" | "record"
    program: str
    fault_id: str
    case_id: str
    config_a: MatrixConfig
    config_b: MatrixConfig
    detail_a: dict
    detail_b: dict
    fields: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"[{self.tier}] {self.program} fault={self.fault_id} "
            f"case={self.case_id}: {self.config_a.label()} != "
            f"{self.config_b.label()} on {', '.join(self.fields) or 'records'}"
        )

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "program": self.program,
            "fault_id": self.fault_id,
            "case_id": self.case_id,
            "config_a": self.config_a.to_dict(),
            "config_b": self.config_b.to_dict(),
            "detail_a": self.detail_a,
            "detail_b": self.detail_b,
            "fields": list(self.fields),
        }


def _digest_diff(a: StateDigest, b: StateDigest) -> list[str]:
    da, db = a.to_dict(), b.to_dict()
    return [key for key in da if da[key] != db[key]]


def _record_diff(a: RunRecord, b: RunRecord) -> list[str]:
    da, db = a.to_dict(), b.to_dict()
    # provenance says *how* a record was obtained (executed / pruned /
    # memoized) — by design it varies across the planner axis while every
    # outcome field must stay bit-identical.
    return [key for key in da if key != "provenance" and da[key] != db[key]]


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


def default_budget(golden_instructions: int) -> int:
    """The campaign runner's hang budget, derived the same way it does."""
    return max(DEFAULT_MIN_BUDGET, golden_instructions * DEFAULT_BUDGET_FACTOR)


class DifferentialOracle:
    """Runs one program's case batch across the matrix and compares."""

    def __init__(self, compiled, cases: list[InputCase], *,
                 matrix: list[MatrixConfig] | None = None,
                 state_engines: tuple[str, ...] = ENGINES):
        self.compiled = compiled
        self.cases = cases
        self.matrix = full_matrix() if matrix is None else list(matrix)
        self.state_engines = state_engines
        self.runs = 0

    # -- state tier ------------------------------------------------------

    def check_state(self, spec: MachineFault | None, case: InputCase, *,
                    budget: int) -> tuple[Divergence | None, dict[str, StateDigest]]:
        """Cross-engine full-state comparison for one (fault, case).

        ``spec=None`` compares the fault-free run — the pure engine
        conformance case.
        """
        fault_id = spec.fault_id if spec is not None else "golden"
        digests: dict[str, StateDigest] = {}
        for engine in self.state_engines:
            digests[engine] = run_state(
                self.compiled.executable, spec, case, budget=budget, engine=engine
            )
            self.runs += 1
        base_engine = self.state_engines[0]
        base = digests[base_engine]
        for engine in self.state_engines[1:]:
            fields = _digest_diff(base, digests[engine])
            if fields:
                return (
                    Divergence(
                        tier="state",
                        program=self.compiled.name,
                        fault_id=fault_id,
                        case_id=case.case_id,
                        config_a=MatrixConfig(engine=base_engine),
                        config_b=MatrixConfig(engine=engine),
                        detail_a=base.to_dict(),
                        detail_b=digests[engine].to_dict(),
                        fields=fields,
                    ),
                    digests,
                )
        return None, digests

    # -- record tier -----------------------------------------------------

    def check_records(self, faults: list[MachineFault]) -> list[Divergence]:
        """Run the faults x cases campaign under every matrix config."""
        base_records = self._campaign(BASE_CONFIG, faults)
        divergences: list[Divergence] = []
        for config in self.matrix:
            if config == BASE_CONFIG:
                continue
            records = self._campaign(config, faults)
            divergences.extend(self._compare(base_records, records, config))
        return divergences

    def _campaign(self, config: MatrixConfig, faults: list[MachineFault]) -> list[RunRecord]:
        runner = CampaignRunner(self.compiled, self.cases)
        planned = config.planner == PLANNER_ON
        result = runner.run(
            faults,
            config=CampaignConfig(
                jobs=config.jobs, snapshot=config.snapshot, engine=config.engine,
                prune=planned, memoize=planned,
                opt_level=getattr(self.compiled, "opt_level", 0),
            ),
        )
        self.runs += len(result.records)
        return result.records

    def _compare(self, base: list[RunRecord], other: list[RunRecord],
                 config: MatrixConfig) -> list[Divergence]:
        divergences: list[Divergence] = []
        if len(base) != len(other):
            divergences.append(
                Divergence(
                    tier="record", program=self.compiled.name,
                    fault_id="*", case_id="*",
                    config_a=BASE_CONFIG, config_b=config,
                    detail_a={"record_count": len(base)},
                    detail_b={"record_count": len(other)},
                    fields=["record_count"],
                )
            )
            return divergences
        for record_a, record_b in zip(base, other):
            fields = _record_diff(record_a, record_b)
            if fields:
                divergences.append(
                    Divergence(
                        tier="record", program=self.compiled.name,
                        fault_id=record_a.fault_id, case_id=record_a.case_id,
                        config_a=BASE_CONFIG, config_b=config,
                        detail_a=record_a.to_dict(), detail_b=record_b.to_dict(),
                        fields=fields,
                    )
                )
        return divergences

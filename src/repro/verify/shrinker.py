"""Automatic minimization of a failing (program, fault) case.

Given a generated program and a fault descriptor on which the
differential oracle reported a divergence, the shrinker searches for the
smallest variant that *still* diverges.  The caller supplies the
predicate (recompile + re-run the disagreeing configurations); the
shrinker only proposes edits:

* **statement removal** — delta-debugging style chunked deletion over
  every statement list in the program (function bodies, ``main``, and
  every compound's body), halving the chunk size down to single
  statements;
* **compound flattening** — replace an ``if``/``for`` statement with its
  (concatenated) children, discarding the control structure;
* **function dropping** — remove helper functions once nothing calls
  them any more;
* **fault simplification** — canonicalize the descriptor (fire every
  time instead of on the n-th activation, single-bit instead of
  multi-bit masks, breakpoint mode instead of trap insertion) as long as
  the divergence persists.

Every proposed edit is applied in place, checked, and rolled back when
the predicate stops failing, so the live program is always the smallest
known-failing variant.  The predicate must treat a non-compiling or
non-realizable candidate as "does not fail".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from .generator import GenProgram, Stmt
from .sampler import MachineFaultRecipe
from ..swifi.faults import MODE_BREAKPOINT

#: Stop after this many predicate evaluations by default; each one costs
#: a recompile plus a handful of machine runs.
DEFAULT_MAX_CHECKS = 400

Predicate = Callable[[GenProgram, "MachineFaultRecipe | None"], bool]


@dataclass
class ShrinkResult:
    """The minimized case plus bookkeeping about the search."""

    program: GenProgram
    descriptor: MachineFaultRecipe | None
    source: str
    statements_before: int
    statements_after: int
    rounds: int
    checks: int

    def to_dict(self) -> dict:
        return {
            "statements_before": self.statements_before,
            "statements_after": self.statements_after,
            "rounds": self.rounds,
            "checks": self.checks,
        }


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def shrink_case(program: GenProgram, descriptor: MachineFaultRecipe | None,
                still_fails: Predicate, *,
                max_checks: int = DEFAULT_MAX_CHECKS) -> ShrinkResult:
    """Minimize *(program, descriptor)* under the *still_fails* predicate.

    ``descriptor=None`` shrinks a fault-free (golden) divergence; only the
    program passes apply.
    """
    prog = program.clone()
    desc = descriptor
    before = prog.statement_count()
    budget = _Budget(max_checks)
    rounds = 0
    changed = True
    while changed and budget.used < budget.limit:
        changed = False
        rounds += 1
        if _pass_remove_statements(prog, desc, still_fails, budget):
            changed = True
        if _pass_flatten(prog, desc, still_fails, budget):
            changed = True
        if _pass_drop_functions(prog, desc, still_fails, budget):
            changed = True
        desc, desc_changed = _pass_simplify_descriptor(prog, desc, still_fails, budget)
        if desc_changed:
            changed = True
    return ShrinkResult(
        program=prog,
        descriptor=desc,
        source=prog.render(),
        statements_before=before,
        statements_after=prog.statement_count(),
        rounds=rounds,
        checks=budget.used,
    )


# ---------------------------------------------------------------------------
# Program passes
# ---------------------------------------------------------------------------


def _pass_remove_statements(prog: GenProgram, desc: MachineFaultRecipe,
                            still_fails: Predicate, budget: _Budget) -> bool:
    changed = False
    for body in prog.bodies():
        chunk = max(1, len(body))
        while chunk >= 1:
            index = 0
            while index + chunk <= len(body):
                removed = body[index:index + chunk]
                del body[index:index + chunk]
                if budget.spend() and still_fails(prog, desc):
                    changed = True
                    # The list shifted left; retry the same index.
                    continue
                body[index:index] = removed  # re-insert, don't overwrite
                index += chunk
            chunk //= 2
    return changed


def _pass_flatten(prog: GenProgram, desc: MachineFaultRecipe,
                  still_fails: Predicate, budget: _Budget) -> bool:
    changed = False
    for body in prog.bodies():
        index = 0
        while index < len(body):
            stmt = body[index]
            if stmt.kind not in ("if", "for") or not (stmt.body or stmt.orelse):
                index += 1
                continue
            children: list[Stmt] = stmt.body + stmt.orelse
            body[index:index + 1] = children
            if budget.spend() and still_fails(prog, desc):
                changed = True
                continue
            body[index:index + len(children)] = [stmt]
            index += 1
    return changed


def _pass_drop_functions(prog: GenProgram, desc: MachineFaultRecipe,
                         still_fails: Predicate, budget: _Budget) -> bool:
    changed = False
    for position in range(len(prog.functions) - 1, -1, -1):
        func = prog.functions[position]
        del prog.functions[position]
        # Cheap pre-filter: a surviving call site cannot compile, so only
        # spend a check when the name is gone from the rendered source.
        if func.name not in prog.render() and budget.spend() \
                and still_fails(prog, desc):
            changed = True
            continue
        prog.functions.insert(position, func)
    return changed


# ---------------------------------------------------------------------------
# Descriptor pass
# ---------------------------------------------------------------------------


def _descriptor_candidates(desc: MachineFaultRecipe | None) -> list[MachineFaultRecipe]:
    """Simpler descriptors to try, most aggressive first."""
    candidates: list[MachineFaultRecipe] = []
    if desc is None:
        return candidates
    if desc.when != "every":
        candidates.append(replace(desc, when="every", when_n=2))
    if desc.when == "nth" and desc.when_n > 2:
        candidates.append(replace(desc, when_n=2))
    if desc.mode != MODE_BREAKPOINT:
        candidates.append(replace(desc, mode=MODE_BREAKPOINT))
    if desc.op in ("xor", "or") and desc.operand and desc.operand & (desc.operand - 1):
        lowest = desc.operand & -desc.operand
        candidates.append(replace(desc, operand=lowest))
    if desc.op == "and":
        inverted = ~desc.operand & 0xFFFFFFFF
        if inverted and inverted & (inverted - 1):
            keep = inverted & -inverted
            candidates.append(replace(desc, operand=0xFFFFFFFF ^ keep))
    return candidates


def _pass_simplify_descriptor(prog: GenProgram, desc: MachineFaultRecipe | None,
                              still_fails: Predicate,
                              budget: _Budget) -> tuple[MachineFaultRecipe | None, bool]:
    changed = False
    progress = True
    while progress:
        progress = False
        for candidate in _descriptor_candidates(desc):
            if budget.spend() and still_fails(prog, candidate):
                desc = candidate
                changed = True
                progress = True
                break
    return desc, changed

"""Divergence artifacts: persist a failing case, replay it later.

When the fuzzer finds (and shrinks) a divergence it writes two files:

* ``divergence-<seed>-<n>.json`` — everything needed to reproduce the
  case: the (shrunken) MiniC source, the input pokes, the fault
  descriptor recipe, the pair of disagreeing configurations, both sides
  of the mismatch and the shrink statistics;
* ``divergence-<seed>-<n>.py`` — a standalone script that loads the
  sibling JSON and re-runs the comparison (``PYTHONPATH=src python
  divergence-....py``), exiting 1 while the divergence persists.

``repro verify replay <artifact.json>`` goes through the same
:func:`replay_artifact` entry point.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .generator import GenProgram
from .sampler import MachineFaultRecipe
from ..swifi.campaign import InputCase

#: Bump when the artifact layout changes incompatibly.
ARTIFACT_SCHEMA = 1

_REPRO_SCRIPT = '''\
#!/usr/bin/env python
"""Standalone replay for one repro.verify divergence artifact.

Run from the repository root with ``PYTHONPATH=src python {script_name}``.
Exits 1 while the divergence reproduces, 0 once it is fixed.
"""

import pathlib
import sys

from repro.verify.artifacts import replay_artifact

ARTIFACT = pathlib.Path(__file__).with_name({artifact_name!r})

if __name__ == "__main__":
    divergence = replay_artifact(ARTIFACT)
    if divergence is None:
        print("divergence no longer reproduces")
        sys.exit(0)
    print(divergence.summary())
    sys.exit(1)
'''


def _serialize_case(case: InputCase) -> dict:
    return {
        "case_id": case.case_id,
        "pokes": {name: value for name, value in case.pokes.items()},
    }


def write_artifact(directory: Path, *, ordinal: int, divergence, program: GenProgram,
                   descriptor: MachineFaultRecipe | None, case: InputCase,
                   shrink=None) -> list[Path]:
    """Persist one divergence; returns the written paths (json first)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = f"divergence-{program.seed}-{ordinal:03d}"
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "program": program.name,
        "seed": program.seed,
        "index": program.index,
        "source": program.render(),
        "statement_count": program.statement_count(),
        "case": _serialize_case(case),
        "descriptor": descriptor.to_dict() if descriptor is not None else None,
        "divergence": divergence.to_dict(),
        "shrink": shrink.to_dict() if shrink is not None else None,
    }
    json_path = directory / f"{stem}.json"
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    script_path = directory / f"{stem}.py"
    script_path.write_text(
        _REPRO_SCRIPT.format(script_name=script_path.name,
                             artifact_name=json_path.name)
    )
    return [json_path, script_path]


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class LoadedArtifact:
    """A parsed divergence artifact, ready to re-run."""

    payload: dict
    source: str
    case: InputCase
    descriptor: MachineFaultRecipe | None
    config_a: "MatrixConfig"
    config_b: "MatrixConfig"
    tier: str


def load_artifact(path: str | Path) -> LoadedArtifact:
    from .oracle import MatrixConfig

    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(f"unsupported artifact schema {schema!r} "
                         f"(expected {ARTIFACT_SCHEMA})")
    raw_case = payload["case"]
    case = InputCase(raw_case["case_id"], raw_case["pokes"], b"")
    raw_descriptor = payload.get("descriptor")
    descriptor = (MachineFaultRecipe.from_dict(raw_descriptor)
                  if raw_descriptor is not None else None)
    divergence = payload["divergence"]
    return LoadedArtifact(
        payload=payload,
        source=payload["source"],
        case=case,
        descriptor=descriptor,
        config_a=MatrixConfig(**divergence["config_a"]),
        config_b=MatrixConfig(**divergence["config_b"]),
        tier=divergence["tier"],
    )


def replay_artifact(path: str | Path):
    """Re-run an artifact's comparison; the live Divergence, or None.

    Returns ``None`` when the recorded configurations now agree (the bug
    is fixed), and the fresh :class:`repro.verify.oracle.Divergence` when
    they still disagree.  Raises :class:`SamplerError` if the recorded
    fault descriptor no longer realizes against the recorded source.
    """
    from .fuzzer import (
        GOLDEN_BUDGET,
        _binary_fingerprint,
        _golden_console,
        _observable_state,
        _opt_divergence_fields,
    )
    from .oracle import DifferentialOracle, Divergence, default_budget, run_state
    from ..lang import compile_source
    from ..machine.machine import ENGINE_SIMPLE

    artifact = load_artifact(path)
    compiled = compile_source(artifact.source, artifact.payload["program"])
    golden = run_state(compiled.executable, None, artifact.case,
                       budget=GOLDEN_BUDGET, engine=ENGINE_SIMPLE)
    if artifact.tier == "opt":
        # The two sides ran different binaries of the same source; the
        # replay recompiles both and re-compares the observable contract.
        level = artifact.config_b.opt
        budget = default_budget(golden.instructions)
        try:
            recompiled = compile_source(
                artifact.source, artifact.payload["program"], opt_level=level
            )
        except Exception as error:
            return Divergence(
                tier="opt", program=artifact.payload["program"],
                fault_id="golden", case_id=artifact.case.case_id,
                config_a=artifact.config_a, config_b=artifact.config_b,
                detail_a=_binary_fingerprint(compiled),
                detail_b={"opt_level": level, "compile_error": str(error)},
                fields=["compile"],
            )
        engine = artifact.config_b.engine
        base = _observable_state(compiled, artifact.case, budget=budget,
                                 engine=engine)
        other = _observable_state(recompiled, artifact.case, budget=budget,
                                  engine=engine)
        fields = _opt_divergence_fields(base, other)
        if not fields:
            return None
        return Divergence(
            tier="opt", program=artifact.payload["program"],
            fault_id="golden", case_id=artifact.case.case_id,
            config_a=artifact.config_a, config_b=artifact.config_b,
            detail_a={**base, **_binary_fingerprint(compiled)},
            detail_b={**other, **_binary_fingerprint(recompiled)},
            fields=fields,
        )
    if artifact.config_b.opt != 0:
        compiled = compile_source(artifact.source, artifact.payload["program"],
                                  opt_level=artifact.config_b.opt)
        golden = run_state(compiled.executable, None, artifact.case,
                           budget=GOLDEN_BUDGET, engine=ENGINE_SIMPLE)
    spec = None
    if artifact.descriptor is not None:
        spec = artifact.descriptor.realize(compiled, golden.instructions)
    case = InputCase(artifact.case.case_id, artifact.case.pokes,
                     _golden_console(compiled, artifact.case.pokes))
    budget = default_budget(golden.instructions)
    if artifact.tier == "state":
        oracle = DifferentialOracle(
            compiled, [case], matrix=[],
            state_engines=(artifact.config_a.engine, artifact.config_b.engine),
        )
        divergence, _ = oracle.check_state(spec, case, budget=budget)
        return divergence
    oracle = DifferentialOracle(compiled, [case],
                                matrix=[artifact.config_a, artifact.config_b])
    divergences = oracle.check_records([spec] if spec is not None else [])
    return divergences[0] if divergences else None

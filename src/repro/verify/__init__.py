"""repro.verify — the differential verification subsystem.

A seeded random-program generator over the MiniC subset, a randomized
fault sampler over the Table-3 error classes and raw SWIFI corruptions,
and a differential oracle that runs every (program, input, fault) case
across the {engine} x {snapshot} x {jobs} configuration matrix asserting
bit-identical results.  Divergences are minimized automatically and
persisted as replayable artifacts.  ``repro verify fuzz`` is the CLI
entry point; :func:`run_fuzz` the programmatic one.
"""

from .artifacts import ARTIFACT_SCHEMA, load_artifact, replay_artifact, write_artifact
from .fuzzer import FuzzConfig, FuzzReport, run_fuzz
from .generator import GenProgram, generate_pokes, generate_program
from .oracle import (
    DifferentialOracle,
    Divergence,
    MatrixConfig,
    StateDigest,
    full_matrix,
    run_state,
)
from .sampler import (
    FaultDescriptor,
    MachineFaultRecipe,
    SamplerError,
    sample_descriptors,
)
from .shrinker import ShrinkResult, shrink_case

__all__ = [
    "ARTIFACT_SCHEMA",
    "DifferentialOracle",
    "Divergence",
    "FaultDescriptor",
    "FuzzConfig",
    "FuzzReport",
    "GenProgram",
    "MachineFaultRecipe",
    "MatrixConfig",
    "SamplerError",
    "ShrinkResult",
    "StateDigest",
    "full_matrix",
    "generate_pokes",
    "generate_program",
    "load_artifact",
    "replay_artifact",
    "run_fuzz",
    "run_state",
    "sample_descriptors",
    "shrink_case",
    "write_artifact",
]

"""Randomized fault sampling for the differential fuzzer.

A sampled fault is stored as a :class:`MachineFaultRecipe` — a small,
JSON-serializable *recipe* rather than a concrete :class:`MachineFault`.
The recipe is part of the unified :class:`repro.swifi.InjectionSpec`
hierarchy (tier ``"machine"``); ``FaultDescriptor`` survives as a
deprecated constructor shim.
The recipe names things structurally ("the k-th Table-3 checking
location", "the j-th divw/modw word in the code segment", "the global
``gout`` plus byte offset 8") and is *realized* against a compiled
program on demand.  That indirection is what lets the shrinker edit the
program aggressively: addresses shift after every edit, but ordinals wrap
(``index % len(candidates)``) so a descriptor stays realizable on any
shrunken variant, and the divergence predicate remains meaningful.

Two descriptor kinds:

* ``table3`` — drive :class:`repro.emulation.FaultLocator` exactly as the
  §6.3 rule engine does, sampling one error type at one assignment or
  checking location (the paper's injected error classes);
* ``raw`` — classic SWIFI corruption: a trigger (opcode fetch on a
  weighted code-word category, data access on a global, or temporal) plus
  one corruption action (fetched-word/register/code-word/memory-word/
  load/store bit operations).

Sampling is weighted toward the historically risky machine surfaces: the
``divw``/``modw`` trap accounting, loads/stores near memory-range edges,
and trap-insertion mode (which the snapshot fast path must refuse).
"""

from __future__ import annotations

import hashlib
import json
import random
import warnings
from dataclasses import asdict, dataclass, replace

from ..emulation import ASSIGNMENT_CLASS, CHECKING_CLASS, NotEmulableError
from ..emulation.locator import FaultLocator
from ..isa.encoding import (
    OP_LBZ,
    OP_LWZ,
    OP_STB,
    OP_STW,
    OP_XO,
    XO_DIVW,
    XO_MODW,
)
from ..swifi.faults import (
    Action,
    Arithmetic,
    BitAnd,
    BitFlip,
    BitOr,
    CodeWord,
    Corruption,
    DataAccess,
    FetchedWord,
    LoadValue,
    MachineFault,
    MemoryWord,
    MODE_BREAKPOINT,
    MODE_TRAP,
    OpcodeFetch,
    RegisterTarget,
    SetValue,
    StoreValue,
    Temporal,
    WhenPolicy,
)
from ..swifi.spec import InjectionSpec, LegacyCampaignAPIWarning, TIER_MACHINE

_MEM_OPCODES = (OP_LWZ, OP_STW, OP_LBZ, OP_STB)


class SamplerError(ValueError):
    """A descriptor that cannot be realized against any program."""


# ---------------------------------------------------------------------------
# Descriptors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MachineFaultRecipe(InjectionSpec):
    """A portable recipe for one machine-tier fault (see module docstring).

    Fields are a flat union over both kinds; unused fields stay at their
    defaults so ``asdict`` round-trips cleanly through JSON.
    Realization (:meth:`realize`) is the single ordinal-wrapping
    implementation — the legacy ``FaultDescriptor`` shim inherits it
    rather than keeping a private copy.
    """

    kind: str                     # "table3" | "raw"
    # -- table3 ----------------------------------------------------------
    klass: str = ""               # assignment | checking
    location_index: int = 0       # ordinal into locator.locations(klass)
    fault_offset: int = 0         # ordinal into that location's error types
    # -- raw -------------------------------------------------------------
    trigger: str = ""             # "fetch" | "data" | "temporal"
    category: str = "any"         # fetch-trigger weighting: any|div|mem
    trigger_index: int = 0        # code-word / global-word ordinal
    on_load: bool = True
    on_store: bool = False
    instret_permille: int = 0     # temporal: fraction of the golden run
    target: str = "fetched"       # fetched|register|code|memory|load|store
    register: int = 3
    op: str = "xor"               # xor|and|or|add|set
    operand: int = 1
    # -- shared ----------------------------------------------------------
    mode: str = MODE_BREAKPOINT
    when: str = "every"           # every|once|nth
    when_n: int = 2
    seed: int = 0                 # rng stream for table3 random-value types

    tier = TIER_MACHINE

    # -- identity --------------------------------------------------------

    def fault_id(self) -> str:
        digest = hashlib.sha256(
            json.dumps(asdict(self), sort_keys=True).encode("utf-8")
        ).hexdigest()[:12]
        return f"vf-{self.kind}-{digest}"

    @property
    def spec_id(self) -> str:
        return self.fault_id()

    def describe(self) -> str:
        if self.kind == "table3":
            return (f"{self.fault_id()}: table3 {self.klass} "
                    f"location#{self.location_index} fault#{self.fault_offset}")
        return (f"{self.fault_id()}: raw {self.trigger}/{self.target} "
                f"{self.op} {self.operand:#x}")

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(payload: dict) -> "MachineFaultRecipe":
        return MachineFaultRecipe(**payload)

    # -- realization -----------------------------------------------------

    def realize(self, compiled, golden_instructions: int) -> MachineFault:
        """Build the concrete :class:`MachineFault` for *compiled*.

        Ordinals wrap modulo the candidate count so the descriptor stays
        realizable on shrunken program variants.  Raises
        :class:`SamplerError` when the program offers no candidate at all
        (e.g. a shrunk program with no checking locations left).
        """
        if self.kind == "table3":
            spec = self._realize_table3(compiled)
        elif self.kind == "raw":
            spec = self._realize_raw(compiled, golden_instructions)
        else:
            raise SamplerError(f"unknown descriptor kind {self.kind!r}")
        return replace(spec, fault_id=self.fault_id())

    def _realize_table3(self, compiled) -> MachineFault:
        locator = FaultLocator(compiled)
        locations = locator.locations(self.klass)
        if not locations:
            raise SamplerError(f"no {self.klass} locations in {compiled.name}")
        location = locations[self.location_index % len(locations)]
        rng = random.Random(f"repro.verify.table3:{self.seed}")
        try:
            faults = locator.faults_for_location(
                location, rng=rng, mode=self.mode, when=self._when_policy()
            )
        except NotEmulableError as error:
            raise SamplerError(str(error)) from None
        if not faults:
            raise SamplerError(f"no faults at location {location!r}")
        return faults[self.fault_offset % len(faults)]

    def _realize_raw(self, compiled, golden_instructions: int) -> MachineFault:
        executable = compiled.executable
        code_words = _decode_code_words(executable)
        action = self._action()
        when = self._when_policy()
        if self.trigger == "temporal":
            if isinstance(action.location, FetchedWord):
                action = Action(RegisterTarget(self.register), action.corruption)
            action = self._fill_address(action, executable, code_words)
            at = max(1, (golden_instructions * self.instret_permille) // 1000)
            return MachineFault("raw", Temporal(at), (action,), when=when,
                             mode=MODE_BREAKPOINT)
        if self.trigger == "data":
            if isinstance(action.location, FetchedWord):
                action = Action(LoadValue(), action.corruption)
            action = self._fill_address(action, executable, code_words)
            address = self._data_address(executable)
            return MachineFault(
                "raw", DataAccess(address, on_load=self.on_load or not self.on_store,
                                  on_store=self.on_store),
                (action,), when=when, mode=MODE_BREAKPOINT,
            )
        assert self.trigger == "fetch"
        candidates = _fetch_candidates(code_words, self.category)
        index = candidates[self.trigger_index % len(candidates)]
        address = executable.code_base + 4 * index
        if isinstance(action.location, (CodeWord, MemoryWord)):
            if self.target == "memory":
                action = Action(MemoryWord(self._data_address(executable)),
                                action.corruption)
            else:
                # Self-corrupting instruction: persistent rewrite of the
                # very word whose fetch triggered the fault.
                action = Action(CodeWord(address), action.corruption)
        return MachineFault("raw", OpcodeFetch(address), (action,), when=when,
                         mode=self.mode)

    def _fill_address(self, action: Action, executable, code_words: list[int]) -> Action:
        """Pin placeholder code/memory-word actions to a concrete address."""
        if not isinstance(action.location, (CodeWord, MemoryWord)):
            return action
        if self.target == "memory":
            return Action(MemoryWord(self._data_address(executable)), action.corruption)
        index = self.trigger_index % max(1, len(code_words))
        return Action(CodeWord(executable.code_base + 4 * index), action.corruption)

    def _when_policy(self) -> WhenPolicy:
        if self.when == "once":
            return WhenPolicy.once()
        if self.when == "nth":
            return WhenPolicy.nth(max(1, self.when_n))
        return WhenPolicy.every()

    def _corruption(self) -> Corruption:
        if self.op == "xor":
            return BitFlip(self.operand)
        if self.op == "and":
            return BitAnd(self.operand)
        if self.op == "or":
            return BitOr(self.operand)
        if self.op == "add":
            return Arithmetic(self.operand)
        if self.op == "set":
            return SetValue(self.operand)
        raise SamplerError(f"unknown corruption op {self.op!r}")

    def _action(self) -> Action:
        corruption = self._corruption()
        if self.target == "fetched":
            return Action(FetchedWord(), corruption)
        if self.target == "register":
            return Action(RegisterTarget(self.register), corruption)
        if self.target == "load":
            return Action(LoadValue(), corruption)
        if self.target == "store":
            return Action(StoreValue(), corruption)
        if self.target in ("code", "memory"):
            # The concrete address is filled in at realization time.
            return Action(CodeWord(0), corruption)
        raise SamplerError(f"unknown action target {self.target!r}")

    def _data_address(self, executable) -> int:
        symbols = sorted(
            (name, address) for name, address in executable.symbols.items()
            if not name.startswith(".") and address >= 0x0010_0000
        )
        if not symbols:
            raise SamplerError("no data symbols to target")
        name, base = symbols[self.trigger_index % len(symbols)]
        return base + 4 * (self.operand % 4 if name.endswith("arr") else 0)


class FaultDescriptor(MachineFaultRecipe):
    """Deprecated pre-tier spelling of :class:`MachineFaultRecipe`.

    Constructing one works exactly like ``MachineFaultRecipe`` (identical
    fields, identical ``fault_id`` digest, the same inherited
    :meth:`realize`) but emits :class:`LegacyCampaignAPIWarning`.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "FaultDescriptor is the legacy name of the machine-tier fault "
            "recipe; construct repro.verify.MachineFaultRecipe instead",
            LegacyCampaignAPIWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def _decode_code_words(executable) -> list[int]:
    code = executable.code
    return [int.from_bytes(code[k:k + 4], "big") for k in range(0, len(code), 4)]


def _fetch_candidates(code_words: list[int], category: str) -> list[int]:
    """Code-word indices for one weighting category (wrapping fallback)."""
    if category == "div":
        picks = [
            k for k, word in enumerate(code_words)
            if word >> 26 == OP_XO and word & 0x7FF in (XO_DIVW, XO_MODW)
        ]
        if picks:
            return picks
    if category == "mem":
        picks = [k for k, word in enumerate(code_words) if word >> 26 in _MEM_OPCODES]
        if picks:
            return picks
    return list(range(len(code_words)))


# ---------------------------------------------------------------------------
# Sampling
# ---------------------------------------------------------------------------

#: (kind-weighted) sampling plan: roughly half Table-3 rule faults, half
#: raw SWIFI corruptions, with the raw half biased toward the div/mem
#: fetch categories and a sprinkle of trap-mode and temporal cases.
def sample_descriptors(rng: random.Random, count: int) -> list[MachineFaultRecipe]:
    """Draw *count* distinct fault descriptors from the seeded stream."""
    seen: set[str] = set()
    out: list[MachineFaultRecipe] = []
    attempts = 0
    while len(out) < count and attempts < count * 20:
        attempts += 1
        descriptor = _sample_one(rng)
        fid = descriptor.fault_id()
        if fid in seen:
            continue
        seen.add(fid)
        out.append(descriptor)
    return out


def _sample_one(rng: random.Random) -> MachineFaultRecipe:
    if rng.random() < 0.45:
        return MachineFaultRecipe(
            kind="table3",
            klass=rng.choice((ASSIGNMENT_CLASS, CHECKING_CLASS)),
            location_index=rng.randrange(64),
            fault_offset=rng.randrange(8),
            mode=MODE_TRAP if rng.random() < 0.2 else MODE_BREAKPOINT,
            when=rng.choice(("every", "every", "every", "once", "nth")),
            when_n=rng.randint(2, 4),
            seed=rng.randrange(1 << 30),
        )
    trigger = rng.choice(("fetch", "fetch", "fetch", "data", "temporal"))
    target = {
        "fetch": rng.choice(("fetched", "fetched", "register", "code", "store", "load")),
        "data": rng.choice(("load", "store", "register", "memory")),
        "temporal": rng.choice(("register", "code", "memory")),
    }[trigger]
    op = rng.choice(("xor", "xor", "and", "or", "add", "set"))
    if op in ("xor", "and", "or"):
        operand = 1 << rng.randrange(32)
        if op == "and":
            operand = 0xFFFFFFFF ^ operand
        if rng.random() < 0.3:
            operand |= 1 << rng.randrange(32)
    elif op == "add":
        operand = rng.choice((1, -1, 2, -2, 4, 0x100))
    else:
        operand = rng.getrandbits(32)
    return MachineFaultRecipe(
        kind="raw",
        trigger=trigger,
        category=rng.choice(("div", "mem", "mem", "any")),
        trigger_index=rng.randrange(4096),
        on_load=rng.random() < 0.8,
        on_store=rng.random() < 0.4,
        instret_permille=rng.randint(1, 999),
        target=target,
        register=rng.choice((3, 4, 5, 6, 7, 1, 31)),
        op=op,
        operand=operand & 0xFFFFFFFF if op != "add" else operand,
        mode=MODE_TRAP if trigger == "fetch" and rng.random() < 0.25 else MODE_BREAKPOINT,
        when=rng.choice(("every", "every", "once", "nth")),
        when_n=rng.randint(2, 5),
        seed=rng.randrange(1 << 30),
    )

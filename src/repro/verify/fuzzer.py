"""The fuzz campaign driver: ``repro verify fuzz`` lives here.

One fuzz campaign is a pure function of its seed.  Per generated
program the driver:

1. generates the program and a couple of input data sets
   (:mod:`repro.verify.generator`), computing each input's golden console
   output with a fault-free run;
2. checks *golden conformance* — the fault-free run itself must produce a
   bit-identical :class:`StateDigest` on every engine;
3. realizes a batch of sampled fault descriptors
   (:mod:`repro.verify.sampler`) and runs the state-tier differential for
   every (fault, input) pair;
4. runs the record-tier differential: the whole mini-campaign under every
   {engine} x {snapshot} x {jobs} configuration, compared record by
   record against the base configuration.

On the first divergence for a program the shrinker
(:mod:`repro.verify.shrinker`) minimizes the case and a replayable
artifact is written (:mod:`repro.verify.artifacts`).  The campaign stops
after ``cases`` state-tier comparisons, when the wall-clock budget runs
out, or after ``max_divergences`` distinct failures.

``FuzzConfig(tier="source")`` fuzzes the source tier instead: the same
generated programs are mutated through :mod:`repro.srcfi` operators,
every mutant binary must be engine-conformant (cross-engine state
digests), reverting the mutation must restore a bit-identical binary,
and the record tier compares source-campaign records across the
{engine} x {jobs} matrix (snapshot and planner axes are machine-only).
Source-tier divergences are reported without shrinking — the shrinker
and replay artifacts are built around machine fault descriptors.

With ``journal_dir`` set, every cleanly finished program appends one
JSONL entry; re-running with ``resume=True`` skips those programs while
keeping their counts, so a killed fuzz campaign picks up where it
stopped.  Programs that diverged are never journaled — they re-run on
resume so shrinks and artifacts are regenerated.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .artifacts import write_artifact
from .generator import generate_pokes, generate_program, GenProgram
from .oracle import (
    BASE_CONFIG,
    DEFAULT_JOBS_AXIS,
    DifferentialOracle,
    Divergence,
    MatrixConfig,
    default_budget,
    full_matrix,
    run_state,
)
from .sampler import MachineFaultRecipe, SamplerError, sample_descriptors
from .shrinker import ShrinkResult, shrink_case
from ..lang import compile_source
from ..machine.machine import ENGINE_SIMPLE, ENGINES
from ..persist import trim_partial_tail
from ..swifi.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignRunner,
    InputCase,
)
from ..swifi.spec import TIER_MACHINE, TIER_SOURCE, TIERS

#: Generous budget for the very first fault-free run of a fresh program
#: (before we know its golden instruction count).
GOLDEN_BUDGET = 2_000_000

#: JSONL journal of cleanly finished programs (``journal_dir``).
FUZZ_JOURNAL = "fuzz_journal.jsonl"


@dataclass
class FuzzConfig:
    """Knobs for one fuzz campaign (all defaults CI-friendly)."""

    seed: int = 0
    cases: int = 200                 # state-tier comparisons to run
    time_budget: float | None = None  # wall-clock seconds, None = unlimited
    faults_per_program: int = 8
    inputs_per_program: int = 2
    record_tier: bool = True         # run the full-matrix campaign tier
    jobs_axis: tuple[int, ...] = DEFAULT_JOBS_AXIS
    opt_axis: tuple[int, ...] = (0,)  # compiler levels; (0, 1) adds O0-vs-O1
    shrink: bool = True
    max_shrink_checks: int = 400
    max_divergences: int = 5         # stop fuzzing after this many failures
    artifact_dir: str | Path | None = None
    progress: Callable[[str], None] | None = None
    tier: str = TIER_MACHINE         # injection tier under test
    journal_dir: str | Path | None = None
    resume: bool = False             # skip journaled programs
    trace: bool = False              # accepted for CLI uniformity; no spans here


@dataclass
class FuzzReport:
    """What one fuzz campaign did and what it found."""

    seed: int
    programs: int = 0
    resumed_programs: int = 0
    state_cases: int = 0
    opt_cases: int = 0               # O0-vs-O1 observable comparisons
    record_campaigns: int = 0
    total_runs: int = 0
    skipped_faults: int = 0
    elapsed: float = 0.0
    stopped_early: bool = False
    divergences: list[Divergence] = field(default_factory=list)
    shrinks: list[ShrinkResult] = field(default_factory=list)
    artifacts: list[Path] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.divergences

    def summary_lines(self) -> list[str]:
        lines = [
            f"verify fuzz: seed={self.seed} programs={self.programs} "
            f"state-cases={self.state_cases} record-campaigns={self.record_campaigns} "
            f"runs={self.total_runs} elapsed={self.elapsed:.1f}s"
            + (" (stopped early: budget)" if self.stopped_early else ""),
        ]
        if self.resumed_programs:
            lines.append(
                f"  resumed past {self.resumed_programs} journaled programs"
            )
        if self.opt_cases:
            lines.append(
                f"  compiler axis: {self.opt_cases} O0-vs-O1 observable "
                "comparisons"
            )
        if self.skipped_faults:
            lines.append(f"  skipped {self.skipped_faults} unrealizable fault descriptors")
        if not self.divergences:
            lines.append("  no divergences: all configurations agree bit-for-bit")
        for index, divergence in enumerate(self.divergences):
            lines.append(f"  DIVERGENCE[{index}] {divergence.summary()}")
        for shrink in self.shrinks:
            lines.append(
                f"  shrunk {shrink.statements_before} -> "
                f"{shrink.statements_after} statements "
                f"({shrink.checks} checks, {shrink.rounds} rounds)"
            )
        for artifact in self.artifacts:
            lines.append(f"  artifact: {artifact}")
        return lines


class _Clock:
    def __init__(self, budget: float | None) -> None:
        self.start = time.monotonic()
        self.budget = budget

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.start

    @property
    def expired(self) -> bool:
        return self.budget is not None and self.elapsed >= self.budget


def _emit(config: FuzzConfig, message: str) -> None:
    if config.progress is not None:
        config.progress(message)


def build_cases(compiled, seed: int, index: int, count: int) -> list[InputCase]:
    """Seeded input cases with golden console output as the oracle."""
    from ..machine.loader import boot

    rng = random.Random(f"repro.verify.inputs:{seed}:{index}")
    cases: list[InputCase] = []
    for k in range(count):
        pokes = generate_pokes(rng)
        machine = boot(compiled.executable, inputs=dict(pokes),
                       engine=ENGINE_SIMPLE)
        result = machine.run(GOLDEN_BUDGET)
        if result.status != "exited" or result.exit_code != 0:
            raise CampaignError(
                f"{compiled.name}: generated program did not exit cleanly "
                f"fault-free (status={result.status})"
            )
        cases.append(InputCase(f"in{k}", pokes, bytes(machine.console)))
    return cases


def _golden_console(compiled, pokes) -> bytes:
    from ..machine.loader import boot

    machine = boot(compiled.executable, inputs=dict(pokes), engine=ENGINE_SIMPLE)
    machine.run(GOLDEN_BUDGET)
    return bytes(machine.console)


def realize_faults(compiled, descriptors: list[MachineFaultRecipe],
                   golden_instructions: int):
    """(spec, descriptor) pairs for the realizable subset, skip count."""
    realized = []
    skipped = 0
    for descriptor in descriptors:
        try:
            spec = descriptor.realize(compiled, golden_instructions)
        except SamplerError:
            skipped += 1
            continue
        realized.append((spec, descriptor))
    return realized, skipped


# ---------------------------------------------------------------------------
# Journal: cleanly finished programs, skipped on resume
# ---------------------------------------------------------------------------


def _open_journal(config: FuzzConfig) -> tuple[Path | None, dict[int, dict]]:
    if config.journal_dir is None:
        return None, {}
    directory = Path(config.journal_dir)
    directory.mkdir(parents=True, exist_ok=True)
    journal = directory / FUZZ_JOURNAL
    # Repair a crash-torn tail before this campaign's first append would
    # fuse onto it; the resume reader below then never sees a torn line.
    trim_partial_tail(journal)
    done: dict[int, dict] = {}
    if config.resume and journal.exists():
        with open(journal, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail write of a killed campaign
                if (entry.get("type") == "program"
                        and entry.get("seed") == config.seed
                        and entry.get("tier") == config.tier):
                    done[int(entry["index"])] = entry
    return journal, done


def _journal_program(journal: Path, config: FuzzConfig, index: int,
                     report: FuzzReport, before: tuple) -> None:
    entry = {
        "type": "program",
        "seed": config.seed,
        "tier": config.tier,
        "index": index,
        "state_cases": report.state_cases - before[0],
        "record_campaigns": report.record_campaigns - before[1],
        "runs": report.total_runs - before[2],
        "skipped": report.skipped_faults - before[3],
        "opt_cases": report.opt_cases - before[5],
    }
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry) + "\n")


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run one seeded fuzz campaign; see the module docstring."""
    if config.tier not in TIERS:
        raise CampaignError(
            f"tier must be one of {TIERS}, got {config.tier!r}"
        )
    if 0 not in config.opt_axis or any(
            level not in (0, 1) for level in config.opt_axis):
        raise CampaignError(
            "opt_axis levels must be drawn from (0, 1) and include the "
            f"O0 baseline, got {config.opt_axis!r}"
        )
    report = FuzzReport(seed=config.seed)
    clock = _Clock(config.time_budget)
    journal, done = _open_journal(config)
    index = 0
    while report.state_cases < config.cases:
        if clock.expired:
            report.stopped_early = True
            break
        if len(report.divergences) >= config.max_divergences:
            break
        if index in done:
            entry = done[index]
            report.programs += 1
            report.resumed_programs += 1
            report.state_cases += entry.get("state_cases", 0)
            report.record_campaigns += entry.get("record_campaigns", 0)
            report.total_runs += entry.get("runs", 0)
            report.skipped_faults += entry.get("skipped", 0)
            report.opt_cases += entry.get("opt_cases", 0)
            index += 1
            continue
        before = (report.state_cases, report.record_campaigns,
                  report.total_runs, report.skipped_faults,
                  len(report.divergences), report.opt_cases)
        if config.tier == TIER_SOURCE:
            _fuzz_source_program(config, report, clock, index)
        else:
            _fuzz_machine_program(config, report, clock, index)
        if journal is not None and len(report.divergences) == before[4]:
            _journal_program(journal, config, index, report, before)
        _emit(config, f"program {index}: {report.state_cases}/{config.cases} "
                      f"state cases, {len(report.divergences)} divergences")
        index += 1
    report.elapsed = clock.elapsed
    return report


# ---------------------------------------------------------------------------
# Compiler axis: the same program at O0 and O1 must behave identically
# ---------------------------------------------------------------------------

#: What "behave identically" means across opt levels: the two binaries
#: are different by design (fewer instructions, different registers), so
#: only the observable contract is compared — never register files,
#: memory images or retired counts.
_OBSERVABLE_FIELDS = ("status", "exit_code", "console")


def _binary_fingerprint(compiled) -> dict:
    """Identify which binary a divergence side ran (for artifacts)."""
    code = bytes(compiled.executable.code)
    return {
        "opt_level": compiled.opt_level,
        "code_sha256": hashlib.sha256(code).hexdigest(),
        "code_words": len(code) // 4,
    }


def _observable_state(compiled, case: InputCase, *, budget: int,
                      engine: str) -> dict:
    """One fault-free run reduced to the observable contract."""
    from ..machine.loader import boot

    machine = boot(compiled.executable, inputs=dict(case.pokes), engine=engine)
    result = machine.run(budget)
    return {
        "status": result.status,
        "exit_code": result.exit_code,
        "console": bytes(machine.console).hex(),
    }


def _opt_divergence_fields(a: dict, b: dict) -> list[str]:
    return [key for key in _OBSERVABLE_FIELDS if a[key] != b[key]]


def _check_opt_axis(config: FuzzConfig, report: FuzzReport, clock: _Clock,
                    program: GenProgram, compiled, cases: list[InputCase],
                    budget: int):
    """Compile at every extra opt level; compare observables per engine.

    Returns ``(binaries, diverged)`` where *binaries* maps each extra
    level to its compiled program (for the O1 record tier) and *diverged*
    says whether any comparison failed.  Both sides of an opt divergence
    carry the fingerprint of the binary they ran, so artifacts record
    which pair of machine codes disagreed.
    """
    binaries = {}
    diverged = False
    for level in config.opt_axis:
        if level == 0 or level in binaries or diverged:
            continue
        try:
            recompiled = compile_source(program.render(), program.name,
                                        opt_level=level)
        except Exception as error:
            divergence = Divergence(
                tier="opt", program=program.name, fault_id="golden",
                case_id=cases[0].case_id,
                config_a=MatrixConfig(),
                config_b=MatrixConfig(opt=level),
                detail_a=_binary_fingerprint(compiled),
                detail_b={"opt_level": level, "compile_error": str(error)},
                fields=["compile"],
            )
            _handle_divergence(config, report, program, None, cases[0],
                               cases, divergence)
            diverged = True
            continue
        binaries[level] = recompiled
        for case in cases:
            if clock.expired or diverged:
                break
            for engine in ENGINES:
                base = _observable_state(compiled, case, budget=budget,
                                         engine=engine)
                other = _observable_state(recompiled, case, budget=budget,
                                          engine=engine)
                report.opt_cases += 1
                report.state_cases += 1
                report.total_runs += 2
                fields = _opt_divergence_fields(base, other)
                if fields:
                    divergence = Divergence(
                        tier="opt", program=program.name, fault_id="golden",
                        case_id=case.case_id,
                        config_a=MatrixConfig(engine=engine),
                        config_b=MatrixConfig(engine=engine, opt=level),
                        detail_a={**base, **_binary_fingerprint(compiled)},
                        detail_b={**other, **_binary_fingerprint(recompiled)},
                        fields=fields,
                    )
                    _handle_divergence(config, report, program, None, case,
                                       cases, divergence)
                    diverged = True
                    break
    return binaries, diverged


# ---------------------------------------------------------------------------
# Machine tier: sampled descriptors against the full configuration matrix
# ---------------------------------------------------------------------------


def _fuzz_machine_program(config: FuzzConfig, report: FuzzReport,
                          clock: _Clock, index: int) -> None:
    matrix = full_matrix(config.jobs_axis) if config.record_tier else []
    program = generate_program(config.seed, index)
    compiled = compile_source(program.render(), program.name)
    cases = build_cases(compiled, config.seed, index, config.inputs_per_program)
    oracle = DifferentialOracle(compiled, cases, matrix=matrix)
    report.programs += 1
    program_diverged = False

    # -- golden conformance: no fault, every engine -----------------
    golden_instructions = 0
    for case in cases:
        divergence, digests = oracle.check_state(None, case, budget=GOLDEN_BUDGET)
        golden_instructions = max(
            golden_instructions, digests[ENGINE_SIMPLE].instructions
        )
        report.state_cases += 1
        if divergence is not None:
            _handle_divergence(config, report, program, None, case,
                               cases, divergence)
            program_diverged = True
            break
    budget = default_budget(golden_instructions)

    # -- compiler axis: O0 vs O1 on the observable contract ----------
    opt_binaries = {}
    if not program_diverged:
        opt_binaries, opt_diverged = _check_opt_axis(
            config, report, clock, program, compiled, cases, budget
        )
        program_diverged = program_diverged or opt_diverged

    # -- state tier: every realized fault on every input ------------
    faults = []
    if not program_diverged:
        rng = random.Random(f"repro.verify.faults:{config.seed}:{index}")
        descriptors = sample_descriptors(rng, config.faults_per_program)
        faults, skipped = realize_faults(compiled, descriptors,
                                         golden_instructions)
        report.skipped_faults += skipped
        for spec, descriptor in faults:
            for case in cases:
                if report.state_cases >= config.cases or clock.expired:
                    break
                divergence, _ = oracle.check_state(spec, case, budget=budget)
                report.state_cases += 1
                if divergence is not None:
                    _handle_divergence(config, report, program, descriptor,
                                       case, cases, divergence)
                    program_diverged = True
                    break
            if program_diverged:
                break

    # -- record tier: the full configuration matrix -----------------
    if config.record_tier and faults and not program_diverged \
            and not clock.expired:
        divergences = oracle.check_records([spec for spec, _ in faults])
        report.record_campaigns += len(matrix)
        program_diverged = program_diverged or bool(divergences)
        for divergence in divergences:
            descriptor = _descriptor_for(faults, divergence.fault_id)
            case = _case_for(cases, divergence.case_id)
            _handle_divergence(config, report, program, descriptor, case,
                               cases, divergence)
            if len(report.divergences) >= config.max_divergences:
                break

    # -- record tier again, on the optimized binary ------------------
    # The opt conformance above proved O0 and O1 print the same bytes;
    # this leg proves the whole {engine} x {snapshot} x {jobs} matrix
    # stays internally bit-identical when the target binary is the O1
    # one (different addresses, registers and instruction counts).
    if config.record_tier and opt_binaries and not program_diverged \
            and not clock.expired:
        for level, recompiled in sorted(opt_binaries.items()):
            golden = run_state(recompiled.executable, None, cases[0],
                               budget=GOLDEN_BUDGET, engine=ENGINE_SIMPLE)
            rng = random.Random(
                f"repro.verify.faults:{config.seed}:{index}:O{level}"
            )
            descriptors = sample_descriptors(rng, config.faults_per_program)
            opt_faults, skipped = realize_faults(recompiled, descriptors,
                                                 golden.instructions)
            report.skipped_faults += skipped
            if not opt_faults:
                continue
            opt_oracle = DifferentialOracle(recompiled, cases, matrix=matrix)
            divergences = opt_oracle.check_records(
                [spec for spec, _ in opt_faults]
            )
            report.record_campaigns += len(matrix)
            report.total_runs += opt_oracle.runs
            for divergence in divergences:
                divergence = dataclasses.replace(
                    divergence,
                    config_a=dataclasses.replace(divergence.config_a,
                                                 opt=level),
                    config_b=dataclasses.replace(divergence.config_b,
                                                 opt=level),
                )
                descriptor = _descriptor_for(opt_faults, divergence.fault_id)
                case = _case_for(cases, divergence.case_id)
                _handle_divergence(config, report, program, descriptor, case,
                                   cases, divergence)
                if len(report.divergences) >= config.max_divergences:
                    break

    report.total_runs += oracle.runs


# ---------------------------------------------------------------------------
# Source tier: every mutant binary must itself be engine-conformant
# ---------------------------------------------------------------------------


def _source_matrix(jobs_axis: tuple[int, ...]) -> list[MatrixConfig]:
    """The {engine} x {jobs} slice — snapshot/planner are machine-only."""
    return [
        MatrixConfig(engine=engine, jobs=jobs)
        for engine in ENGINES
        for jobs in jobs_axis
        if MatrixConfig(engine=engine, jobs=jobs) != BASE_CONFIG
    ]


def _source_records(compiled, cases, faults, matrix_config: MatrixConfig):
    runner = CampaignRunner(compiled, cases)
    result = runner.run(
        faults,
        config=CampaignConfig(
            jobs=matrix_config.jobs,
            engine=matrix_config.engine,
            tier=TIER_SOURCE,
        ),
    )
    return result.records


def _record_source_divergence(config: FuzzConfig, report: FuzzReport,
                              divergence: Divergence) -> None:
    """Append + announce; shrinker/artifacts are machine-descriptor tools."""
    report.divergences.append(divergence)
    _emit(config, f"divergence: {divergence.summary()}")


def _fuzz_source_program(config: FuzzConfig, report: FuzzReport,
                         clock: _Clock, index: int) -> None:
    from ..srcfi import (
        MutantCache,
        SourceLocator,
        SrcfiError,
        realize_source_fault,
        recompiled_identical,
    )

    program = generate_program(config.seed, index)
    compiled = compile_source(program.render(), program.name)
    cases = build_cases(compiled, config.seed, index, config.inputs_per_program)
    oracle = DifferentialOracle(compiled, cases, matrix=[])
    report.programs += 1

    # -- golden conformance: identical to the machine tier -----------
    golden_instructions = 0
    for case in cases:
        divergence, digests = oracle.check_state(None, case, budget=GOLDEN_BUDGET)
        golden_instructions = max(
            golden_instructions, digests[ENGINE_SIMPLE].instructions
        )
        report.state_cases += 1
        if divergence is not None:
            _record_source_divergence(config, report, divergence)
            report.total_runs += oracle.runs
            return
    budget = default_budget(golden_instructions)
    report.total_runs += oracle.runs

    # -- compiler axis: same observable contract at every opt level --
    _, opt_diverged = _check_opt_axis(
        config, report, clock, program, compiled, cases, budget
    )
    if opt_diverged:
        return

    # -- revert oracle: recompiling the unmutated tree is bit-identical
    if not recompiled_identical(compiled):
        _record_source_divergence(config, report, Divergence(
            tier="state", program=compiled.name, fault_id="revert",
            case_id="*", config_a=BASE_CONFIG, config_b=BASE_CONFIG,
            detail_a={"recompiled_identical": True},
            detail_b={"recompiled_identical": False},
            fields=["code", "data"],
        ))
        return

    # -- sample + realize source faults ------------------------------
    rng = random.Random(f"repro.verify.srcfaults:{config.seed}:{index}")
    all_faults = SourceLocator(compiled).source_faults()
    count = min(config.faults_per_program, len(all_faults))
    sampled = rng.sample(all_faults, count) if count else []
    mutants = []
    cache = MutantCache()
    for fault in sampled:
        try:
            mutants.append(realize_source_fault(compiled, fault, cache))
        except SrcfiError:
            report.skipped_faults += 1

    # -- state tier: cross-engine conformance of every mutant binary -
    program_diverged = False
    for mutant in mutants:
        mutant_oracle = DifferentialOracle(mutant.compiled, cases, matrix=[])
        for case in cases:
            if report.state_cases >= config.cases or clock.expired:
                break
            divergence, _ = mutant_oracle.check_state(None, case, budget=budget)
            report.state_cases += 1
            if divergence is not None:
                divergence = dataclasses.replace(
                    divergence, fault_id=mutant.fault.fault_id
                )
                _record_source_divergence(config, report, divergence)
                program_diverged = True
                break
        report.total_runs += mutant_oracle.runs
        if program_diverged:
            break

    # -- record tier: source campaigns across {engine} x {jobs} ------
    if config.record_tier and mutants and not program_diverged \
            and not clock.expired:
        faults = [mutant.fault for mutant in mutants]
        base_records = _source_records(compiled, cases, faults, BASE_CONFIG)
        report.total_runs += len(base_records)
        for matrix_config in _source_matrix(config.jobs_axis):
            records = _source_records(compiled, cases, faults, matrix_config)
            report.total_runs += len(records)
            report.record_campaigns += 1
            for divergence in oracle._compare(base_records, records,
                                              matrix_config):
                _record_source_divergence(config, report, divergence)
            if len(report.divergences) >= config.max_divergences:
                break


def _descriptor_for(faults, fault_id: str) -> MachineFaultRecipe | None:
    for spec, descriptor in faults:
        if spec.fault_id == fault_id:
            return descriptor
    return None


def _case_for(cases: list[InputCase], case_id: str) -> InputCase:
    for case in cases:
        if case.case_id == case_id:
            return case
    return cases[0]


# ---------------------------------------------------------------------------
# Divergence handling: shrink, then persist
# ---------------------------------------------------------------------------


def _handle_divergence(config: FuzzConfig, report: FuzzReport,
                       program: GenProgram, descriptor: MachineFaultRecipe | None,
                       case: InputCase, cases: list[InputCase],
                       divergence: Divergence) -> None:
    report.divergences.append(divergence)
    _emit(config, f"divergence: {divergence.summary()}")
    shrink = None
    final_program = program
    final_descriptor = descriptor
    if config.shrink:
        predicate = make_predicate(case, divergence)
        shrink = shrink_case(program, descriptor, predicate,
                             max_checks=config.max_shrink_checks)
        report.shrinks.append(shrink)
        final_program = shrink.program
        final_descriptor = shrink.descriptor
        _emit(config, f"shrunk to {shrink.statements_after} statements")
    if config.artifact_dir is not None:
        paths = write_artifact(
            Path(config.artifact_dir),
            ordinal=len(report.divergences) - 1,
            divergence=divergence,
            program=final_program,
            descriptor=final_descriptor,
            case=case,
            shrink=shrink,
        )
        report.artifacts.extend(paths)


def make_predicate(case: InputCase, divergence: Divergence):
    """The shrinker's "does this variant still diverge?" check.

    A candidate must compile, exit cleanly fault-free, keep the fault
    descriptor realizable, and reproduce a mismatch between the two
    configurations named by the original divergence.  Compile errors and
    unrealizable descriptors mean "does not fail" — the shrinker rolls
    that edit back.
    """

    def still_fails(program: GenProgram,
                    descriptor: MachineFaultRecipe | None) -> bool:
        try:
            compiled = compile_source(program.render(), program.name)
        except Exception:
            return False
        golden = run_state(compiled.executable, None, case,
                           budget=GOLDEN_BUDGET, engine=ENGINE_SIMPLE)
        if golden.status != "exited" or golden.exit_code != 0:
            return False
        budget = default_budget(golden.instructions)
        if divergence.tier == "opt":
            return _opt_still_fails(program, compiled, case, divergence,
                                    budget)
        if divergence.config_b.opt != 0:
            # A record-tier divergence found on the optimized binary:
            # rebuild the variant at that level before comparing configs.
            try:
                compiled = compile_source(program.render(), program.name,
                                          opt_level=divergence.config_b.opt)
            except Exception:
                return False
            golden = run_state(compiled.executable, None, case,
                               budget=GOLDEN_BUDGET, engine=ENGINE_SIMPLE)
            if golden.status != "exited" or golden.exit_code != 0:
                return False
            budget = default_budget(golden.instructions)
        spec = None
        if descriptor is not None:
            try:
                spec = descriptor.realize(compiled, golden.instructions)
            except SamplerError:
                return False
        replay_case = InputCase(case.case_id, case.pokes,
                                _golden_console(compiled, case.pokes))
        return check_configs(compiled, spec, replay_case,
                             divergence.config_a, divergence.config_b,
                             budget=budget, tier=divergence.tier)

    return still_fails


def _opt_still_fails(program: GenProgram, compiled, case: InputCase,
                     divergence: Divergence, budget: int) -> bool:
    """Does a shrink variant still reproduce an O0-vs-O1 divergence?

    A variant whose original failure was an O1 compile error still fails
    while O1 compilation keeps erroring; an observable-mismatch original
    still fails while the two binaries disagree on the recorded engine.
    """
    level = divergence.config_b.opt
    try:
        recompiled = compile_source(program.render(), program.name,
                                    opt_level=level)
    except Exception:
        return "compile" in divergence.fields
    if "compile" in divergence.fields:
        return False
    engine = divergence.config_b.engine
    replay_case = InputCase(case.case_id, case.pokes, b"")
    base = _observable_state(compiled, replay_case, budget=budget,
                             engine=engine)
    other = _observable_state(recompiled, replay_case, budget=budget,
                              engine=engine)
    return bool(_opt_divergence_fields(base, other))


def check_configs(compiled, spec, case: InputCase, config_a: MatrixConfig,
                  config_b: MatrixConfig, *, budget: int, tier: str) -> bool:
    """True when the two configurations disagree on this single case."""
    if tier == "state":
        oracle = DifferentialOracle(
            compiled, [case], matrix=[],
            state_engines=(config_a.engine, config_b.engine),
        )
        divergence, _ = oracle.check_state(spec, case, budget=budget)
        return divergence is not None
    oracle = DifferentialOracle(compiled, [case], matrix=[config_a, config_b])
    try:
        divergences = oracle.check_records([spec] if spec is not None else [])
    except CampaignError:
        return False
    return bool(divergences)

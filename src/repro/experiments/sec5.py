"""§5 — emulation of the actual software faults.

For every real fault: build its Xception-style emulation, run the
*corrected* binary with the injected errors on the same inputs as the
*faulty* binary, and compare outputs run by run ("if the results are the
same in both runs it means Xception do emulate the fault accurately").

Verdicts reproduce the paper's three categories:

* **A** — accurately emulable with plain breakpoint-register injection
  (assignment and checking faults);
* **B** — emulable only with tool extensions: the trigger addresses
  outnumber the two breakpoint registers, so breakpoint-mode arming
  fails and the emulation needs inserted traps (intrusive) or the
  proposed memory-patch facility (JB.team6's stack-shift fault);
* **C** — not emulable by any machine-level SWIFI tool (algorithm and
  function faults) — per the field data, ~44% of software faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..emulation.realfaults import NotEmulableError, RealFault
from ..machine.debug import DebugResourceError
from ..machine.loader import boot
from ..odc.field_data import FIELD_DISTRIBUTION, non_emulable_share
from ..odc.defect_types import DefectType
from ..swifi.injector import InjectionSession
from ..workloads import get_workload, real_faults
from .config import ExperimentConfig

CATEGORY_A = "A (emulable)"
CATEGORY_B = "B (needs tool extensions)"
CATEGORY_C = "C (not emulable)"


@dataclass
class Sec5Row:
    fault_id: str
    odc_type: DefectType
    category: str
    source_change: str
    paper_figure: str | None
    accuracy_by_mode: dict[str, float] = field(default_factory=dict)
    inputs_compared: int = 0
    not_emulable_reason: str | None = None
    breakpoint_error: str | None = None


@dataclass
class Sec5Result:
    rows: list[Sec5Row] = field(default_factory=list)

    def category_counts(self) -> dict[str, int]:
        counts = {CATEGORY_A: 0, CATEGORY_B: 0, CATEGORY_C: 0}
        for row in self.rows:
            counts[row.category] += 1
        return counts

    @property
    def field_share_not_emulable(self) -> float:
        """The headline ~44%: field share of algorithm+function faults."""
        return non_emulable_share()

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            if row.accuracy_by_mode:
                accuracy = "; ".join(
                    f"{mode}={100 * value:.0f}%" for mode, value in row.accuracy_by_mode.items()
                )
            else:
                accuracy = "-"
            table_rows.append(
                [
                    row.fault_id,
                    row.odc_type.value,
                    row.category,
                    accuracy,
                    row.paper_figure or "-",
                ]
            )
        rendered = render_table(
            ["Fault", "ODC type", "Verdict", "Emulation accuracy", "Paper figure"],
            table_rows,
            title="Section 5 - Emulation of the actual software faults",
        )
        counts = self.category_counts()
        summary = (
            f"\n\nCategories: A={counts[CATEGORY_A]}  B={counts[CATEGORY_B]}  "
            f"C={counts[CATEGORY_C]} of {len(self.rows)} real faults.\n"
            f"Field share of category-C fault types (algorithm+function): "
            f"{100 * self.field_share_not_emulable:.1f}% (paper: ~44%).\n"
            "Field distribution: "
            + ", ".join(
                f"{dt.value}={100 * share:.1f}%" for dt, share in FIELD_DISTRIBUTION.items()
            )
        )
        return rendered + summary


def _emulation_accuracy(fault: RealFault, mode: str, inputs: int, seed: int) -> float:
    """Fraction of inputs on which corrected+injection matches the faulty binary."""
    workload = get_workload(fault.program)
    corrected = workload.compiled()
    faulty = workload.compiled_faulty()
    specs = fault.build_emulation(corrected, mode=mode)
    rng = random.Random(seed)
    matches = 0
    for _ in range(inputs):
        pokes = workload.generate_pokes(rng)
        faulty_machine = boot(faulty.executable, num_cores=workload.num_cores, inputs=pokes)
        faulty_run = faulty_machine.run(max_instructions=100_000_000)
        emulated_machine = boot(
            corrected.executable, num_cores=workload.num_cores, inputs=pokes
        )
        session = InjectionSession(emulated_machine)
        session.arm_all(specs)
        emulated_run = session.run(100_000_000)
        if (
            emulated_run.status == faulty_run.status
            and emulated_run.console == faulty_run.console
        ):
            matches += 1
    return matches / inputs if inputs else 0.0


def _probe_breakpoint_arming(fault: RealFault) -> str | None:
    """Arm the breakpoint-mode emulation on a scratch machine; return the error."""
    workload = get_workload(fault.program)
    corrected = workload.compiled()
    specs = fault.build_emulation(corrected, mode="breakpoint")
    rng = random.Random(0)
    machine = boot(
        corrected.executable,
        num_cores=workload.num_cores,
        inputs=workload.generate_pokes(rng),
    )
    session = InjectionSession(machine)
    try:
        session.arm_all(specs)
    except DebugResourceError as error:
        return str(error)
    return None


def run_sec5(config: ExperimentConfig | None = None) -> Sec5Result:
    config = config or ExperimentConfig()
    result = Sec5Result()
    for fault in real_faults():
        row = Sec5Row(
            fault_id=fault.fault_id,
            odc_type=fault.odc_type,
            category=CATEGORY_A,
            source_change=fault.source_change,
            paper_figure=fault.paper_figure,
            inputs_compared=config.sec5_inputs,
        )
        try:
            breakpoint_error = _probe_breakpoint_arming(fault)
        except NotEmulableError as error:
            row.category = CATEGORY_C
            row.not_emulable_reason = error.reason
            result.rows.append(row)
            continue
        if breakpoint_error is None:
            row.category = CATEGORY_A
            row.accuracy_by_mode["breakpoint"] = _emulation_accuracy(
                fault, "breakpoint", config.sec5_inputs, config.seed
            )
        else:
            row.category = CATEGORY_B
            row.breakpoint_error = breakpoint_error
            row.accuracy_by_mode["trap"] = _emulation_accuracy(
                fault, "trap", config.sec5_inputs, config.seed
            )
            row.accuracy_by_mode["memory"] = _emulation_accuracy(
                fault, "memory", config.sec5_inputs, config.seed
            )
        result.rows.append(row)
    return result

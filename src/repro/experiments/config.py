"""Experiment scaling configuration.

The paper's campaigns are large: >10,000 runs per program for Table 1 and
108,600 injection runs for Figures 7-10, executed on real hardware.  Our
target machine is a Python-interpreted simulator, so every experiment
driver takes an :class:`ExperimentConfig` whose defaults regenerate every
table and figure at a reduced-but-faithful scale (percentages are stable
well below the paper's N), and whose knobs scale up to the paper's full
counts (``ExperimentConfig.paper_scale()``).

Environment overrides (picked up by :meth:`ExperimentConfig.from_env`):

=================  =================================================
``REPRO_SCALE``    multiply every run count (default 1.0)
``REPRO_SEED``     master RNG seed (default 2000)
=================  =================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

#: Paper Table 4 — (possible, chosen) locations per program and fault class,
#: plus the published injected-fault counts, used for side-by-side columns.
PAPER_TABLE4: dict[str, dict[str, tuple[int, int, int]]] = {
    # program: {class: (possible, chosen, injected)}
    "C.team1": {"assignment": (92, 8, 9600), "checking": (49, 8, 4800)},
    "C.team2": {"assignment": (63, 5, 6000), "checking": (45, 6, 7800)},
    "C.team8": {"assignment": (84, 8, 9300), "checking": (31, 9, 3300)},
    "C.team9": {"assignment": (87, 9, 10800), "checking": (53, 9, 3300)},
    "C.team10": {"assignment": (88, 9, 10800), "checking": (43, 8, 4200)},
    "JB.team6": {"assignment": (29, 5, 6000), "checking": (10, 5, 3300)},
    "JB.team11": {"assignment": (21, 5, 5700), "checking": (11, 5, 2100)},
    "SOR": {"assignment": (363, 12, 14400), "checking": (195, 12, 7200)},
}

#: Paper Table 1 — % wrong results of the real faults under intensive testing.
PAPER_TABLE1: dict[str, float] = {
    "C.team1": 7.3,
    "C.team2": 16.9,
    "C.team3": 1.0,
    "C.team4": 30.8,
    "C.team5": 2.9,
    "JB.team6": 0.05,
    "JB.team7": 1.8,
}

PAPER_RUNS_PER_FAULT = 300       # §6.2: 300 input data sets per test case
PAPER_TABLE1_RUNS = 10_000       # §5: "more than 10.000 runs for each program"
PAPER_TOTAL_INJECTED = 108_600   # §6.3


@dataclass(frozen=True)
class ExperimentConfig:
    seed: int = 2000
    # -- Table 1 (real-fault failure symptoms) --------------------------
    table1_runs_camelot: int = 60
    table1_runs_jamesb: int = 1500
    # -- §5 (emulation of the specific real faults) ---------------------
    sec5_inputs: int = 8
    # -- §6 campaigns (Figures 7-10, Table 4) ---------------------------
    campaign_inputs: int = 4          # paper: 300
    location_fraction: float = 0.4    # of the paper's chosen-location counts
    min_locations: int = 2
    budget_factor: int = 8            # hang timeout = factor x fault-free run
    # -- ablations -------------------------------------------------------
    ablation_inputs: int = 4
    ablation_faults: int = 6

    def chosen_locations(self, program: str, klass: str) -> int:
        """Scaled version of the paper's per-program chosen-location count."""
        paper = PAPER_TABLE4.get(program)
        paper_chosen = paper[klass][1] if paper and klass in paper else 8
        return max(self.min_locations, round(paper_chosen * self.location_fraction))

    def scaled(self, factor: float) -> "ExperimentConfig":
        return replace(
            self,
            table1_runs_camelot=max(5, round(self.table1_runs_camelot * factor)),
            table1_runs_jamesb=max(50, round(self.table1_runs_jamesb * factor)),
            sec5_inputs=max(2, round(self.sec5_inputs * factor)),
            campaign_inputs=max(2, round(self.campaign_inputs * factor)),
            location_fraction=min(1.0, self.location_fraction * factor),
            ablation_inputs=max(2, round(self.ablation_inputs * factor)),
        )

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The full published experiment sizes (hours of CPU on this simulator)."""
        return cls(
            table1_runs_camelot=PAPER_TABLE1_RUNS,
            table1_runs_jamesb=PAPER_TABLE1_RUNS,
            sec5_inputs=100,
            campaign_inputs=PAPER_RUNS_PER_FAULT,
            location_fraction=1.0,
            min_locations=5,
            budget_factor=15,
        )

    @classmethod
    def tiny(cls) -> "ExperimentConfig":
        """Fast settings for the test suite."""
        return cls(
            table1_runs_camelot=6,
            table1_runs_jamesb=120,
            sec5_inputs=3,
            campaign_inputs=2,
            location_fraction=0.15,
            budget_factor=6,
        )

    @classmethod
    def from_env(cls) -> "ExperimentConfig":
        seed = int(os.environ.get("REPRO_SEED", "2000"))
        scale = float(os.environ.get("REPRO_SCALE", "1.0"))
        config = cls(seed=seed)
        if scale != 1.0:
            config = config.scaled(scale)
        return config

"""§6 — the class-emulation injection campaigns behind Figures 7-10.

One campaign = one Table-2 program × one fault class: the §6.3 rules
generate the error set, every fault runs against every input data set of
the family test case (same inputs across all programs of a family, as in
the paper), the machine is rebooted between runs, and outcomes are
classified into the four failure modes.

The aggregations match the paper's figures:

* :meth:`Section6Results.series_by_program` — Figures 7 and 8;
* :meth:`Section6Results.series_by_error_label` — Figures 9 and 10.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from ..emulation.operators import ASSIGNMENT_CLASS, CHECKING_CLASS
from ..emulation.rules import generate_error_set
from ..persist import atomic_write_json
from ..swifi.campaign import (
    ENGINE_SIMPLE,
    SNAPSHOT_OFF,
    CampaignConfig,
    CampaignRunner,
    RunRecord,
)
from ..swifi.spec import TIER_MACHINE, TIER_SOURCE, TIERS
from ..swifi.outcomes import MODE_ORDER, FailureMode
from ..workloads import table2_workloads
from .config import ExperimentConfig

FAULT_CLASSES = (ASSIGNMENT_CLASS, CHECKING_CLASS)


@dataclass
class ProgramCampaign:
    program: str
    klass: str
    possible_locations: int
    chosen_locations: int
    fault_count: int
    records: list[RunRecord] = field(default_factory=list)


@dataclass
class Section6Results:
    campaigns: list[ProgramCampaign] = field(default_factory=list)

    # -- record access ----------------------------------------------------

    def records(self, klass: str | None = None,
                program: str | None = None) -> list[RunRecord]:
        out: list[RunRecord] = []
        for campaign in self.campaigns:
            if klass is not None and campaign.klass != klass:
                continue
            if program is not None and campaign.program != program:
                continue
            out.extend(campaign.records)
        return out

    @property
    def total_runs(self) -> int:
        return sum(len(campaign.records) for campaign in self.campaigns)

    # -- aggregations ------------------------------------------------------

    @staticmethod
    def _percentages(records: list[RunRecord]) -> dict[FailureMode, float]:
        total = len(records) or 1
        return {
            mode: 100.0 * sum(1 for r in records if r.mode == mode) / total
            for mode in MODE_ORDER
        }

    def series_by_program(self, klass: str) -> dict[str, dict[FailureMode, float]]:
        """Figure 7 (assignment) / Figure 8 (checking) data."""
        series = {}
        for campaign in self.campaigns:
            if campaign.klass != klass:
                continue
            series.setdefault(campaign.program, [])
            series[campaign.program].extend(campaign.records)
        return {program: self._percentages(records) for program, records in series.items()}

    def series_by_error_label(self, klass: str) -> dict[str, dict[FailureMode, float]]:
        """Figure 9 (assignment) / Figure 10 (checking) data."""
        by_label: dict[str, list[RunRecord]] = {}
        for record in self.records(klass=klass):
            label = str(record.meta.get("error_label"))
            by_label.setdefault(label, []).append(record)
        return {label: self._percentages(records) for label, records in by_label.items()}

    def activated_fraction(self, klass: str | None = None) -> float:
        """Share of runs in which the fault trigger actually fired."""
        records = self.records(klass=klass)
        if not records:
            return 0.0
        return sum(1 for r in records if r.injections > 0) / len(records)

    def correct_with_activation_fraction(self, klass: str | None = None) -> float:
        """Share of runs that were Correct although the error was injected.

        The paper highlights these: "when the result of the programs is
        correct the faulty code ... has been executed.  Thus, the reasons
        why the error generated did not affect the results are related to
        the input data sets."
        """
        records = self.records(klass=klass)
        correct = [r for r in records if r.mode == FailureMode.CORRECT]
        if not correct:
            return 0.0
        return sum(1 for r in correct if r.injections > 0) / len(correct)

    # -- persistence --------------------------------------------------------

    def to_json(self, path: str) -> None:
        payload = [
            {
                "program": campaign.program,
                "klass": campaign.klass,
                "possible": campaign.possible_locations,
                "chosen": campaign.chosen_locations,
                "faults": campaign.fault_count,
                "records": [record.to_dict() for record in campaign.records],
            }
            for campaign in self.campaigns
        ]
        atomic_write_json(path, payload)

    @staticmethod
    def from_json(path: str) -> "Section6Results":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        results = Section6Results()
        for entry in payload:
            results.campaigns.append(
                ProgramCampaign(
                    program=entry["program"],
                    klass=entry["klass"],
                    possible_locations=entry["possible"],
                    chosen_locations=entry["chosen"],
                    fault_count=entry["faults"],
                    records=[RunRecord.from_dict(r) for r in entry["records"]],
                )
            )
        return results


def run_section6(
    config: ExperimentConfig | None = None,
    *,
    programs: list[str] | None = None,
    classes: tuple[str, ...] = FAULT_CLASSES,
    strategy: str = "databus",
    progress=None,
    jobs: int = 1,
    journal_dir: str | None = None,
    resume: bool = False,
    telemetry=None,
    snapshot: str = SNAPSHOT_OFF,
    trace: bool = False,
    engine: str = ENGINE_SIMPLE,
    prune: bool = False,
    memoize: bool = False,
    memo_dir: str | None = None,
    plan_verify: float = 0.0,
    tier: str = TIER_MACHINE,
) -> Section6Results:
    """Run the §6 campaigns over the Table-2 programs.

    ``jobs`` > 1 executes each campaign through the orchestrator's worker
    pool; results are bit-identical to ``jobs=1`` for the same config.
    With ``journal_dir`` set, every (program, fault class) campaign
    journals into its own subdirectory (``<dir>/<program>__<klass>/``) so
    a killed invocation re-run with ``resume=True`` skips every journaled
    run.  ``telemetry`` is a :class:`repro.orchestrator.TelemetrySink`
    shared by all campaigns (each begins/finishes with its own label).
    ``snapshot`` selects the golden-run restore fast path
    (off / auto / verify); outcomes are bit-identical either way.
    ``trace`` records per-run span traces into each campaign's journal
    and telemetry (``repro trace report <journal_dir>`` reads them back).
    ``engine`` picks the machine execution engine (simple / block); the
    block engine is faster but bit-identical, so figures never change.
    ``prune``/``memoize``/``memo_dir``/``plan_verify`` drive the campaign
    planner (:mod:`repro.planning`): statically pruned and memoized runs
    synthesize their records without booting, bit-identical by
    construction and spot-checkable via ``plan_verify``.
    ``tier`` selects the injection tier: ``"machine"`` (Table-3 SWIFI
    rewrites, the default) or ``"source"`` (:mod:`repro.srcfi` mutation
    operators compiled into mutant binaries).  Snapshot restore and the
    campaign planner are machine-tier-only options.
    """
    config = config or ExperimentConfig()
    results = Section6Results()
    for spec in iter_section6_campaigns(
        config, programs=programs, classes=classes, strategy=strategy, tier=tier
    ):
        campaign = ProgramCampaign(
            program=spec.program,
            klass=spec.klass,
            possible_locations=spec.error_set.possible_locations,
            chosen_locations=spec.error_set.chosen_locations,
            fault_count=len(spec.error_set.faults),
        )
        campaign_journal = None
        if journal_dir is not None:
            campaign_journal = os.path.join(journal_dir, spec.journal_name)
        outcome = spec.runner.run(
            spec.error_set.faults,
            progress=progress,
            config=CampaignConfig(
                jobs=jobs,
                journal_dir=campaign_journal,
                resume=resume,
                seed=config.seed,
                snapshot=snapshot,
                telemetry=telemetry,
                label=spec.label,
                trace=trace,
                engine=engine,
                prune=prune,
                memoize=memoize,
                memo_dir=memo_dir,
                plan_verify=plan_verify,
                tier=tier,
            ),
        )
        campaign.records = outcome.records
        results.campaigns.append(campaign)
    return results


@dataclass
class CampaignSpec:
    """One (program, fault class) campaign, fully built but not yet run.

    The enumeration order and RNG consumption of
    :func:`iter_section6_campaigns` are part of the campaign identity:
    the distributed service's ``repro submit`` builds its submissions
    through the same generator, so a campaign submitted to a broker is
    bit-identical — same fault ids, same cases, same seed derivation —
    to the one ``run_section6`` would execute locally.  ``runner`` is
    shared across the classes of one workload (budget calibration is
    per-program, not per-class).
    """

    program: str
    klass: str
    error_set: object
    runner: CampaignRunner
    seed: int

    @property
    def label(self) -> str:
        return f"{self.program}/{self.klass}"

    @property
    def journal_name(self) -> str:
        return f"{self.program}__{self.klass}"


def iter_section6_campaigns(
    config: ExperimentConfig | None = None,
    *,
    programs: list[str] | None = None,
    classes: tuple[str, ...] = FAULT_CLASSES,
    strategy: str = "databus",
    tier: str = TIER_MACHINE,
):
    """Yield the §6 campaigns over the Table-2 programs, in run order."""
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    config = config or ExperimentConfig()
    for workload in table2_workloads():
        if programs is not None and workload.name not in programs:
            continue
        compiled = workload.compiled()
        cases = workload.make_cases(config.campaign_inputs, seed=config.seed + 17)
        runner = CampaignRunner(
            compiled,
            cases,
            num_cores=workload.num_cores,
            budget_factor=config.budget_factor,
        )
        rng = random.Random(config.seed + 31)
        for klass in classes:
            if tier == TIER_SOURCE:
                from ..srcfi import generate_source_error_set

                error_set = generate_source_error_set(
                    compiled,
                    klass,
                    max_locations=config.chosen_locations(workload.name, klass),
                    rng=rng,
                )
            else:
                error_set = generate_error_set(
                    compiled,
                    klass,
                    max_locations=config.chosen_locations(workload.name, klass),
                    rng=rng,
                    strategy=strategy,
                )
            yield CampaignSpec(
                program=workload.name,
                klass=klass,
                error_set=error_set,
                runner=runner,
                seed=config.seed,
            )

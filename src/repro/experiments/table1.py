"""Table 1 — failure symptoms of the real software faults.

For each of the seven faulty programs, run the intensive random test the
paper used to expose the bugs: many random input data sets, the faulty
binary's output compared against the oracle.  The reported shape to
reproduce: wrong-result rates are small and vary by orders of magnitude
between programs, and "other failure modes such as program hangs or
system crashes have not been observed in any of the programs".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.stats import wilson_interval
from ..analysis.tables import render_table
from ..machine.loader import boot
from ..workloads import table1_workloads
from .config import PAPER_TABLE1, ExperimentConfig


@dataclass
class Table1Row:
    program: str
    runs: int
    wrong: int
    hangs: int
    crashes: int
    paper_percent: float

    @property
    def wrong_percent(self) -> float:
        return 100.0 * self.wrong / self.runs if self.runs else 0.0

    @property
    def correct_percent(self) -> float:
        return 100.0 - self.wrong_percent

    @property
    def confidence_interval(self) -> tuple[float, float]:
        low, high = wilson_interval(self.wrong, self.runs)
        return (100.0 * low, 100.0 * high)


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)

    @property
    def total_hangs_and_crashes(self) -> int:
        return sum(row.hangs + row.crashes for row in self.rows)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            low, high = row.confidence_interval
            table_rows.append(
                [
                    row.program,
                    row.runs,
                    f"{row.wrong_percent:.2f}%",
                    f"[{low:.2f}, {high:.2f}]",
                    f"{row.correct_percent:.2f}%",
                    f"{row.paper_percent:.2f}%",
                    row.hangs + row.crashes,
                ]
            )
        return render_table(
            ["Program", "Runs", "% Wrong", "95% CI", "% Correct",
             "Paper % wrong", "Hangs+crashes"],
            table_rows,
            title="Table 1 - Failure symptoms of the real software faults",
        )


def run_table1(config: ExperimentConfig | None = None) -> Table1Result:
    config = config or ExperimentConfig()
    result = Table1Result()
    for workload in table1_workloads():
        runs = (
            config.table1_runs_camelot
            if workload.family == "camelot"
            else config.table1_runs_jamesb
        )
        faulty = workload.compiled_faulty()
        rng = random.Random(config.seed + hash(workload.name) % 1000)
        wrong = hangs = crashes = 0
        for _ in range(runs):
            pokes = workload.generate_pokes(rng)
            expected = workload.oracle(pokes)
            machine = boot(faulty.executable, num_cores=workload.num_cores, inputs=pokes)
            outcome = machine.run(max_instructions=100_000_000)
            if outcome.status == "hung":
                hangs += 1
            elif outcome.status == "trapped":
                crashes += 1
            elif outcome.console != expected:
                wrong += 1
        result.rows.append(
            Table1Row(
                program=workload.name,
                runs=runs,
                wrong=wrong,
                hangs=hangs,
                crashes=crashes,
                paper_percent=PAPER_TABLE1[workload.name],
            )
        )
    return result

"""Figure 2 — the software-fault exposure chain, measured.

§3 of the paper: "Assuming a fault exists, the probability of the faulty
code to be executed is p1.  If the faulty code is executed, the
probability of error generation is p2.  If errors are generated, the
probability of these errors resulting into a failure is p3.  Thus, the
probability of a software fault resulting into a failure is the product
of p1, p2, and p3.  Ideally, the fault trigger should reproduce the chain
reaction ... the need of accelerating the process suggests that errors
should be injected instead of faults (p1 = p2 = 1)."

This experiment puts numbers on that chain for the real faults: an
*observation probe* (a trigger with an identity corruption) sits on the
fault-site anchor of the corrected binary while random inputs run, giving

* ``p1``      — fraction of runs that execute the fault site at all;
* ``p-fail``  — fraction of runs where the *faulty* binary misbehaves;
* ``p2·p3``   — ``p-fail / p1``, the conditional failure probability.

The real faults' tiny p2·p3 against their p1 ≈ 1 is exactly why the §6
always-firing triggers (which force p1 = p2 = 1) hit so much harder than
real bugs — the quantitative backbone of the paper's conclusion about
fault triggers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..emulation.realfaults import NotEmulableError, SiteNotFound
from ..machine.loader import boot
from ..swifi.faults import probe
from ..swifi.injector import InjectionSession
from ..workloads import get_workload, real_faults
from .config import ExperimentConfig


@dataclass
class ExposureRow:
    fault_id: str
    runs: int
    executed: int          # runs in which the fault-site anchor executed
    failures: int          # runs in which the faulty binary misbehaved
    mean_activations: float  # trigger firings per run (how hot the site is)

    @property
    def p1(self) -> float:
        return self.executed / self.runs if self.runs else 0.0

    @property
    def p_fail(self) -> float:
        return self.failures / self.runs if self.runs else 0.0

    @property
    def p2_p3(self) -> float:
        return self.p_fail / self.p1 if self.executed else 0.0


@dataclass
class ExposureResult:
    rows: list[ExposureRow] = field(default_factory=list)

    def render(self) -> str:
        table_rows = [
            [
                row.fault_id,
                row.runs,
                f"{row.p1:.2f}",
                f"{row.mean_activations:.0f}",
                f"{100 * row.p_fail:.1f}%",
                f"{100 * row.p2_p3:.1f}%",
            ]
            for row in self.rows
        ]
        rendered = render_table(
            ["Fault", "Runs", "p1 (site executed)", "Activations/run",
             "p(fail)", "p2*p3 = p(fail)/p1"],
            table_rows,
            title="Figure 2 - the exposure chain p1 * p2 * p3, measured",
        )
        return rendered + (
            "\n\nInjected error sets force p1 = p2 = 1 on every run; real"
            " faults reach the failure only through the full chain."
        )


def _site_address(fault, corrected) -> int | None:
    """The fault-site anchor in the corrected binary, when identifiable."""
    try:
        specs = fault.build_emulation(corrected)
        trigger = specs[0].trigger
        return getattr(trigger, "address", None)
    except NotEmulableError:
        return None
    except SiteNotFound:  # pragma: no cover - catalogue/program mismatch
        return None


def run_exposure(config: ExperimentConfig | None = None) -> ExposureResult:
    """Measure p1 and p2·p3 for every real fault with an emulable anchor.

    Algorithm faults have no single machine anchor (that is §5's point),
    so the chain is measured for the assignment/checking faults; run
    counts reuse the Table-1 configuration.
    """
    config = config or ExperimentConfig()
    result = ExposureResult()
    for fault in real_faults():
        workload = get_workload(fault.program)
        corrected = workload.compiled()
        address = _site_address(fault, corrected)
        if address is None:
            continue
        faulty = workload.compiled_faulty()
        runs = (
            max(10, config.table1_runs_camelot // 2)
            if workload.family == "camelot"
            else max(50, config.table1_runs_jamesb // 2)
        )
        rng = random.Random(config.seed + 41)
        executed = failures = 0
        activations_total = 0
        for _ in range(runs):
            pokes = workload.generate_pokes(rng)
            expected = workload.oracle(pokes)
            # p1: probe the corrected binary (unperturbed semantics).
            machine = boot(corrected.executable, num_cores=workload.num_cores,
                           inputs=pokes)
            session = InjectionSession(machine)
            session.arm(probe("site", address))
            outcome = session.run(100_000_000)
            count = session.activation_count("site")
            if count:
                executed += 1
                activations_total += count
            assert outcome.console == expected  # the probe must not perturb
            # p(fail): the faulty binary on the same input.
            machine = boot(faulty.executable, num_cores=workload.num_cores,
                           inputs=pokes)
            outcome = machine.run(100_000_000)
            if outcome.status != "exited" or outcome.console != expected:
                failures += 1
        result.rows.append(
            ExposureRow(
                fault_id=fault.fault_id,
                runs=runs,
                executed=executed,
                failures=failures,
                mean_activations=activations_total / max(1, executed),
            )
        )
    return result

"""Experiment drivers: one per table/figure of the paper (see DESIGN.md §4)."""

from .ablations import (
    HardwareComparisonResult,
    MetricGuidanceResult,
    TriggerAblationResult,
    run_hardware_comparison,
    run_metric_guidance,
    run_trigger_ablation,
)
from .campaign6 import ProgramCampaign, Section6Results, run_section6
from .config import (
    PAPER_RUNS_PER_FAULT,
    PAPER_TABLE1,
    PAPER_TABLE1_RUNS,
    PAPER_TABLE4,
    PAPER_TOTAL_INJECTED,
    ExperimentConfig,
)
from .exposure import ExposureResult, ExposureRow, run_exposure
from .figures import FigureResult, fig7, fig8, fig9, fig10
from .sec5 import CATEGORY_A, CATEGORY_B, CATEGORY_C, Sec5Result, Sec5Row, run_sec5
from .srcfi_compare import (
    CompareReport,
    PairOutcome,
    RealFaultOutcome,
    run_srcfi_compare,
)
from .table1 import Table1Result, Table1Row, run_table1
from .table2 import Table2Result, Table2Row, run_table2
from .table3 import Table3Result, run_table3
from .table4 import Table4Result, Table4Row, run_table4

__all__ = [
    "HardwareComparisonResult",
    "MetricGuidanceResult",
    "TriggerAblationResult",
    "run_hardware_comparison",
    "run_metric_guidance",
    "run_trigger_ablation",
    "ProgramCampaign",
    "Section6Results",
    "run_section6",
    "PAPER_RUNS_PER_FAULT",
    "PAPER_TABLE1",
    "PAPER_TABLE1_RUNS",
    "PAPER_TABLE4",
    "PAPER_TOTAL_INJECTED",
    "ExperimentConfig",
    "ExposureResult",
    "ExposureRow",
    "run_exposure",
    "FigureResult",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "CATEGORY_A",
    "CATEGORY_B",
    "CATEGORY_C",
    "Sec5Result",
    "Sec5Row",
    "run_sec5",
    "CompareReport",
    "PairOutcome",
    "RealFaultOutcome",
    "run_srcfi_compare",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "Table2Result",
    "Table2Row",
    "run_table2",
    "Table3Result",
    "run_table3",
    "Table4Result",
    "Table4Row",
    "run_table4",
]

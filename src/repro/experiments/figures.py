"""Figures 7-10 — failure-mode charts from the §6 campaigns.

* Figure 7 — failure modes per program, assignment faults;
* Figure 8 — failure modes per program, checking faults;
* Figure 9 — failure modes per error type, assignment faults;
* Figure 10 — failure modes per error type, checking faults.

Each driver slices one shared :class:`Section6Results`, renders the
stacked bars, and exposes the shape metrics the paper's discussion rests
on (dispersion across error types, crash share of the dynamic-structure
program, hang+crash share of the JamesB programs, …).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.figures import render_stacked_bars, series_to_jsonable
from ..analysis.stats import dispersion, max_pairwise_distance
from ..emulation.operators import ASSIGNMENT_CLASS, CHECKING_CLASS
from ..swifi.outcomes import FailureMode
from ..workloads import TABLE2_ORDER
from .campaign6 import Section6Results


@dataclass
class FigureResult:
    figure: str
    title: str
    klass: str
    series: dict[str, dict[FailureMode, float]]
    order: list[str]

    def render(self) -> str:
        return render_stacked_bars(self.series, title=self.title, order=self.order)

    def jsonable(self) -> dict:
        return {
            "figure": self.figure,
            "title": self.title,
            "series": series_to_jsonable(self.series),
        }

    def dispersion(self) -> float:
        return dispersion(self.series)

    def max_pairwise_distance(self) -> float:
        return max_pairwise_distance(self.series)

    def share(self, label: str, mode: FailureMode) -> float:
        return self.series.get(label, {}).get(mode, 0.0)


def _program_order(series: dict) -> list[str]:
    return [name for name in TABLE2_ORDER if name in series]


def fig7(results: Section6Results) -> FigureResult:
    series = results.series_by_program(ASSIGNMENT_CLASS)
    return FigureResult(
        figure="Figure 7",
        title="Figure 7 - Failure modes per program (assignment faults)",
        klass=ASSIGNMENT_CLASS,
        series=series,
        order=_program_order(series),
    )


def fig8(results: Section6Results) -> FigureResult:
    series = results.series_by_program(CHECKING_CLASS)
    return FigureResult(
        figure="Figure 8",
        title="Figure 8 - Failure modes per program (checking faults)",
        klass=CHECKING_CLASS,
        series=series,
        order=_program_order(series),
    )


def fig9(results: Section6Results) -> FigureResult:
    series = results.series_by_error_label(ASSIGNMENT_CLASS)
    return FigureResult(
        figure="Figure 9",
        title="Figure 9 - Failure modes per error type (assignment faults)",
        klass=ASSIGNMENT_CLASS,
        series=series,
        order=sorted(series),
    )


def fig10(results: Section6Results) -> FigureResult:
    series = results.series_by_error_label(CHECKING_CLASS)
    return FigureResult(
        figure="Figure 10",
        title="Figure 10 - Failure modes per error type (checking faults)",
        klass=CHECKING_CLASS,
        series=series,
        order=sorted(series),
    )

"""Table 2 — target programs of the §6 campaigns and their features.

The paper's table lists each program with the structural features that
motivated its selection (recursive vs non-recursive, dynamic structures,
size, parallelism).  We regenerate it from the registry and enrich it
with measured size and complexity metrics, which also feed the §6.1
metric-guidance ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..metrics import halstead, mccabe
from ..workloads import table2_workloads


@dataclass
class Table2Row:
    program: str
    features: str
    source_lines: int
    functions: int
    mccabe_total: int
    halstead_volume: float
    num_cores: int
    has_real_fault: bool


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["Program", "LoC", "Funcs", "McCabe", "Halstead V", "Cores",
             "Real fault", "Features"],
            [
                [
                    row.program,
                    row.source_lines,
                    row.functions,
                    row.mccabe_total,
                    round(row.halstead_volume),
                    row.num_cores,
                    "yes (corrected)" if row.has_real_fault else "-",
                    row.features,
                ]
                for row in self.rows
            ],
            title="Table 2 - Target programs and main features",
        )


def run_table2() -> Table2Result:
    result = Table2Result()
    for workload in table2_workloads():
        compiled = workload.compiled()
        result.rows.append(
            Table2Row(
                program=workload.name,
                features=workload.features,
                source_lines=compiled.source_lines,
                functions=len(compiled.debug.functions),
                mccabe_total=mccabe.total_complexity(compiled.tree),
                halstead_volume=halstead.from_source(compiled.source).volume,
                num_cores=workload.num_cores,
                has_real_fault=workload.has_real_fault,
            )
        )
    return result

"""Design-choice ablations called out in DESIGN.md.

**A1 — metric-guided fault allocation (§6.1).**  When field data is
unavailable, the paper proposes complexity metrics to decide how many
faults each program/module receives.  The ablation compares the
allocations produced by every strategy (uniform / LoC / McCabe / Halstead
volume / actual fault-site counts) over the Table-2 programs; the useful
property to observe is how closely cheap static metrics track the true
fault-site density ("sites").

**A2 — trigger representativeness (§6.4).**  The paper blames the
observed "much stronger impact than typical software faults" on the fault
triggers: injecting on *every* execution of the trigger instruction makes
p1 = p2 = 1.  The ablation re-runs one error set under different When
policies (every / only the first / only the n-th activation) and compares
the failure-mode mix — later/ rarer injections leave more runs correct,
moving the distribution toward the Table-1 behaviour of real faults.

**A3 — software vs hardware fault populations (§6.4).**  "The injected
errors also emulate hardware faults ... the failure modes observed have
the contribution of the hardware faults that are also emulated by the
injected errors."  The ablation runs a classic random hardware-fault
population (random bit flips, random triggers) next to the §6.3 software
error set on the same program and inputs and compares the mixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.stats import total_variation
from ..analysis.tables import render_table
from ..emulation.locator import FaultLocator
from ..emulation.operators import ASSIGNMENT_CLASS, CHECKING_CLASS
from ..emulation.rules import generate_error_set
from ..metrics.guidance import STRATEGIES, allocation_table
from ..swifi.campaign import (
    ENGINE_SIMPLE,
    SNAPSHOT_OFF,
    CampaignConfig,
    CampaignRunner,
)
from ..swifi.faults import WhenPolicy
from ..swifi.hardware import HardwareFaultModel, generate_hardware_fault_set
from ..swifi.outcomes import MODE_ORDER, FailureMode
from ..workloads import get_workload, table2_workloads
from .config import ExperimentConfig


# ---------------------------------------------------------------------------
# A1 — metric guidance
# ---------------------------------------------------------------------------

@dataclass
class MetricGuidanceResult:
    total_faults: int
    allocations: dict[str, dict[str, int]]  # strategy -> program -> faults

    def render(self) -> str:
        programs = list(next(iter(self.allocations.values())))
        rows = []
        for program in programs:
            rows.append(
                [program] + [self.allocations[s][program] for s in STRATEGIES]
            )
        return render_table(
            ["Program"] + list(STRATEGIES),
            rows,
            title=(
                f"Ablation A1 - allocating {self.total_faults} faults by metric "
                "(S6.1: metrics replace field data)"
            ),
        )

    def rank_correlation(self, first: str, second: str) -> float:
        """Spearman rank correlation between two strategies' allocations."""
        a = self.allocations[first]
        b = self.allocations[second]
        programs = list(a)
        def ranks(values: dict[str, int]) -> dict[str, float]:
            ordered = sorted(programs, key=lambda p: values[p])
            out: dict[str, float] = {}
            index = 0
            while index < len(ordered):
                j = index
                while j + 1 < len(ordered) and values[ordered[j + 1]] == values[ordered[index]]:
                    j += 1
                rank = (index + j) / 2.0
                for k in range(index, j + 1):
                    out[ordered[k]] = rank
                index = j + 1
            return out
        ra, rb = ranks(a), ranks(b)
        n = len(programs)
        if n < 2:
            return 1.0
        mean = (n - 1) / 2.0
        cov = sum((ra[p] - mean) * (rb[p] - mean) for p in programs)
        var_a = sum((ra[p] - mean) ** 2 for p in programs)
        var_b = sum((rb[p] - mean) ** 2 for p in programs)
        if var_a == 0 or var_b == 0:
            return 0.0
        return cov / (var_a * var_b) ** 0.5


def run_metric_guidance(total_faults: int = 100) -> MetricGuidanceResult:
    programs = [workload.compiled() for workload in table2_workloads()]
    return MetricGuidanceResult(
        total_faults=total_faults,
        allocations=allocation_table(programs, total_faults),
    )


# ---------------------------------------------------------------------------
# A2 — trigger representativeness
# ---------------------------------------------------------------------------

@dataclass
class TriggerAblationResult:
    program: str
    policies: dict[str, dict[FailureMode, float]] = field(default_factory=dict)
    activated: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for policy, distribution in self.policies.items():
            rows.append(
                [policy]
                + [f"{distribution.get(mode, 0.0):.1f}%" for mode in MODE_ORDER]
                + [f"{100 * self.activated.get(policy, 0.0):.0f}%"]
            )
        return render_table(
            ["When policy"] + [mode.label for mode in MODE_ORDER] + ["Runs w/ injection"],
            rows,
            title=(
                f"Ablation A2 - failure modes vs trigger When policy ({self.program})"
            ),
        )

    def correct_share(self, policy: str) -> float:
        return self.policies.get(policy, {}).get(FailureMode.CORRECT, 0.0)


def run_trigger_ablation(
    config: ExperimentConfig | None = None,
    *,
    program: str = "JB.team6",
    klass: str = ASSIGNMENT_CLASS,
    nth: int = 40,
    jobs: int = 1,
    snapshot: str = SNAPSHOT_OFF,
    engine: str = ENGINE_SIMPLE,
) -> TriggerAblationResult:
    """Re-run one error set under different When policies."""
    config = config or ExperimentConfig()
    workload = get_workload(program)
    compiled = workload.compiled()
    cases = workload.make_cases(config.ablation_inputs, seed=config.seed + 5)
    runner = CampaignRunner(
        compiled, cases, num_cores=workload.num_cores, budget_factor=config.budget_factor
    )
    locator = FaultLocator(compiled)
    rng = random.Random(config.seed + 7)
    locations = locator.locations(klass)
    chosen = rng.sample(locations, min(config.ablation_faults, len(locations)))

    policies = {
        "every execution": WhenPolicy.every(),
        "first execution only": WhenPolicy.once(),
        f"{nth}th execution only": WhenPolicy.nth(nth),
    }
    result = TriggerAblationResult(program=program)
    for policy_name, when in policies.items():
        specs = []
        for location in chosen:
            specs.extend(
                locator.faults_for_location(location, rng=rng, when=when)
            )
        outcome = runner.run(
            specs,
            config=CampaignConfig(
                jobs=jobs, seed=config.seed, snapshot=snapshot,
                label=f"A2:{policy_name}", engine=engine,
            ),
        )
        result.policies[policy_name] = outcome.percentages()
        injected = sum(1 for record in outcome.records if record.injections > 0)
        result.activated[policy_name] = injected / len(outcome.records)
    return result


# ---------------------------------------------------------------------------
# A3 — software vs hardware fault populations
# ---------------------------------------------------------------------------

@dataclass
class HardwareComparisonResult:
    program: str
    populations: dict[str, dict[FailureMode, float]] = field(default_factory=dict)
    dormant: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = []
        for population, distribution in self.populations.items():
            rows.append(
                [population]
                + [f"{distribution.get(mode, 0.0):.1f}%" for mode in MODE_ORDER]
                + [f"{100 * self.dormant.get(population, 0.0):.0f}%"]
            )
        return render_table(
            ["Fault population"] + [mode.label for mode in MODE_ORDER] + ["Dormant"],
            rows,
            title=(
                f"Ablation A3 - software error sets vs random hardware faults "
                f"({self.program})"
            ),
        )

    def distance(self, first: str, second: str) -> float:
        return total_variation(self.populations[first], self.populations[second])


def run_hardware_comparison(
    config: ExperimentConfig | None = None,
    *,
    program: str = "JB.team6",
    hardware_faults: int = 24,
    jobs: int = 1,
    snapshot: str = SNAPSHOT_OFF,
    engine: str = ENGINE_SIMPLE,
) -> HardwareComparisonResult:
    """Run §6.3 software error sets and a random hardware population
    against the same program and inputs."""
    config = config or ExperimentConfig()
    workload = get_workload(program)
    compiled = workload.compiled()
    cases = workload.make_cases(config.ablation_inputs, seed=config.seed + 23)
    runner = CampaignRunner(
        compiled, cases, num_cores=workload.num_cores, budget_factor=config.budget_factor
    )
    rng = random.Random(config.seed + 29)
    runner.calibrate()

    result = HardwareComparisonResult(program=program)
    for klass in (ASSIGNMENT_CLASS, CHECKING_CLASS):
        error_set = generate_error_set(
            compiled, klass, max_locations=config.ablation_faults, rng=rng
        )
        outcome = runner.run(
            error_set.faults,
            config=CampaignConfig(
                jobs=jobs, seed=config.seed, snapshot=snapshot,
                label=f"A3:{klass}", engine=engine,
            ),
        )
        result.populations[f"software:{klass}"] = outcome.percentages()
        result.dormant[f"software:{klass}"] = outcome.dormant_fraction()

    model = HardwareFaultModel(temporal_window=max(
        10_000, min(runner.golden_instructions.values())
    ))
    hardware = generate_hardware_fault_set(compiled, hardware_faults, rng, model)
    outcome = runner.run(
        hardware,
        config=CampaignConfig(
            jobs=jobs, seed=config.seed, snapshot=snapshot,
            label="A3:hardware", engine=engine,
        ),
    )
    result.populations["hardware:random"] = outcome.percentages()
    result.dormant["hardware:random"] = outcome.dormant_fraction()
    return result

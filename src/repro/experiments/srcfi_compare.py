"""Differential emulation-accuracy study: source tier vs machine tier.

The paper's §5 argument, measured end to end on our own machinery.  For
every source-level fault (mutation operator × site) we run the *same
inputs* twice:

* **source tier** — the mutant binary, fault-free;
* **machine tier** — the original binary with the best Table-3
  counterpart the machine vocabulary offers (or the plain golden run
  when there is none — a SWIFI tool that cannot express the fault
  injects nothing).

A pair *agrees* when both runs land in the same failure mode and — for
terminating runs — produce identical console bytes (hangs are compared
by mode only: both sides are cut off by the same instruction budget, so
truncated console tails are an artifact of the timeout, exactly as the
paper's experiment-manager timeout would).  Aggregating agreement per
ODC class reproduces the §5 split: assignment and checking faults agree
(their counterparts are exact rewrites), algorithm and function faults
visibly diverge — the 44% the paper couldn't emulate.

The study also re-runs the §5 real-bug error sets (faulty binary vs
corrected-plus-emulation) and reports the same per-class agreement for
them.
"""

from __future__ import annotations

import json
import os
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..emulation.realfaults import NotEmulableError
from ..machine.debug import DebugResourceError
from ..machine.loader import boot
from ..persist import atomic_write_json
from ..srcfi import (
    MUTATION_CLASSES,
    MutantCache,
    SourceLocator,
    realize_source_fault,
)
from ..swifi.campaign import CampaignRunner, InputCase
from ..swifi.injector import InjectionSession
from ..swifi.outcomes import FailureMode, classify
from ..workloads import get_workload, real_faults, table2_workloads
from .config import ExperimentConfig

SEC5_BUDGET = 100_000_000  # matches experiments.sec5's real-fault runs


@dataclass(frozen=True)
class PairOutcome:
    """One (source fault, input case) two-tier comparison."""

    pair_id: str
    program: str
    operator: str
    klass: str
    counterpart: str   # exact | approximate | none
    function: str
    line: int
    case_id: str
    source_mode: FailureMode
    machine_mode: FailureMode
    agree: bool

    def to_dict(self) -> dict:
        payload = self.__dict__ | {
            "source_mode": self.source_mode.value,
            "machine_mode": self.machine_mode.value,
        }
        return dict(payload)

    @staticmethod
    def from_dict(payload: dict) -> "PairOutcome":
        data = dict(payload)
        data["source_mode"] = FailureMode(data["source_mode"])
        data["machine_mode"] = FailureMode(data["machine_mode"])
        return PairOutcome(**data)


@dataclass(frozen=True)
class RealFaultOutcome:
    """Agreement of one §5 real fault's emulation with its faulty binary."""

    fault_id: str
    program: str
    klass: str          # the fault's ODC type
    emulable: bool      # False when the strategy raised NotEmulableError
    mode: str           # emulation mode that was compared (or "none")
    inputs: int
    agreements: int

    @property
    def agreement(self) -> float:
        return self.agreements / self.inputs if self.inputs else 0.0

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @staticmethod
    def from_dict(payload: dict) -> "RealFaultOutcome":
        return RealFaultOutcome(**payload)


def _aggregate(outcomes: "list[PairOutcome]", key) -> dict[str, dict]:
    groups: dict[str, list[PairOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(key(outcome), []).append(outcome)
    table = {}
    for name, members in sorted(groups.items()):
        agreed = sum(1 for m in members if m.agree)
        table[name] = {
            "runs": len(members),
            "agreed": agreed,
            "agreement": agreed / len(members),
        }
    return table


@dataclass
class CompareReport:
    """Everything ``repro srcfi compare`` reports."""

    programs: list[str]
    inputs: int
    seed: int
    pairs: list[PairOutcome] = field(default_factory=list)
    real: list[RealFaultOutcome] = field(default_factory=list)

    def per_class(self) -> dict[str, dict]:
        return _aggregate(self.pairs, lambda o: o.klass)

    def per_operator(self) -> dict[str, dict]:
        return _aggregate(self.pairs, lambda o: o.operator)

    def real_per_class(self) -> dict[str, dict]:
        table: dict[str, dict] = {}
        for outcome in self.real:
            entry = table.setdefault(
                outcome.klass, {"faults": 0, "inputs": 0, "agreed": 0}
            )
            entry["faults"] += 1
            entry["inputs"] += outcome.inputs
            entry["agreed"] += outcome.agreements
        for entry in table.values():
            entry["agreement"] = (
                entry["agreed"] / entry["inputs"] if entry["inputs"] else 0.0
            )
        return dict(sorted(table.items()))

    def render(self) -> str:
        order = {klass: i for i, klass in enumerate(MUTATION_CLASSES)}
        class_rows = [
            [klass, str(stats["runs"]), str(stats["agreed"]),
             f"{100 * stats['agreement']:.1f}%"]
            for klass, stats in sorted(
                self.per_class().items(), key=lambda kv: order.get(kv[0], 99)
            )
        ]
        out = render_table(
            ["ODC class", "Runs", "Agree", "Agreement"],
            class_rows,
            title="Source vs machine tier - outcome agreement per ODC class",
        )
        operator_rows = [
            [name, str(stats["runs"]), f"{100 * stats['agreement']:.1f}%"]
            for name, stats in self.per_operator().items()
        ]
        out += "\n\n" + render_table(
            ["Operator", "Runs", "Agreement"],
            operator_rows,
            title="Per mutation operator",
        )
        if self.real:
            real_rows = [
                [outcome.fault_id, outcome.klass,
                 "yes" if outcome.emulable else "no",
                 f"{100 * outcome.agreement:.0f}%"]
                for outcome in self.real
            ]
            out += "\n\n" + render_table(
                ["Real fault", "ODC type", "Emulable", "Agreement"],
                real_rows,
                title="S5 real faults - faulty binary vs best emulation",
            )
        out += (
            f"\n\nPrograms: {', '.join(self.programs)}; "
            f"{self.inputs} input(s) per pair; seed {self.seed}."
        )
        return out

    def jsonable(self) -> dict:
        return {
            "programs": self.programs,
            "inputs": self.inputs,
            "seed": self.seed,
            "per_class": self.per_class(),
            "per_operator": self.per_operator(),
            "real_per_class": self.real_per_class(),
            "pairs": [outcome.to_dict() for outcome in self.pairs],
            "real": [outcome.to_dict() for outcome in self.real],
        }

    def to_json(self, path: str) -> None:
        atomic_write_json(path, self.jsonable())


# -- two-tier pair execution -------------------------------------------------

def _run_outcome(executable, spec, case: InputCase, budget: int, *,
                 num_cores: int, engine: str) -> tuple[FailureMode, bytes]:
    machine = boot(executable, num_cores=num_cores,
                   inputs=dict(case.pokes), engine=engine)
    session = InjectionSession(machine)
    if spec is not None:
        session.arm(spec)
    result = session.run(budget)
    return classify(result, case.expected), bytes(result.console)


def _modes_agree(source: tuple[FailureMode, bytes],
                 machine: tuple[FailureMode, bytes]) -> bool:
    if source[0] != machine[0]:
        return False
    if source[0] == FailureMode.HANG:
        return True  # budget-truncated consoles are a timeout artifact
    return source[1] == machine[1]


def _compare_pair(compiled, fault, cases, budgets, cache, *,
                  num_cores: int, engine: str) -> list[PairOutcome]:
    mutant = realize_source_fault(compiled, fault, cache)
    meta = fault.meta
    outcomes = []
    for case in cases:
        budget = budgets[case.case_id]
        source = _run_outcome(
            mutant.compiled.executable, None, case, budget,
            num_cores=num_cores, engine=engine,
        )
        if mutant.counterpart is None:
            # No machine-expressible counterpart: the machine tier
            # injects nothing, so its outcome is the golden run.
            machine = (FailureMode.CORRECT, case.expected)
        else:
            machine = _run_outcome(
                compiled.executable, mutant.counterpart, case, budget,
                num_cores=num_cores, engine=engine,
            )
        outcomes.append(PairOutcome(
            pair_id=f"{compiled.name}:{fault.operator}:{fault.site_index}",
            program=compiled.name,
            operator=fault.operator,
            klass=str(meta["klass"]),
            counterpart=str(meta["counterpart"]),
            function=str(meta["function"]),
            line=int(meta["line"]),
            case_id=case.case_id,
            source_mode=source[0],
            machine_mode=machine[0],
            agree=_modes_agree(source, machine),
        ))
    return outcomes


_WORKER: dict | None = None


def _worker_init(workloads: dict, engine: str) -> None:
    global _WORKER
    _WORKER = {"workloads": workloads, "engine": engine, "cache": MutantCache()}


def _worker_pair(payload: tuple) -> list[PairOutcome]:
    program, fault = payload
    assert _WORKER is not None
    compiled, cases, budgets, num_cores = _WORKER["workloads"][program]
    return _compare_pair(
        compiled, fault, cases, budgets, _WORKER["cache"],
        num_cores=num_cores, engine=_WORKER["engine"],
    )


# -- §5 real-fault agreement -------------------------------------------------

def _real_fault_outcomes(config: ExperimentConfig) -> list[RealFaultOutcome]:
    outcomes = []
    for fault in real_faults():
        workload = get_workload(fault.program)
        corrected = workload.compiled()
        faulty = workload.compiled_faulty()
        specs: list = []
        emulable = True
        mode_used = "none"
        try:
            specs = fault.build_emulation(corrected, mode="breakpoint")
            mode_used = "breakpoint"
        except NotEmulableError:
            emulable = False
        rng = random.Random(config.seed)
        agreements = 0
        for _ in range(config.sec5_inputs):
            pokes = workload.generate_pokes(rng)
            faulty_machine = boot(
                faulty.executable, num_cores=workload.num_cores, inputs=pokes
            )
            faulty_run = faulty_machine.run(max_instructions=SEC5_BUDGET)
            emulated_machine = boot(
                corrected.executable, num_cores=workload.num_cores, inputs=pokes
            )
            session = InjectionSession(emulated_machine)
            if specs:
                try:
                    session.arm_all(specs)
                except DebugResourceError:
                    # Category B: breakpoint registers exhausted; fall
                    # back to the trap-based arming the paper proposes.
                    specs = fault.build_emulation(corrected, mode="trap")
                    mode_used = "trap"
                    session.arm_all(specs)
            emulated_run = session.run(SEC5_BUDGET)
            if (emulated_run.status == faulty_run.status
                    and emulated_run.console == faulty_run.console):
                agreements += 1
        outcomes.append(RealFaultOutcome(
            fault_id=fault.fault_id,
            program=fault.program,
            klass=fault.odc_type.value,
            emulable=emulable,
            mode=mode_used,
            inputs=config.sec5_inputs,
            agreements=agreements,
        ))
    return outcomes


# -- driver ------------------------------------------------------------------

def run_srcfi_compare(
    config: ExperimentConfig | None = None,
    *,
    programs: list[str] | None = None,
    max_sites: int | None = 4,
    include_real: bool = True,
    jobs: int = 1,
    journal_dir: str | None = None,
    resume: bool = False,
    trace: bool = False,
    engine: str = "simple",
    progress=None,
) -> CompareReport:
    """Run the two-tier comparison.

    ``max_sites`` caps sites per (program, operator) to bound runtime
    (None = exhaustive).  ``jobs`` parallelizes over (program, fault)
    pairs.  With ``journal_dir``, each completed pair is journaled as one
    JSONL line and ``resume=True`` skips journaled pairs.  ``trace`` is
    accepted for CLI uniformity and is a no-op here.
    """
    del trace  # accepted, not meaningful for the pair runner
    config = config or ExperimentConfig()
    report = CompareReport(programs=[], inputs=config.campaign_inputs,
                           seed=config.seed)

    workload_state: dict[str, tuple] = {}
    pending: list[tuple] = []
    for workload in table2_workloads():
        if programs is not None and workload.name not in programs:
            continue
        report.programs.append(workload.name)
        compiled = workload.compiled()
        cases = workload.make_cases(config.campaign_inputs, seed=config.seed + 17)
        runner = CampaignRunner(
            compiled, cases, num_cores=workload.num_cores,
            budget_factor=config.budget_factor,
        )
        runner.engine = engine
        runner.calibrate()
        workload_state[workload.name] = (
            compiled, cases, dict(runner.budgets), workload.num_cores
        )
        locator = SourceLocator(compiled)
        for fault in locator.source_faults(max_sites_per_operator=max_sites):
            pending.append((workload.name, fault))

    if programs is not None:
        unknown = set(programs) - set(report.programs)
        if unknown:
            raise ValueError(f"unknown program(s): {sorted(unknown)}")

    # -- journal --------------------------------------------------------
    journal_path = None
    journaled: dict[str, list[PairOutcome]] = {}
    if journal_dir is not None:
        os.makedirs(journal_dir, exist_ok=True)
        journal_path = os.path.join(journal_dir, "pairs.jsonl")
        if resume and os.path.exists(journal_path):
            with open(journal_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        break
                    if entry.get("type") != "pair":
                        continue
                    journaled[entry["pair_id"]] = [
                        PairOutcome.from_dict(o) for o in entry["outcomes"]
                    ]

    def pair_id(item: tuple) -> str:
        program, fault = item
        return f"{program}:{fault.operator}:{fault.site_index}"

    todo = [item for item in pending if pair_id(item) not in journaled]
    results: dict[str, list[PairOutcome]] = dict(journaled)
    total = len(pending)
    completed = len(journaled)

    journal = None
    try:
        if journal_path is not None:
            journal = open(journal_path, "a", encoding="utf-8")

        def consume(item: tuple, outcomes: list[PairOutcome]) -> None:
            nonlocal completed
            results[pair_id(item)] = outcomes
            if journal is not None:
                journal.write(json.dumps({
                    "type": "pair",
                    "pair_id": pair_id(item),
                    "outcomes": [o.to_dict() for o in outcomes],
                }) + "\n")
                journal.flush()
            completed += 1
            if progress is not None:
                progress(completed, total)

        if jobs == 1 or len(todo) <= 1:
            cache = MutantCache()
            for item in todo:
                program, fault = item
                compiled, cases, budgets, num_cores = workload_state[program]
                consume(item, _compare_pair(
                    compiled, fault, cases, budgets, cache,
                    num_cores=num_cores, engine=engine,
                ))
        else:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(todo)),
                initializer=_worker_init,
                initargs=(workload_state, engine),
            ) as pool:
                for item, outcomes in zip(todo, pool.map(_worker_pair, todo)):
                    consume(item, outcomes)
    finally:
        if journal is not None:
            journal.close()

    for item in pending:
        report.pairs.extend(results[pair_id(item)])

    if include_real:
        report.real = _real_fault_outcomes(config)
    return report

"""Table 3 — the subset of injected error types.

Regenerated from the operator registry, with each error type's
machine-level realisation spelled out (the paper describes the types "in
high-level language terms"; the locator gives them their RX32 meaning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..emulation.operators import (
    ASSIGNMENT_CLASS,
    all_error_types,
)

_MACHINE_REALISATION = {
    "value+1": "store-operand corruption (+1) on the anchored store",
    "value-1": "store-operand corruption (-1) on the anchored store",
    "no-assign": "anchored store replaced by NOP",
    "random": "store-operand replaced by a seeded random word",
    "true->false": "anchored conditional branch replaced by NOP",
    "false->true": "anchored branch condition forced to 'always'",
    "and->or": "short-circuit branch pair retargeted (2-word memory patch)",
    "or->and": "short-circuit branch pair retargeted (2-word memory patch)",
    "index+1": "displacement of the checking array load +element size",
    "index-1": "displacement of the checking array load -element size",
}


@dataclass
class Table3Result:
    rows: list[tuple[str, str, str, str]] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ["Class", "Error type", "Paper label", "Machine-level realisation"],
            list(self.rows),
            title="Table 3 - Subset of injected error types",
        )


def run_table3() -> Table3Result:
    result = Table3Result()
    for error_type in all_error_types():
        if error_type.name.startswith("swap:"):
            realisation = "condition field of the anchored branch rewritten"
        else:
            realisation = _MACHINE_REALISATION[error_type.name]
        result.rows.append(
            (
                error_type.klass,
                error_type.name,
                error_type.paper_label,
                realisation,
            )
        )
    result.rows.sort(key=lambda row: (row[0] != ASSIGNMENT_CLASS, row[1]))
    return result

"""Table 4 — possible/chosen fault locations and injected-fault counts.

This is pure fault-definition work (no execution): run the §6.3 rules on
every Table-2 program, count the possible locations the locator finds,
the randomly chosen subset, and the resulting faults; the injected-fault
count is ``faults × runs-per-fault`` (300 in the paper).  The paper's own
numbers are shown alongside.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..emulation.operators import ASSIGNMENT_CLASS, CHECKING_CLASS
from ..emulation.rules import GeneratedErrorSet, generate_error_set
from ..workloads import table2_workloads
from .config import PAPER_RUNS_PER_FAULT, PAPER_TABLE4, ExperimentConfig


@dataclass
class Table4Row:
    program: str
    klass: str
    possible: int
    chosen: int
    faults: int
    runs_per_fault: int
    paper_possible: int
    paper_chosen: int
    paper_injected: int

    @property
    def injected(self) -> int:
        return self.faults * self.runs_per_fault


@dataclass
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)
    error_sets: dict[tuple[str, str], GeneratedErrorSet] = field(default_factory=dict)

    def total_injected(self) -> int:
        return sum(row.injected for row in self.rows)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [
                    row.program,
                    row.klass,
                    row.possible,
                    row.chosen,
                    row.injected,
                    row.paper_possible,
                    row.paper_chosen,
                    row.paper_injected,
                ]
            )
        rendered = render_table(
            ["Program", "Class", "Possible", "Chosen", "Injected",
             "Paper possible", "Paper chosen", "Paper injected"],
            table_rows,
            title="Table 4 - Injected faults",
        )
        return (
            rendered
            + f"\n\nTotal injected faults: {self.total_injected():,}"
            + " (paper: 108,600)"
        )


def run_table4(config: ExperimentConfig | None = None,
               runs_per_fault: int | None = None) -> Table4Result:
    """Run the fault-definition rules for every Table-2 program.

    *runs_per_fault* defaults to the paper's 300 so the injected-fault
    column is directly comparable; campaigns that actually execute use
    ``config.campaign_inputs`` runs instead.
    """
    config = config or ExperimentConfig()
    runs = runs_per_fault if runs_per_fault is not None else PAPER_RUNS_PER_FAULT
    result = Table4Result()
    rng = random.Random(config.seed)
    for workload in table2_workloads():
        compiled = workload.compiled()
        for klass in (ASSIGNMENT_CLASS, CHECKING_CLASS):
            error_set = generate_error_set(
                compiled,
                klass,
                max_locations=config.chosen_locations(workload.name, klass),
                rng=rng,
            )
            paper = PAPER_TABLE4[workload.name][klass]
            result.error_sets[(workload.name, klass)] = error_set
            result.rows.append(
                Table4Row(
                    program=workload.name,
                    klass=klass,
                    possible=error_set.possible_locations,
                    chosen=error_set.chosen_locations,
                    faults=len(error_set.faults),
                    runs_per_fault=runs,
                    paper_possible=paper[0],
                    paper_chosen=paper[1],
                    paper_injected=paper[2],
                )
            )
    return result

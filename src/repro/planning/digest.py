"""State digests and fingerprints shared by verification and planning.

:class:`StateDigest` and :func:`machine_digest` started life in
``repro.verify.oracle`` as the differential oracle's full-state
comparison unit.  The campaign planner needs the same hashing to key its
outcome memo, so both live here and ``repro.verify`` re-exports them —
existing imports and persisted artifacts keep working unchanged.

On top of the digest the planner adds three fingerprint helpers:

* :func:`state_fingerprint` — one hex string over a machine's complete
  architectural state (cores, memory image, heap allocator, console);
  hashing a freshly booted machine yields a *case fingerprint* that
  covers the executable image and every input poke;
* :func:`behavior_fingerprint` — a stable hash of everything that shapes
  a fault's runtime behaviour (trigger, actions, when-policy, mode) while
  excluding its identity (``fault_id``, metadata), so two faults that
  *act* identically share a fingerprint;
* :func:`memo_key` — the outcome-memo cache key: case fingerprint +
  behaviour fingerprint + every execution parameter that could change
  the outcome (budget, quantum, core count, engine) + the oracle's
  expected output (the failure-mode classification depends on it).

Keying on the *pre-injection* boot state plus the behaviour fingerprint
— rather than on a mid-run post-injection digest alone — is what makes
the memo sound for ``when=every()`` faults: after the first injection
the fault is still armed, so two runs in identical machine states but
with different residual fault behaviour may still diverge.  The
behaviour fingerprint captures exactly that residue.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..swifi.faults import MachineFault


@dataclass(frozen=True)
class StateDigest:
    """Everything observable about one finished run, hashed where bulky."""

    status: str
    exit_code: int | None
    trap_kind: str | None
    instructions: int
    activations: int
    injections: int
    console_sha: str
    state_sha: str

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "exit_code": self.exit_code,
            "trap_kind": self.trap_kind,
            "instructions": self.instructions,
            "activations": self.activations,
            "injections": self.injections,
            "console_sha": self.console_sha,
            "state_sha": self.state_sha,
        }


def _hash_machine_state(machine) -> "hashlib._Hash":
    """SHA-256 over registers, memory image and heap allocator state.

    The exact byte layout predates this module (it came from the
    differential oracle) and is kept bit-identical so digests recorded in
    old fuzzer artifacts still match.
    """
    hasher = hashlib.sha256()
    for core in machine.cores:
        hasher.update(
            b"%d|%d|%d|%d|%d|" % (core.core_id, core.pc, core.lr, core.cr,
                                  1 if core.halted else 0)
        )
        hasher.update(b",".join(b"%d" % reg for reg in core.regs))
        hasher.update(b";")
    hasher.update(bytes(machine.memory.data))
    cursor, allocated, free_by_size = machine.heap.capture()
    hasher.update(repr((cursor, sorted(allocated), sorted(free_by_size))).encode())
    return hasher


def machine_digest(machine, result, session, fault_id: str) -> StateDigest:
    """Digest a finished machine: registers, memory image, heap, console."""
    hasher = _hash_machine_state(machine)
    return StateDigest(
        status=result.status,
        exit_code=result.exit_code,
        trap_kind=result.trap.kind if result.trap is not None else None,
        instructions=result.instructions,
        activations=session.activation_count(fault_id) if session else 0,
        injections=session.injection_count(fault_id) if session else 0,
        console_sha=hashlib.sha256(bytes(machine.console)).hexdigest(),
        state_sha=hasher.hexdigest(),
    )


def state_fingerprint(machine) -> str:
    """One hex string over a machine's complete architectural state."""
    hasher = _hash_machine_state(machine)
    hasher.update(b"#console:")
    hasher.update(bytes(machine.console))
    return hasher.hexdigest()


def behavior_fingerprint(spec: MachineFault) -> str:
    """Hash of a fault's runtime behaviour, independent of its identity.

    Trigger, actions, when-policy and mode are all frozen dataclasses
    with stable value-based reprs, so the repr is a canonical encoding.
    ``fault_id`` and metadata deliberately stay out: they label the fault
    but never change what it does to the machine.
    """
    payload = repr((spec.trigger, spec.actions, spec.when, spec.mode))
    return hashlib.sha256(payload.encode()).hexdigest()


def memo_key(case_fingerprint: str, expected: bytes, spec: MachineFault, *,
             budget: int, quantum: int, num_cores: int, engine: str) -> str:
    """The outcome-memo key for one (case, fault, execution-config) run."""
    hasher = hashlib.sha256()
    hasher.update(case_fingerprint.encode())
    hasher.update(b"|expected:")
    hasher.update(hashlib.sha256(expected).digest())
    hasher.update(b"|behavior:")
    hasher.update(behavior_fingerprint(spec).encode())
    hasher.update(
        b"|budget=%d|quantum=%d|cores=%d|engine=" % (budget, quantum, num_cores)
    )
    hasher.update(engine.encode())
    return hasher.hexdigest()


__all__ = [
    "StateDigest",
    "behavior_fingerprint",
    "machine_digest",
    "memo_key",
    "state_fingerprint",
]

"""Campaign plans: how a campaign's runs partitioned across the planner.

A :class:`CampaignPlan` summarizes one campaign as three disjoint
partitions — ``pruned`` (records synthesized by the dormancy prover),
``memoized`` (records replayed from the outcome memo) and ``executed``
(real runs) — with a per-fault-class breakdown.  The partition is read
off the records themselves via the ``provenance`` field, so a plan can
be rebuilt from any record list, a finished :class:`CampaignResult`, or
a campaign journal on disk (``repro plan report DIR``).

Campaigns running with a journal also append one schema-additive
``{"type": "plan"}`` line at completion; the report renderer shows it as
a cross-check but always derives its numbers from the run records, so
totals equal the journal's record count by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..swifi.campaign import RunRecord

#: provenance values, in partition order
PROVENANCE_PRUNED = "pruned"
PROVENANCE_MEMOIZED = "memoized"
PROVENANCE_EXECUTED = "executed"
PROVENANCES = (PROVENANCE_PRUNED, PROVENANCE_MEMOIZED, PROVENANCE_EXECUTED)

#: metadata keys tried, in order, to label a record's fault class
CLASS_KEYS = ("klass", "strategy", "kind")
UNCLASSIFIED = "unclassified"


def record_class(record: RunRecord) -> str:
    meta = record.meta
    for key in CLASS_KEYS:
        value = meta.get(key)
        if value:
            return str(value)
    return UNCLASSIFIED


@dataclass
class CampaignPlan:
    """Pruned / memoized / executed partition of one campaign's runs."""

    pruned: int = 0
    memoized: int = 0
    executed: int = 0
    by_class: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.pruned + self.memoized + self.executed

    @property
    def executed_fraction(self) -> float:
        return self.executed / self.total if self.total else 0.0

    def add(self, record: RunRecord) -> None:
        provenance = record.provenance
        if provenance not in PROVENANCES:
            provenance = PROVENANCE_EXECUTED
        if provenance == PROVENANCE_PRUNED:
            self.pruned += 1
        elif provenance == PROVENANCE_MEMOIZED:
            self.memoized += 1
        else:
            self.executed += 1
        klass = record_class(record)
        row = self.by_class.setdefault(
            klass, {p: 0 for p in PROVENANCES}
        )
        row[provenance] += 1

    def merge(self, other: "CampaignPlan") -> None:
        self.pruned += other.pruned
        self.memoized += other.memoized
        self.executed += other.executed
        for klass, row in other.by_class.items():
            mine = self.by_class.setdefault(
                klass, {p: 0 for p in PROVENANCES}
            )
            for provenance, count in row.items():
                mine[provenance] = mine.get(provenance, 0) + count

    def to_dict(self) -> dict:
        return {
            "pruned": self.pruned,
            "memoized": self.memoized,
            "executed": self.executed,
            "total": self.total,
            "by_class": {
                klass: dict(row) for klass, row in sorted(self.by_class.items())
            },
        }

    @staticmethod
    def from_dict(payload: dict) -> "CampaignPlan":
        plan = CampaignPlan(
            pruned=payload.get("pruned", 0),
            memoized=payload.get("memoized", 0),
            executed=payload.get("executed", 0),
        )
        for klass, row in (payload.get("by_class") or {}).items():
            plan.by_class[klass] = {
                p: int(row.get(p, 0)) for p in PROVENANCES
            }
        return plan


def plan_from_records(records) -> CampaignPlan:
    """Partition any iterable of run records by provenance."""
    plan = CampaignPlan()
    for record in records:
        plan.add(record)
    return plan


# ---------------------------------------------------------------------------
# Journal-backed plan reports: ``repro plan report DIR``
# ---------------------------------------------------------------------------


@dataclass
class JournalPlanSummary:
    """One journal directory's plan partition."""

    directory: str
    label: str
    record_count: int
    plan: CampaignPlan
    #: the journal's own {"type": "plan"} summary line, when present
    journaled_plan: dict | None


@dataclass
class PlanReport:
    root: str
    journals: list[JournalPlanSummary]

    @property
    def record_count(self) -> int:
        return sum(journal.record_count for journal in self.journals)

    def merged_plan(self) -> CampaignPlan:
        merged = CampaignPlan()
        for journal in self.journals:
            merged.merge(journal.plan)
        return merged


def build_plan_report(root: str) -> PlanReport:
    """Partition every journal under *root* by record provenance."""
    from ..observability.report import RUNS_FILENAME, find_journal_dirs
    from ..orchestrator.journal import load_runs_file

    directories = find_journal_dirs(root)
    if not directories:
        raise FileNotFoundError(
            f"no campaign journal ({RUNS_FILENAME}) found under {root!r}"
        )
    journals = []
    for directory in directories:
        state = load_runs_file(os.path.join(directory, RUNS_FILENAME))
        plan = plan_from_records(
            record for _, record in sorted(state.records.items())
        )
        label = os.path.relpath(directory, root)
        journals.append(
            JournalPlanSummary(
                directory=directory,
                label=label if label != "." else os.path.basename(
                    os.path.abspath(root)
                ),
                record_count=len(state.records),
                plan=plan,
                journaled_plan=state.plan,
            )
        )
    return PlanReport(root=root, journals=journals)


def render_plan_report(report: PlanReport) -> str:
    merged = report.merged_plan()
    total = merged.total or 1
    lines = [f"Plan report — {report.root}"]
    lines.append(
        f"  journals: {len(report.journals)}   journaled runs: "
        f"{report.record_count}   pruned: {merged.pruned} "
        f"({100.0 * merged.pruned / total:.1f}%)   memoized: "
        f"{merged.memoized} ({100.0 * merged.memoized / total:.1f}%)   "
        f"executed: {merged.executed} "
        f"({100.0 * merged.executed / total:.1f}%)"
    )
    for journal in report.journals:
        plan = journal.plan
        note = "" if journal.journaled_plan is not None else "  [no plan line]"
        lines.append(
            f"    {journal.label}: {journal.record_count} runs, "
            f"pruned={plan.pruned} memoized={plan.memoized} "
            f"executed={plan.executed}{note}"
        )
    lines.append("")
    lines.append("  Partition by fault class")
    lines.append(
        f"    {'class':<28} {'runs':>8} {'pruned':>8} {'memoized':>9} "
        f"{'executed':>9} {'exec %':>7}"
    )
    for klass, row in sorted(merged.by_class.items()):
        class_total = sum(row.values()) or 1
        lines.append(
            f"    {klass:<28} {sum(row.values()):>8} "
            f"{row[PROVENANCE_PRUNED]:>8} {row[PROVENANCE_MEMOIZED]:>9} "
            f"{row[PROVENANCE_EXECUTED]:>9} "
            f"{100.0 * row[PROVENANCE_EXECUTED] / class_total:>6.1f}%"
        )
    lines.append(
        f"    {'total':<28} {merged.total:>8} {merged.pruned:>8} "
        f"{merged.memoized:>9} {merged.executed:>9} "
        f"{100.0 * merged.executed / total:>6.1f}%"
    )
    return "\n".join(lines)


__all__ = [
    "CLASS_KEYS",
    "CampaignPlan",
    "JournalPlanSummary",
    "PROVENANCES",
    "PROVENANCE_EXECUTED",
    "PROVENANCE_MEMOIZED",
    "PROVENANCE_PRUNED",
    "PlanReport",
    "build_plan_report",
    "plan_from_records",
    "record_class",
    "render_plan_report",
]

"""The outcome memoizer: identical runs replay their cached outcome.

Two runs whose complete pre-injection machine state, fault behaviour and
execution parameters coincide are the same deterministic computation —
the second one's outcome is already known.  :func:`repro.planning.digest.memo_key`
captures exactly that equivalence class; this module stores the outcome
side of the mapping.

The cache holds only the *outcome* fields of a run record — failure-mode
classification, status, exit code, trap kind, counters — never the fault
identity.  ``fault_id``, ``case_id`` and metadata are rebuilt from the
fault spec at replay time, so two distinct faults that share a behaviour
fingerprint (the common case: generated fault sets repeat the same
corruption at the same site across probe/error pairs) correctly share
one cached outcome while keeping their own identities.

Persistence is append-only JSONL, one file per writer process
(``memo-<pid>.jsonl``) so concurrent shard workers never interleave
writes.  Loading reads every ``*.jsonl`` in the directory and skips torn
trailing lines, which makes kill + resume safe: a campaign resumed over
a warm memo directory replays every previously executed outcome.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..persist import trim_partial_tail
from ..swifi.campaign import InputCase, RunRecord
from ..swifi.faults import MachineFault
from ..swifi.outcomes import FailureMode

#: The run-outcome fields a memo entry carries (identity fields excluded).
OUTCOME_FIELDS = (
    "mode", "status", "exit_code", "trap_kind",
    "activations", "injections", "instructions",
)


def outcome_from_record(record: RunRecord) -> dict:
    """The identity-free outcome payload of one executed record."""
    return {
        "mode": record.mode.value,
        "status": record.status,
        "exit_code": record.exit_code,
        "trap_kind": record.trap_kind,
        "activations": record.activations,
        "injections": record.injections,
        "instructions": record.instructions,
    }


def record_from_outcome(outcome: dict, spec: MachineFault,
                        case: InputCase) -> RunRecord:
    """Rebuild a full record: cached outcome + the current fault identity."""
    return RunRecord(
        fault_id=spec.fault_id,
        case_id=case.case_id,
        mode=FailureMode(outcome["mode"]),
        status=outcome["status"],
        exit_code=outcome["exit_code"],
        trap_kind=outcome["trap_kind"],
        activations=outcome["activations"],
        injections=outcome["injections"],
        instructions=outcome["instructions"],
        metadata=spec.metadata,
        provenance="memoized",
    )


class OutcomeCache:
    """In-memory memo with optional on-disk JSONL persistence."""

    def __init__(self, memo_dir: str | Path | None = None) -> None:
        self._outcomes: dict[str, dict] = {}
        self._dir = Path(memo_dir) if memo_dir is not None else None
        self._sink = None
        self.loaded = 0
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            self.loaded = self._load()

    def _load(self) -> int:
        loaded = 0
        for path in sorted(self._dir.glob("*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    outcome = entry["outcome"]
                except (ValueError, KeyError, TypeError):
                    # torn write from a killed process — resume past it
                    continue
                if key not in self._outcomes:
                    loaded += 1
                self._outcomes[key] = outcome
        return loaded

    def __len__(self) -> int:
        return len(self._outcomes)

    def get(self, key: str) -> dict | None:
        return self._outcomes.get(key)

    def put(self, key: str, outcome: dict) -> None:
        if key in self._outcomes:
            return
        self._outcomes[key] = outcome
        if self._dir is not None:
            if self._sink is None:
                # A previous process with this pid may have been killed
                # mid-append; fuse-proof the tail before the first write.
                sink_path = self._dir / f"memo-{os.getpid()}.jsonl"
                trim_partial_tail(sink_path)
                self._sink = open(sink_path, "a", encoding="utf-8")
            self._sink.write(json.dumps({"key": key, "outcome": outcome}) + "\n")
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


__all__ = [
    "OUTCOME_FIELDS",
    "OutcomeCache",
    "outcome_from_record",
    "record_from_outcome",
]

"""Instrumented golden-run replay: per-address access facts for pruning.

The dormancy prover needs to know, for one (program, input case) pair,
what the fault-free run actually touches:

* how often every code address is fetched (trigger activation counts),
  and the *last* instruction index that fetched it;
* for each address the campaign's fault set triggers on, the condition
  register and effective address observed at every activation (branch
  decision equivalence, dead-store analysis);
* the last instruction index at which every memory word is read — by a
  load or by the ``puts`` syscall walking a string (dead-location
  analysis);
* read/write event lists for the registers the fault set corrupts
  (dead-register analysis);
* load/store counts on data-trigger addresses (data-trigger dormancy).

:class:`CaseTrace` (the snapshot fast path) pauses a real ``machine.run``
at watchpoints, which is cheap because it instruments only a handful of
addresses.  Access tracing instruments *every* instruction, so driving it
through one-instruction quanta would be ruinously slow on multi-million
instruction workloads.  Instead this module re-implements the ``simple``
engine's interpreter loop (:meth:`repro.machine.cpu.Core._run_quantum_simple`)
with the bookkeeping inlined, running over a really booted machine so
syscalls, the heap and the console behave identically.

Fail-safe by construction: the trace only reports ``ok`` when the replay
exited cleanly within budget (and below :func:`trace_cap`) and its
console output matches the case oracle byte-for-byte.  Any divergence —
an interpreter-drift bug here, a hanging golden run, an oversized
workload — disables planning for the case rather than risking a wrong
synthesized record.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..isa.encoding import (
    COND_ALWAYS,
    COND_EQ,
    COND_GE,
    COND_GT,
    COND_LE,
    COND_LT,
    COND_NE,
    OP_ADDI,
    OP_ADDIS,
    OP_ANDI,
    OP_B,
    OP_BC,
    OP_BL,
    OP_BLR,
    OP_CMPI,
    OP_CMPLI,
    OP_LBZ,
    OP_LWZ,
    OP_MFLR,
    OP_MTLR,
    OP_MULLI,
    OP_ORI,
    OP_SC,
    OP_SLWI,
    OP_SRAWI,
    OP_SRWI,
    OP_STB,
    OP_STW,
    OP_TRAP,
    OP_XO,
    OP_XORI,
    XO_ADD,
    XO_AND,
    XO_CMP,
    XO_DIVW,
    XO_MODW,
    XO_MUL,
    XO_NEG,
    XO_NOR,
    XO_NOT,
    XO_OR,
    XO_SLW,
    XO_SRAW,
    XO_SRW,
    XO_SUB,
    XO_XOR,
)
from ..machine.cpu import decode_fields
from ..machine.loader import Executable, boot
from ..machine.machine import RunResult
from ..machine.syscalls import SYS_PUTS
from ..machine.traps import (
    ArithmeticTrap,
    IllegalInstructionTrap,
    MemoryTrap,
    Trap,
    TrapInstructionHit,
)
from ..swifi.campaign import InputCase

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

#: Default per-case instruction ceiling for access tracing.  Beyond it the
#: trace declares itself unusable and the planner falls back to normal
#: execution for the whole case — pruning is an optimisation, never worth
#: an unbounded golden replay.
DEFAULT_TRACE_CAP = 8_000_000

#: Taken/not-taken for each branch condition over the three condition
#: register states, indexed (cr < 0, cr == 0, cr > 0).
COND_TRIPLES: dict[int, tuple[bool, bool, bool]] = {
    COND_LT: (True, False, False),
    COND_LE: (True, True, False),
    COND_EQ: (False, True, False),
    COND_GE: (False, True, True),
    COND_GT: (False, False, True),
    COND_NE: (True, False, True),
    COND_ALWAYS: (True, True, True),
}

_ALU_IMM_OPCODES = frozenset(
    {OP_ADDI, OP_ADDIS, OP_MULLI, OP_ANDI, OP_ORI, OP_XORI,
     OP_SLWI, OP_SRWI, OP_SRAWI}
)


def trace_cap() -> int:
    """The instruction ceiling, overridable via ``REPRO_PLAN_TRACE_CAP``."""
    return int(os.environ.get("REPRO_PLAN_TRACE_CAP", str(DEFAULT_TRACE_CAP)))


def cond_taken(cond: int, cr: int) -> bool | None:
    """Whether branch condition *cond* is taken under *cr*; None if illegal."""
    triple = COND_TRIPLES.get(cond)
    if triple is None:
        return None
    return triple[0] if cr < 0 else (triple[1] if cr == 0 else triple[2])


class GoldenAccessTrace:
    """One instrumented fault-free run of (executable, case).

    Instruction indices are 0-based retirement positions: the instruction
    at index ``i`` is the ``i+1``-th to execute.  "Read at index i" means
    the instruction executing at position i observed the value, so a
    store at index ``s`` is dead when no read of its target word has an
    index greater than ``s``.
    """

    def __init__(
        self,
        executable: Executable,
        case: InputCase,
        *,
        watch_pcs: Iterable[int] = (),
        data_addrs: Iterable[int] = (),
        tracked_regs: Iterable[int] = (),
        budget: int,
        cap: int | None = None,
    ) -> None:
        self.case = case
        self.failure: str | None = None
        cap = trace_cap() if cap is None else cap

        machine = boot(executable, num_cores=1, inputs=dict(case.pokes))
        self._code_base = machine.code_base
        self._code_end = machine.code_end
        self._code_words = list(machine.code_words)
        self._mapped = [(s.start, s.end) for s in machine.memory.segments]
        n_words = len(self._code_words)

        self._exec_count = [0] * n_words
        self._exec_last = [-1] * n_words
        self._events: dict[int, list[tuple[int, int | None, int]]] = {
            pc: [] for pc in watch_pcs
            if self._code_base <= pc < self._code_end
        }
        self._last_read: dict[int, int] = {}
        self._data_counts: dict[tuple[str, int], int] = {}
        self._data_addrs = frozenset(data_addrs)
        # r0 reads as zero even right after a corruption (the injector
        # resets it), so tracking it would only add noise.
        self._tracked_regs = frozenset(tracked_regs) - {0}
        self._reg_events: dict[int, list[tuple[int, bool]]] = {
            reg: [] for reg in self._tracked_regs
        }

        limit = min(budget, cap)
        status, exit_code, executed = self._run(machine, limit)
        if status != "exited" and executed >= limit and limit < budget:
            self.failure = "trace-cap"
        console = bytes(machine.console)
        self.result = RunResult(
            status=status, exit_code=exit_code, trap=None,
            instructions=executed, console=console,
        )
        self.instructions = executed
        self.ok = status == "exited" and console == case.expected
        if not self.ok and self.failure is None:
            self.failure = (
                "console-mismatch" if status == "exited" else f"golden-{status}"
            )

    # -- the instrumented interpreter loop -----------------------------

    def _run(self, machine, limit: int) -> tuple[str, int | None, int]:
        """Replay the golden run; returns (status, exit_code, executed)."""
        core = machine.cores[0]
        mem = machine.memory
        read_word = mem.read_word
        write_word = mem.write_word
        read_byte = mem.read_byte
        write_byte = mem.write_byte
        mem_data = mem.data
        regs = core.regs
        code_base = self._code_base
        code_end = self._code_end
        code_words = self._code_words
        decode_cache: list = [None] * len(code_words)
        syscall = machine.syscalls.dispatch
        read_ranges, write_ranges = machine.access_ranges()

        exec_count = self._exec_count
        exec_last = self._exec_last
        events = self._events
        last_read = self._last_read
        data_counts = self._data_counts
        data_addrs = self._data_addrs
        tracked = self._tracked_regs
        reg_events = self._reg_events

        pc = core.pc
        lr = core.lr
        cr = core.cr
        idx = 0
        status = "hung"
        try:
            while idx < limit:
                if pc < code_base or pc >= code_end:
                    raise MemoryTrap(
                        f"instruction fetch outside code segment at {pc:#010x}",
                        address=pc,
                    )
                index = (pc - code_base) >> 2
                exec_count[index] += 1
                exec_last[index] = idx
                decoded = decode_cache[index]
                if decoded is None:
                    decoded = decode_fields(code_words[index])
                    decode_cache[index] = decoded
                opcode, rd, ra, rb, imm = decoded

                if events and pc in events:
                    if opcode in (OP_LWZ, OP_STW, OP_LBZ, OP_STB):
                        ea_evt = (regs[ra] + imm) & _MASK
                    else:
                        ea_evt = None
                    events[pc].append((idx, ea_evt, cr))

                if tracked:
                    self._note_regs(reg_events, tracked, idx, opcode, rd, ra, rb)

                if opcode == OP_ADDI:
                    regs[rd] = (regs[ra] + imm) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_LWZ:
                    ea = (regs[ra] + imm) & _MASK
                    last_read[ea & ~3] = idx
                    if ea & 3:
                        last_read[(ea + 3) & ~3] = idx
                    if data_addrs and ea in data_addrs:
                        key = ("load", ea)
                        data_counts[key] = data_counts.get(key, 0) + 1
                    if ea & 3 == 0:
                        for lo, hi in read_ranges:
                            if lo <= ea < hi:
                                value = int.from_bytes(mem_data[ea:ea + 4], "big")
                                break
                        else:
                            value = read_word(ea, pc)
                    else:
                        value = read_word(ea, pc)
                    regs[rd] = value
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_STW:
                    ea = (regs[ra] + imm) & _MASK
                    if data_addrs and ea in data_addrs:
                        key = ("store", ea)
                        data_counts[key] = data_counts.get(key, 0) + 1
                    value = regs[rd]
                    if ea & 3 == 0:
                        for lo, hi in write_ranges:
                            if lo <= ea < hi:
                                mem_data[ea:ea + 4] = value.to_bytes(4, "big")
                                break
                        else:
                            write_word(ea, value, pc)
                    else:
                        write_word(ea, value, pc)
                    pc += 4
                elif opcode == OP_BC:
                    if rd == COND_LT:
                        taken = cr < 0
                    elif rd == COND_LE:
                        taken = cr <= 0
                    elif rd == COND_EQ:
                        taken = cr == 0
                    elif rd == COND_GE:
                        taken = cr >= 0
                    elif rd == COND_GT:
                        taken = cr > 0
                    elif rd == COND_NE:
                        taken = cr != 0
                    elif rd == COND_ALWAYS:
                        taken = True
                    else:
                        raise IllegalInstructionTrap(
                            f"illegal branch condition {rd} at {pc:#010x}"
                        )
                    pc = (pc + imm * 4) & _MASK if taken else pc + 4
                elif opcode == OP_XO:
                    a = regs[ra]
                    b = regs[rb]
                    if imm == XO_ADD:
                        regs[rd] = (a + b) & _MASK
                    elif imm == XO_SUB:
                        regs[rd] = (a - b) & _MASK
                    elif imm == XO_MUL:
                        regs[rd] = (a * b) & _MASK
                    elif imm == XO_CMP:
                        if a & _SIGN:
                            a -= 0x100000000
                        if b & _SIGN:
                            b -= 0x100000000
                        cr = -1 if a < b else (1 if a > b else 0)
                        pc += 4
                        idx += 1
                        continue
                    elif imm == XO_DIVW or imm == XO_MODW:
                        if a & _SIGN:
                            a -= 0x100000000
                        if b & _SIGN:
                            b -= 0x100000000
                        if b == 0:
                            raise ArithmeticTrap(
                                f"integer division by zero at {pc:#010x}"
                            )
                        quotient = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            quotient = -quotient
                        if imm == XO_DIVW:
                            regs[rd] = quotient & _MASK
                        else:
                            regs[rd] = (a - quotient * b) & _MASK
                    elif imm == XO_AND:
                        regs[rd] = a & b
                    elif imm == XO_OR:
                        regs[rd] = a | b
                    elif imm == XO_XOR:
                        regs[rd] = a ^ b
                    elif imm == XO_NOR:
                        regs[rd] = (a | b) ^ _MASK
                    elif imm == XO_SLW:
                        regs[rd] = (a << (b & 31)) & _MASK
                    elif imm == XO_SRW:
                        regs[rd] = a >> (b & 31)
                    elif imm == XO_SRAW:
                        if a & _SIGN:
                            a -= 0x100000000
                        regs[rd] = (a >> (b & 31)) & _MASK
                    elif imm == XO_NEG:
                        regs[rd] = (-a) & _MASK
                    elif imm == XO_NOT:
                        regs[rd] = a ^ _MASK
                    else:
                        raise IllegalInstructionTrap(
                            f"illegal XO sub-opcode {imm:#x} at {pc:#010x}"
                        )
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_CMPI:
                    a = regs[ra]
                    if a & _SIGN:
                        a -= 0x100000000
                    cr = -1 if a < imm else (1 if a > imm else 0)
                    pc += 4
                elif opcode == OP_B:
                    pc = (pc + imm * 4) & _MASK
                elif opcode == OP_BL:
                    lr = pc + 4
                    pc = (pc + imm * 4) & _MASK
                elif opcode == OP_BLR:
                    pc = lr
                elif opcode == OP_LBZ:
                    ea = (regs[ra] + imm) & _MASK
                    last_read[ea & ~3] = idx
                    if data_addrs and ea in data_addrs:
                        key = ("load", ea)
                        data_counts[key] = data_counts.get(key, 0) + 1
                    for lo, hi in read_ranges:
                        if lo <= ea < hi:
                            value = mem_data[ea]
                            break
                    else:
                        value = read_byte(ea, pc)
                    regs[rd] = value
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_STB:
                    ea = (regs[ra] + imm) & _MASK
                    if data_addrs and ea in data_addrs:
                        key = ("store", ea)
                        data_counts[key] = data_counts.get(key, 0) + 1
                    value = regs[rd]
                    for lo, hi in write_ranges:
                        if lo <= ea < hi:
                            mem_data[ea] = value & 0xFF
                            break
                    else:
                        write_byte(ea, value, pc)
                    pc += 4
                elif opcode == OP_ADDIS:
                    regs[rd] = (regs[ra] + (imm << 16)) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_MULLI:
                    regs[rd] = (regs[ra] * imm) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_ANDI:
                    regs[rd] = regs[ra] & imm
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_ORI:
                    regs[rd] = regs[ra] | imm
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_XORI:
                    regs[rd] = regs[ra] ^ imm
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_CMPLI:
                    a = regs[ra]
                    cr = -1 if a < imm else (1 if a > imm else 0)
                    pc += 4
                elif opcode == OP_SLWI:
                    regs[rd] = (regs[ra] << (imm & 31)) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_SRWI:
                    regs[rd] = regs[ra] >> (imm & 31)
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_SRAWI:
                    a = regs[ra]
                    if a & _SIGN:
                        a -= 0x100000000
                    regs[rd] = (a >> (imm & 31)) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_MFLR:
                    regs[rd] = lr & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_MTLR:
                    lr = regs[rd]
                    pc += 4
                elif opcode == OP_SC:
                    core.pc = pc
                    core.cr = cr
                    core.lr = lr
                    if imm == SYS_PUTS:
                        start = regs[3]
                        before = len(machine.console)
                        syscall(core, imm)
                        # puts walked the string plus its NUL terminator:
                        # every word it touched counts as read here.
                        n = len(machine.console) - before
                        for addr in range((start & ~3), ((start + n) & ~3) + 4, 4):
                            last_read[addr] = idx
                    else:
                        syscall(core, imm)
                    pc += 4
                    idx += 1
                    if core.halted or core.blocked:
                        break
                    continue
                elif opcode == OP_TRAP:
                    raise TrapInstructionHit(
                        f"trap instruction (code {imm}) at {pc:#010x}"
                    )
                else:
                    raise IllegalInstructionTrap(
                        f"illegal opcode {opcode:#x} at {pc:#010x}"
                    )
                idx += 1
        except Trap:
            core.pc = pc
            core.cr = cr
            core.lr = lr
            return "trapped", None, idx + 1
        core.pc = pc
        core.cr = cr
        core.lr = lr
        core.instret = idx
        machine.instret = idx
        if core.halted:
            return "exited", core.exit_code, idx
        return "hung", None, idx

    @staticmethod
    def _note_regs(reg_events, tracked, idx, opcode, rd, ra, rb) -> None:
        """Append (index, is_write) events for tracked registers.

        Reads are appended before writes, matching within-instruction
        order.  Conservative on syscalls: r3 is treated as read by every
        ``sc`` and its result writes are ignored (missing a write can
        only under-prune, never mis-prune).
        """
        reads: tuple[int, ...]
        writes: tuple[int, ...]
        if opcode in _ALU_IMM_OPCODES:
            reads, writes = (ra,), (rd,)
        elif opcode == OP_LWZ or opcode == OP_LBZ:
            reads, writes = (ra,), (rd,)
        elif opcode == OP_STW or opcode == OP_STB:
            reads, writes = (ra, rd), ()
        elif opcode == OP_XO:
            # all XO forms read ra; NEG/NOT ignore rb but counting an
            # extra read is conservative-safe (it can only under-prune)
            reads, writes = (ra, rb), (rd,)
        elif opcode == OP_CMPI or opcode == OP_CMPLI:
            reads, writes = (ra,), ()
        elif opcode == OP_MFLR:
            reads, writes = (), (rd,)
        elif opcode == OP_MTLR:
            reads, writes = (rd,), ()
        elif opcode == OP_SC:
            reads, writes = (3,), ()
        else:  # branches, trap
            reads, writes = (), ()
        for reg in reads:
            if reg in tracked:
                reg_events[reg].append((idx, False))
        for reg in writes:
            if reg in tracked:
                reg_events[reg].append((idx, True))

    # -- prover accessors ----------------------------------------------

    def _index_of(self, pc: int) -> int | None:
        if pc < self._code_base or pc >= self._code_end or pc & 3:
            return None
        return (pc - self._code_base) >> 2

    def exec_count_at(self, pc: int) -> int:
        index = self._index_of(pc)
        return 0 if index is None else self._exec_count[index]

    def last_exec_at(self, pc: int) -> int:
        """Last instruction index that fetched *pc*, or -1."""
        index = self._index_of(pc)
        return -1 if index is None else self._exec_last[index]

    def events_at(self, pc: int) -> list[tuple[int, int | None, int]]:
        """Per-activation (index, effective address, cr) for a watched pc."""
        return self._events.get(pc, [])

    def last_read_at(self, word_addr: int) -> int:
        """Last instruction index that read any byte of the word, or -1."""
        return self._last_read.get(word_addr & ~3, -1)

    def data_access_count(self, addr: int, *, on_load: bool, on_store: bool) -> int:
        count = 0
        if on_load:
            count += self._data_counts.get(("load", addr), 0)
        if on_store:
            count += self._data_counts.get(("store", addr), 0)
        return count

    def reg_events_at(self, reg: int) -> list[tuple[int, bool]] | None:
        """(index, is_write) events for *reg*; None when it wasn't tracked.

        An empty list is a real answer (tracked, never accessed); None
        means the trace cannot say and the caller must decline.
        """
        return self._reg_events.get(reg)

    def golden_word(self, pc: int) -> int | None:
        index = self._index_of(pc)
        return None if index is None else self._code_words[index]

    def is_mapped(self, addr: int) -> bool:
        """Whether a debug-port word write at *addr* would land in a segment."""
        return any(lo <= addr and addr + 4 <= hi for lo, hi in self._mapped)


__all__ = [
    "COND_TRIPLES",
    "DEFAULT_TRACE_CAP",
    "GoldenAccessTrace",
    "cond_taken",
    "trace_cap",
]

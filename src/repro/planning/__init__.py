"""Fault-space planning: prune dormant faults, memoize repeated outcomes.

The campaign planner sits between the scheduler and the workers and
makes most runs never execute:

* :mod:`repro.planning.digest` — state digests and fingerprints (shared
  with :mod:`repro.verify`) plus the outcome-memo key;
* :mod:`repro.planning.replay` — the instrumented golden-run replay that
  records per-address read/write/execute access;
* :mod:`repro.planning.prover` — static dormancy / dead-location proofs
  that synthesize run records without booting a machine;
* :mod:`repro.planning.memo` — the outcome memo (in-memory plus optional
  on-disk JSONL that survives kill + resume);
* :mod:`repro.planning.planner` — :class:`PlannerCache`, the per-process
  fast path consulted by ``execute_injection_run`` before snapshots;
* :mod:`repro.planning.plan` — :class:`CampaignPlan` partitions and the
  ``repro plan report`` renderer.

Enable it per campaign with ``CampaignConfig(prune=True, memoize=True)``
(CLI: ``--prune`` / ``--memoize``); honesty-check it with
``plan_verify`` > 0, which re-executes a sampled fraction of planned
records and raises :class:`PlanningDivergence` on any mismatch.
"""

from .digest import (
    StateDigest,
    behavior_fingerprint,
    machine_digest,
    memo_key,
    state_fingerprint,
)
from .memo import OutcomeCache, outcome_from_record, record_from_outcome
from .plan import (
    CampaignPlan,
    PlanReport,
    PROVENANCE_EXECUTED,
    PROVENANCE_MEMOIZED,
    PROVENANCE_PRUNED,
    PROVENANCES,
    build_plan_report,
    plan_from_records,
    render_plan_report,
)
from .planner import PlannerCache, PlanningDivergence
from .prover import (
    PRUNE_RULES,
    PruneDecision,
    classify_fault,
    synthesize_record,
    trace_requirements,
)
from .replay import GoldenAccessTrace, trace_cap

__all__ = [
    "CampaignPlan",
    "GoldenAccessTrace",
    "OutcomeCache",
    "PRUNE_RULES",
    "PROVENANCES",
    "PROVENANCE_EXECUTED",
    "PROVENANCE_MEMOIZED",
    "PROVENANCE_PRUNED",
    "PlanReport",
    "PlannerCache",
    "PlanningDivergence",
    "PruneDecision",
    "StateDigest",
    "behavior_fingerprint",
    "build_plan_report",
    "classify_fault",
    "machine_digest",
    "memo_key",
    "outcome_from_record",
    "plan_from_records",
    "record_from_outcome",
    "render_plan_report",
    "state_fingerprint",
    "synthesize_record",
    "trace_cap",
    "trace_requirements",
]

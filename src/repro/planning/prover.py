"""The dormancy prover: static fault classification against a golden trace.

Given one fault spec and one :class:`~repro.planning.replay.GoldenAccessTrace`
the prover answers a single question: *can this injection run's record be
synthesized without booting a machine?*  Two families of proof:

* **dormant trigger** — the trigger event never activates in the golden
  run (the pc is never fetched, the data address never accessed, the
  instruction count never reached), or it activates but the when-policy
  never fires.  The run is the golden run; only the activation counter
  differs.

* **invisible corruption** — the trigger fires, but every action's
  effect lands in a provably dead location: a stored value never read
  again, a branch whose decision is unchanged under the observed
  condition register, a register whose next access is a write, a code or
  memory word that is never fetched or read after the first injection,
  or a corruption that is the identity function.  The run is observably
  the golden run with the activation/injection counters of a real run.

Every rule only ever *removes* observations relative to the golden run
(a skipped store, an unread register), never adds one, so proving each
action invisible independently composes: the corrupted run stays
bit-identical to the golden run in every field a :class:`RunRecord`
carries.  Anything the rules cannot prove is *declined* — the planner
falls back to real execution, and the ``plan_verify`` policy re-executes
a sample of pruned records to keep the prover honest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.encoding import NOP_WORD, OP_BC, OP_STB, OP_STW
from ..machine.cpu import decode_fields
from ..swifi.campaign import InputCase, RunRecord
from ..swifi.faults import (
    Arithmetic,
    BitAnd,
    BitFlip,
    BitOr,
    CodeWord,
    DataAccess,
    MachineFault,
    FetchedWord,
    LoadValue,
    MODE_BREAKPOINT,
    MemoryWord,
    OpcodeFetch,
    PatchField,
    RegisterTarget,
    StoreValue,
    Temporal,
)
from ..swifi.outcomes import classify
from .replay import GoldenAccessTrace, cond_taken

# Rule labels recorded on every prune decision (and surfaced by
# ``repro plan report`` / planner statistics).
RULE_DORMANT = "dormant-trigger"
RULE_DEAD_STORE = "dead-store"
RULE_BRANCH_EQUIV = "branch-equivalent"
RULE_DEAD_REGISTER = "dead-register"
RULE_DEAD_WORD = "dead-word"
RULE_IDENTITY = "identity-corruption"

PRUNE_RULES = (
    RULE_DORMANT,
    RULE_DEAD_STORE,
    RULE_BRANCH_EQUIV,
    RULE_DEAD_REGISTER,
    RULE_DEAD_WORD,
    RULE_IDENTITY,
)


@dataclass(frozen=True)
class PruneDecision:
    """The prover's verdict on one (fault, case) pair."""

    prune: bool
    #: rule label when pruned; decline reason when not
    rule: str | None = None
    reason: str | None = None
    activations: int = 0
    injections: int = 0

    @staticmethod
    def pruned(rule: str, activations: int, injections: int) -> "PruneDecision":
        return PruneDecision(True, rule=rule, activations=activations,
                             injections=injections)

    @staticmethod
    def declined(reason: str) -> "PruneDecision":
        return PruneDecision(False, reason=reason)


def trace_requirements(
    faults: list[MachineFault],
) -> tuple[frozenset[int], frozenset[int], frozenset[int]]:
    """(watch pcs, data addresses, register ordinals) a trace must record
    to classify every fault in the set."""
    watch_pcs: set[int] = set()
    data_addrs: set[int] = set()
    tracked_regs: set[int] = set()
    for spec in faults:
        trigger = spec.trigger
        if isinstance(trigger, OpcodeFetch):
            watch_pcs.add(trigger.address)
        elif isinstance(trigger, DataAccess):
            data_addrs.add(trigger.address)
        for action in spec.actions:
            if isinstance(action.location, RegisterTarget):
                tracked_regs.add(action.location.index)
    return frozenset(watch_pcs), frozenset(data_addrs), frozenset(tracked_regs)


def _is_identity(corruption) -> bool:
    """True when apply(v) == v for every 32-bit v — provable statically."""
    if isinstance(corruption, BitFlip):
        return corruption.mask & 0xFFFFFFFF == 0
    if isinstance(corruption, BitAnd):
        return corruption.mask & 0xFFFFFFFF == 0xFFFFFFFF
    if isinstance(corruption, BitOr):
        return corruption.mask & 0xFFFFFFFF == 0
    if isinstance(corruption, Arithmetic):
        return corruption.delta % 0x100000000 == 0
    if isinstance(corruption, PatchField):
        return corruption.width == 0
    return False


def classify_fault(
    spec: MachineFault, trace: GoldenAccessTrace
) -> PruneDecision:
    """Decide whether the (spec, trace.case) run can be synthesized."""
    if not trace.ok:
        return PruneDecision.declined(trace.failure or "trace-unusable")

    trigger = spec.trigger
    has_fetched_word = any(
        isinstance(action.location, FetchedWord) for action in spec.actions
    )

    if isinstance(trigger, Temporal):
        if has_fetched_word:
            # the injector rejects this combination at arm time; a real
            # run errors out, so synthesizing a record would be wrong
            return PruneDecision.declined("arm-error")
        # pause_at_instret fires *at* the boundary: a golden run that
        # retires exactly trigger.instructions still activates, so only
        # a strictly shorter run is dormant.
        if trace.instructions < trigger.instructions:
            return PruneDecision.pruned(RULE_DORMANT, 0, 0)
        return PruneDecision.declined("temporal-live")

    if isinstance(trigger, DataAccess):
        if has_fetched_word:
            return PruneDecision.declined("arm-error")
        count = trace.data_access_count(
            trigger.address, on_load=trigger.on_load, on_store=trigger.on_store
        )
        if count == 0:
            return PruneDecision.pruned(RULE_DORMANT, 0, 0)
        return PruneDecision.declined("data-live")

    if not isinstance(trigger, OpcodeFetch):
        return PruneDecision.declined("unknown-trigger")
    if spec.mode != MODE_BREAKPOINT:
        # trap-mode faults re-vector through the trap handler; the golden
        # trace says nothing about that path
        return PruneDecision.declined("trap-mode")

    pc = trigger.address
    activations = trace.exec_count_at(pc)
    if activations == 0:
        return PruneDecision.pruned(RULE_DORMANT, 0, 0)

    events = trace.events_at(pc)
    if len(events) != activations:
        return PruneDecision.declined("no-events")
    fired = [event for k, event in enumerate(events, start=1)
             if spec.when.fires(k)]
    if not fired:
        # the trigger activates but the when-policy never injects
        return PruneDecision.pruned(RULE_DORMANT, activations, 0)

    rules = _actions_invisible(spec, trace, pc, fired)
    if isinstance(rules, str):
        return PruneDecision.declined(rules)
    rule = rules[0] if len(set(rules)) == 1 else "+".join(sorted(set(rules)))
    return PruneDecision.pruned(rule, activations, len(fired))


def _actions_invisible(
    spec: MachineFault,
    trace: GoldenAccessTrace,
    pc: int,
    fired: list[tuple[int, int | None, int]],
) -> list[str] | str:
    """Rule labels when every action is invisible; a decline reason string
    otherwise."""
    rules: list[str] = []
    fetch_actions = []
    store_actions = []
    other_actions = []
    for action in spec.actions:
        target = action.location
        if isinstance(target, LoadValue):
            # a one-shot load transform hits whichever load executes next
            # — possibly far from the trigger; we don't model that
            return "load-value"
        if isinstance(target, FetchedWord):
            fetch_actions.append(action)
        elif isinstance(target, StoreValue):
            store_actions.append(action)
        else:
            other_actions.append(action)

    orig_word = trace.golden_word(pc)
    if orig_word is None:
        return "no-golden-word"

    # Fetched-word substitutions compose left to right within one
    # activation; analyze the final substituted word once.
    final_word = orig_word
    for action in fetch_actions:
        final_word = action.corruption.apply(final_word)
    if fetch_actions:
        rule = _fetched_word_invisible(orig_word, final_word, trace, fired)
        if rule is None:
            return "opaque-word"
        rules.append(rule)

    if store_actions:
        if len(store_actions) > 1:
            return "multi-transform"
        if final_word != orig_word:
            # a rewritten trigger instruction may no longer be the store
            # that consumes the one-shot transform
            return "transform-combo"
        rule = _store_value_invisible(store_actions[0], orig_word, trace, fired)
        if rule is None:
            return "live-store"
        rules.append(rule)

    for action in other_actions:
        target = action.location
        if isinstance(target, RegisterTarget):
            rule = _register_invisible(action, trace, fired)
            if rule is None:
                return "live-register"
        elif isinstance(target, (CodeWord, MemoryWord)):
            rule = _word_invisible(action, trace, fired)
            if rule is None:
                return "live-word"
        else:
            return "unknown-target"
        rules.append(rule)
    return rules


def _fetched_word_invisible(
    orig_word: int,
    final_word: int,
    trace: GoldenAccessTrace,
    fired: list[tuple[int, int | None, int]],
) -> str | None:
    if final_word == orig_word:
        return RULE_IDENTITY
    orig_op, _, _, _, _ = decode_fields(orig_word)
    new_op, new_rd, _, _, new_imm = decode_fields(final_word)
    if orig_op in (OP_STW, OP_STB) and final_word == NOP_WORD:
        # skipping the store leaves stale memory; invisible iff no later
        # read ever observes any of those words
        if all(_word_unread_after(trace, ea, index) for index, ea, _ in fired):
            return RULE_DEAD_STORE
        return None
    if orig_op == OP_BC:
        orig_cond = decode_fields(orig_word)[1]
        orig_imm = decode_fields(orig_word)[4]
        if final_word == NOP_WORD:
            # NOP falls through — equivalent iff the branch is never
            # taken at any fired activation
            if all(cond_taken(orig_cond, cr) is False for _, _, cr in fired):
                return RULE_BRANCH_EQUIV
            return None
        if new_op == OP_BC and new_imm == orig_imm:
            for _, _, cr in fired:
                taken_new = cond_taken(new_rd, cr)
                if taken_new is None or taken_new != cond_taken(orig_cond, cr):
                    return None
            return RULE_BRANCH_EQUIV
    return None


def _word_unread_after(trace: GoldenAccessTrace, ea: int | None,
                       index: int) -> bool:
    """No load / puts walk reads the word(s) at *ea* after instruction
    *index* (the store itself executes at *index*, so reads there are
    impossible and ``<=`` is exact)."""
    if ea is None:
        return False
    if trace.last_read_at(ea) > index:
        return False
    if ea & 3 and trace.last_read_at(ea + 3) > index:
        return False
    return True


def _store_value_invisible(
    action,
    orig_word: int,
    trace: GoldenAccessTrace,
    fired: list[tuple[int, int | None, int]],
) -> str | None:
    if _is_identity(action.corruption):
        return RULE_IDENTITY
    opcode = decode_fields(orig_word)[0]
    if opcode not in (OP_STW, OP_STB):
        # the one-shot store transform would leak to some later store
        # elsewhere in the program — not modeled
        return None
    if all(_word_unread_after(trace, ea, index) for index, ea, _ in fired):
        return RULE_DEAD_STORE
    return None


def _register_invisible(
    action,
    trace: GoldenAccessTrace,
    fired: list[tuple[int, int | None, int]],
) -> str | None:
    reg = action.location.index
    if reg == 0:
        # the injector re-zeroes r0 immediately after corrupting it
        return RULE_IDENTITY
    if _is_identity(action.corruption):
        return RULE_IDENTITY
    events = trace.reg_events_at(reg)
    if events is None:
        return None
    for index, _, _ in fired:
        # corruption lands at the fetch of instruction *index*, before it
        # executes — its own operand reads (>= index) observe it
        nxt = next((is_write for at, is_write in events if at >= index), None)
        if nxt is False:
            return None
    return RULE_DEAD_REGISTER


def _word_invisible(
    action,
    trace: GoldenAccessTrace,
    fired: list[tuple[int, int | None, int]],
) -> str | None:
    addr = action.location.address
    if addr & 3 or not trace.is_mapped(addr):
        # the injector's debug write would fault — a real run errors out
        return None
    if _is_identity(action.corruption):
        return RULE_IDENTITY
    first = fired[0][0]
    # the corruption is permanent: any fetch or read at-or-after the first
    # injection observes it (the trigger instruction itself is fetched at
    # *first*, so corrupting the trigger's own word always declines)
    if trace.last_exec_at(addr) >= first:
        return None
    if trace.last_read_at(addr) >= first:
        return None
    return RULE_DEAD_WORD


def synthesize_record(
    spec: MachineFault,
    case: InputCase,
    trace: GoldenAccessTrace,
    decision: PruneDecision,
) -> RunRecord:
    """The record a real run would produce, built from the golden result."""
    golden = trace.result
    return RunRecord(
        fault_id=spec.fault_id,
        case_id=case.case_id,
        mode=classify(golden, case.expected),
        status=golden.status,
        exit_code=golden.exit_code,
        trap_kind=None,
        activations=decision.activations,
        injections=decision.injections,
        instructions=golden.instructions,
        metadata=spec.metadata,
        provenance="pruned",
    )


__all__ = [
    "PRUNE_RULES",
    "PruneDecision",
    "RULE_BRANCH_EQUIV",
    "RULE_DEAD_REGISTER",
    "RULE_DEAD_STORE",
    "RULE_DEAD_WORD",
    "RULE_DORMANT",
    "RULE_IDENTITY",
    "classify_fault",
    "synthesize_record",
    "trace_requirements",
]

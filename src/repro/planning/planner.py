"""The campaign planner: prune + memoize before a machine ever boots.

:class:`PlannerCache` sits in front of the snapshot fast path inside
:func:`repro.swifi.campaign.execute_injection_run`.  For every run it
tries, in order:

1. **prune** — ask the dormancy prover whether the record can be
   synthesized from the case's golden access trace (one instrumented
   replay per case, built lazily and shared by all of its faults);
2. **memoize** — look the run up in the outcome memo under its
   (case fingerprint, behaviour fingerprint, execution parameters) key;
   outcomes of previously *executed* runs — in this process or, with an
   on-disk memo directory, in any previous run of the campaign — replay
   without executing.

Anything the planner cannot serve falls through to the snapshot cache
and the fresh-boot path; the resulting record is fed back via
:meth:`PlannerCache.record_executed` so the memo warms as the campaign
proceeds.

Like :class:`repro.swifi.snapshot.SnapshotCache`, a planner cache is
per-process state and deliberately not picklable: the orchestrator
builds one inside each worker, and workers meet only through the on-disk
memo directory (append-only, multi-writer safe).

Honesty enforcement: ``verify_fraction`` > 0 deterministically samples
that fraction of pruned/memoized records and re-executes them with a
real fresh-boot run; any field mismatch raises
:class:`PlanningDivergence`.  The differential fuzzer additionally runs
whole campaigns with the planner on and off and compares every record.
"""

from __future__ import annotations

import hashlib
from collections import Counter

from ..machine.loader import Executable, boot
from ..machine.machine import ENGINE_SIMPLE
from ..observability import trace as _trace
from ..swifi.campaign import InputCase, RunRecord
from ..swifi.faults import MachineFault
from .digest import memo_key, state_fingerprint
from .memo import OutcomeCache, outcome_from_record, record_from_outcome
from .prover import classify_fault, synthesize_record, trace_requirements
from .replay import GoldenAccessTrace


class PlanningDivergence(AssertionError):
    """A pruned or memoized record disagreed with a real execution."""


class PlannerCache:
    """Per-process planning state for one campaign shard."""

    def __init__(
        self,
        executable: Executable,
        faults,
        *,
        num_cores: int = 1,
        quantum: int = 64,
        engine: str = ENGINE_SIMPLE,
        prune: bool = True,
        memoize: bool = True,
        memo_dir: str | None = None,
        verify_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not prune and not memoize:
            raise ValueError("a planner cache needs prune and/or memoize on")
        if not 0.0 <= verify_fraction <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0, 1], got {verify_fraction!r}"
            )
        self.executable = executable
        self.num_cores = num_cores
        self.quantum = quantum
        self.engine = engine
        self.prune = prune
        self.memoize = memoize
        self.verify_fraction = verify_fraction
        self.seed = seed
        specs = [spec for spec in faults if spec is not None]
        self._watch_pcs, self._data_addrs, self._tracked_regs = (
            trace_requirements(specs)
        )
        self._traces: dict[str, GoldenAccessTrace] = {}
        self._case_fps: dict[str, str] = {}
        self.memo = OutcomeCache(memo_dir) if memoize else None
        self.stats = {"pruned": 0, "memoized": 0, "verified": 0}
        self.prune_rules: Counter = Counter()
        self.declines: Counter = Counter()
        #: (path, reason) of the most recent execute() call; read by the
        #: trace layer in execute_injection_run (single-threaded per
        #: process, so a plain attribute is race-free — same contract as
        #: SnapshotCache.last_path).
        self.last_path: tuple[str, str | None] = (_trace.PATH_FRESH, None)

    # -- lazy per-case state --------------------------------------------

    def trace_for(self, case: InputCase, budget: int) -> GoldenAccessTrace:
        trace = self._traces.get(case.case_id)
        if trace is None:
            trace = GoldenAccessTrace(
                self.executable, case,
                watch_pcs=self._watch_pcs,
                data_addrs=self._data_addrs,
                tracked_regs=self._tracked_regs,
                budget=budget,
            )
            self._traces[case.case_id] = trace
        return trace

    def _fingerprint_for(self, case: InputCase) -> str:
        fingerprint = self._case_fps.get(case.case_id)
        if fingerprint is None:
            machine = boot(
                self.executable, num_cores=self.num_cores,
                inputs=dict(case.pokes), engine=self.engine,
            )
            fingerprint = state_fingerprint(machine)
            self._case_fps[case.case_id] = fingerprint
        return fingerprint

    def _memo_key(self, spec: MachineFault, case: InputCase, budget: int) -> str:
        return memo_key(
            self._fingerprint_for(case), case.expected, spec,
            budget=budget, quantum=self.quantum,
            num_cores=self.num_cores, engine=self.engine,
        )

    # -- the planning fast path -----------------------------------------

    def execute(
        self, spec: MachineFault, case: InputCase, budget: int
    ) -> RunRecord | None:
        """Planned record for one run, or ``None`` to fall through."""
        if self.prune and self.num_cores == 1:
            with _trace.phase(_trace.PHASE_PLAN_PROVE):
                trace = self.trace_for(case, budget)
                decision = classify_fault(spec, trace)
            if decision.prune:
                record = synthesize_record(spec, case, trace, decision)
                self.stats["pruned"] += 1
                self.prune_rules[decision.rule] += 1
                self.last_path = (_trace.PATH_PRUNED, decision.rule)
                self._maybe_verify(spec, case, budget, record)
                return record
            self.declines[decision.reason] += 1
        if self.memo is not None:
            with _trace.phase(_trace.PHASE_MEMO_LOOKUP):
                key = self._memo_key(spec, case, budget)
                outcome = self.memo.get(key)
            if outcome is not None:
                record = record_from_outcome(outcome, spec, case)
                self.stats["memoized"] += 1
                self.last_path = (_trace.PATH_MEMO, None)
                self._maybe_verify(spec, case, budget, record)
                return record
        self.last_path = (_trace.PATH_FRESH, None)
        return None

    def record_executed(
        self, spec: MachineFault | None, case: InputCase, budget: int,
        record: RunRecord,
    ) -> None:
        """Feed an executed run's outcome into the memo."""
        if self.memo is None or spec is None:
            return
        if record.provenance != "executed":
            return
        self.memo.put(self._memo_key(spec, case, budget),
                      outcome_from_record(record))

    # -- the honesty check ----------------------------------------------

    def _maybe_verify(
        self, spec: MachineFault, case: InputCase, budget: int, record: RunRecord
    ) -> None:
        if self.verify_fraction <= 0.0:
            return
        if self.verify_fraction < 1.0:
            draw = hashlib.sha256(
                f"{spec.fault_id}|{case.case_id}|{self.seed}".encode()
            ).digest()
            if int.from_bytes(draw[:8], "big") / 2.0**64 >= self.verify_fraction:
                return
        from ..swifi.campaign import execute_injection_run

        fresh = execute_injection_run(
            self.executable, spec, case,
            budget=budget, num_cores=self.num_cores,
            quantum=self.quantum, engine=self.engine,
        )
        if fresh != record:  # provenance is compare=False by design
            raise PlanningDivergence(
                f"planner ({record.provenance}) diverged from fresh boot for "
                f"{spec.fault_id}/{case.case_id}:\n"
                f"  planned: {record}\n  fresh:   {fresh}"
            )
        self.stats["verified"] += 1

    def close(self) -> None:
        if self.memo is not None:
            self.memo.close()


__all__ = ["PlannerCache", "PlanningDivergence"]

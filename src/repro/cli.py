"""Command-line interface: regenerate any table/figure from a shell.

Usage (also via ``python -m repro``)::

    python -m repro table1           # real-fault failure symptoms
    python -m repro table2           # target programs and features
    python -m repro table3           # injected error types
    python -m repro table4           # fault-location counts
    python -m repro sec5             # real-fault emulation verdicts
    python -m repro figures          # figures 7-10 (runs the campaigns)
    python -m repro figures --programs JB.team6 SOR
    python -m repro figures --prune --memoize --memo-dir memo/
    python -m repro ablation-metrics
    python -m repro ablation-triggers
    python -m repro ablation-hardware
    python -m repro trace report DIR # per-phase/fallback report of --trace journals
    python -m repro plan report DIR  # pruned/memoized/executed partition of journals
    python -m repro disasm PROGRAM   # RX32 listing of a workload program
    python -m repro coverage PROGRAM # fault-site coverage under random inputs
    python -m repro inject FILE.c    # locate+inject faults in your MiniC file
    python -m repro verify fuzz --seed 0 --cases 200   # differential fuzzer
    python -m repro verify fuzz --tier source          # fuzz the mutant pipeline
    python -m repro verify fuzz --opt 1                # add the O0-vs-O1 axis
    python -m repro verify replay ARTIFACT.json        # re-run a divergence
    python -m repro serve --state-dir state/           # campaign broker
    python -m repro work http://127.0.0.1:8642         # work-stealing worker
    python -m repro submit http://127.0.0.1:8642 --journal-dir out/
    python -m repro srcfi sites JB.team6               # mutation-site listing
    python -m repro srcfi campaign --programs SOR      # source-tier campaigns
    python -m repro srcfi compare --out results        # two-tier agreement study

Scaling flags: ``--scale`` multiplies every run count; ``--seed`` fixes
the RNG.  Defaults regenerate everything at the reduced scale documented
in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
import random
import sys

from .experiments import (
    ExperimentConfig,
    fig7,
    fig8,
    fig9,
    fig10,
    run_hardware_comparison,
    run_metric_guidance,
    run_sec5,
    run_section6,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_trigger_ablation,
)


def _positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (``--jobs 0`` is a
    config error, not a request for zero workers — reject it at parse
    time with the usual argparse exit code 2)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type for durations that must be > 0 (``--lease-timeout 0``
    would expire every lease instantly — a config error, rejected at
    parse time with the usual argparse exit code 2)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number (got {value})"
        )
    return value


def _port_int(text: str) -> int:
    """Argparse type for ``--port``: 1-65535, or 0 for an ephemeral port."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be 0 (ephemeral) or 1-65535 (got {value})"
        )
    return value


def _opt_level(text: str) -> int:
    """Argparse type for ``--opt``: the only levels are 0 and 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value not in (0, 1):
        raise argparse.ArgumentTypeError(
            f"optimization level must be 0 or 1 (got {value})"
        )
    return value


def _scale(args: argparse.Namespace) -> float:
    return getattr(args, "scale", 1.0)


def _opt(args: argparse.Namespace) -> int:
    return getattr(args, "opt", 0)


def _reject_paper_opt(args) -> int | None:
    """Exit-2 guard: the paper's tables/figures are defined on O0 binaries.

    Every published number was measured against the unoptimized compiler
    output (slot-per-variable codegen); running them at O1 would silently
    change fault-location counts and outcome tallies.  Reject the
    combination with a one-line diagnostic instead of producing figures
    that no longer match the paper.
    """
    if _opt(args) == 0:
        return None
    print(
        "error: --opt 1 is not allowed here: paper tables/figures are "
        "defined on the unoptimized (O0) binaries",
        file=sys.stderr,
    )
    return 2


def _seed(args: argparse.Namespace) -> int:
    return getattr(args, "seed", 2000)


def _config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig(seed=_seed(args))
    if _scale(args) != 1.0:
        config = config.scaled(_scale(args))
    return config


def _cmd_table1(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_table1(_config(args)).render())


def _cmd_table2(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_table2().render())


def _cmd_table3(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_table3().render())


def _cmd_table4(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_table4(_config(args)).render())


def _cmd_sec5(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_sec5(_config(args)).render())


def _reject_source_tier_flags(args) -> int | None:
    """Exit-2 guard: machine-tier-only flags combined with ``--tier source``.

    The source tier reboots a fresh mutant binary per run, so the snapshot
    fast path and the planner have nothing to attach to — reject the
    combination here with a one-line diagnostic instead of surfacing the
    deep ``run_source_campaign`` rejection as a traceback.
    """
    if getattr(args, "tier", "machine") != "source":
        return None
    offending = []
    if getattr(args, "snapshot", "off") != "off":
        offending.append(f"--snapshot {args.snapshot}")
    if getattr(args, "prune", False):
        offending.append("--prune")
    if getattr(args, "memoize", False):
        offending.append("--memoize")
    if getattr(args, "memo_dir", None) is not None:
        offending.append("--memo-dir")
    if getattr(args, "plan_verify", 0):
        offending.append("--plan-verify")
    if not offending:
        return None
    print(
        f"error: {', '.join(offending)} require(s) --tier machine "
        "(snapshot fast path and planner are machine-tier-only)",
        file=sys.stderr,
    )
    return 2


def _cmd_figures(args):
    from .orchestrator import CompositeSink, JsonTelemetryWriter, ProgressRenderer

    exit_code = _reject_paper_opt(args)
    if exit_code is None:
        exit_code = _reject_source_tier_flags(args)
    if exit_code is not None:
        return exit_code

    sinks = [ProgressRenderer(sys.stderr)]
    if args.telemetry_json:
        sinks.append(JsonTelemetryWriter(args.telemetry_json))
    results = run_section6(
        _config(args),
        programs=args.programs,
        jobs=args.jobs,
        journal_dir=args.journal_dir,
        resume=args.resume,
        telemetry=CompositeSink(*sinks),
        snapshot=args.snapshot,
        trace=args.trace,
        engine=args.engine,
        prune=args.prune,
        memoize=args.memoize,
        memo_dir=args.memo_dir,
        plan_verify=args.plan_verify,
        tier=args.tier,
    )
    for figure in (fig7(results), fig8(results), fig9(results), fig10(results)):
        print(figure.render())
        print()


def _cmd_ablation_metrics(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    result = run_metric_guidance(total_faults=args.faults)
    print(result.render())
    print(f"\nSpearman(mccabe, sites) = {result.rank_correlation('mccabe', 'sites'):.2f}")


def _cmd_ablation_triggers(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_trigger_ablation(_config(args), jobs=getattr(args, "jobs", 1),
                               snapshot=getattr(args, "snapshot", "off"),
                               engine=getattr(args, "engine", "simple")).render())


def _cmd_ablation_hardware(args):
    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    print(run_hardware_comparison(_config(args), jobs=getattr(args, "jobs", 1),
                                  snapshot=getattr(args, "snapshot", "off"),
                                  engine=getattr(args, "engine", "simple")).render())


def _cmd_plan_report(args):
    from .planning import build_plan_report, render_plan_report

    try:
        report = build_plan_report(args.journal_dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_plan_report(report))
    return 0


def _cmd_trace_report(args):
    from .observability import build_trace_report, export_perfetto, render_trace_report

    try:
        report = build_trace_report(args.journal_dir)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(render_trace_report(report))
    if args.perfetto:
        events = export_perfetto(report, args.perfetto)
        print(f"\nwrote {events} trace events to {args.perfetto}")
    return 0


def _cmd_disasm(args):
    from .isa import listing
    from .workloads import get_workload

    workload = get_workload(args.program)
    compiled = workload.compiled(_opt(args))
    symbols = {
        name: address
        for name, address in compiled.executable.symbols.items()
        if not name.startswith(".")
    }
    print(listing(compiled.executable.code, compiled.executable.code_base, symbols))


def _cmd_coverage(args):
    import random

    from .machine import boot
    from .swifi import CoverageSession
    from .workloads import get_workload

    workload = get_workload(args.program)
    compiled = workload.compiled(_opt(args))
    session = CoverageSession(compiled)
    rng = random.Random(_seed(args))
    merged_counts: dict[int, int] = {}
    for _ in range(args.inputs):
        machine = boot(compiled.executable, num_cores=workload.num_cores,
                       inputs=workload.generate_pokes(rng))
        _, report = CoverageSession(compiled).attach_and_run(machine)
        for address, count in report.counts.items():
            merged_counts[address] = merged_counts.get(address, 0) + count
    from .swifi.coverage import CoverageReport

    merged = CoverageReport(points=session.points, counts=merged_counts)
    print(f"{args.program}: {args.inputs} random input(s)")
    print(merged.render())
    print("\nhottest fault sites:")
    for point, count in merged.hot_spots(top=8):
        print(f"  {count:>8}x  {point.kind:10s} {point.function}:{point.line}")


def _cmd_inject(args):
    from .emulation import FaultLocator
    from .emulation.rules import generate_error_set
    from .lang import compile_source

    with open(args.file, "r", encoding="utf-8") as handle:
        source = handle.read()
    compiled = compile_source(source, args.file, opt_level=_opt(args))
    locator = FaultLocator(compiled)
    print(f"{args.file}: {compiled.source_lines} lines")
    print(f"  assignment locations: {len(locator.assignment_locations())}")
    print(f"  checking locations:   {len(locator.checking_locations())}")
    rng = random.Random(_seed(args))
    for klass in ("assignment", "checking"):
        error_set = generate_error_set(
            compiled, klass, max_locations=args.locations, rng=rng
        )
        print(f"\n{klass} error set ({len(error_set.faults)} faults):")
        for spec in error_set.faults:
            print(f"  {spec.describe()}")


def _cmd_verify_fuzz(args):
    from .verify import FuzzConfig, run_fuzz

    progress = None
    if not args.quiet:
        progress = lambda message: print(message, file=sys.stderr)  # noqa: E731
    extra = {}
    if args.jobs is not None:
        extra["jobs_axis"] = (1, args.jobs) if args.jobs > 1 else (1,)
    if _opt(args):
        extra["opt_axis"] = (0, 1)
    report = run_fuzz(FuzzConfig(
        seed=args.seed,
        cases=args.cases,
        time_budget=args.time_budget,
        faults_per_program=args.faults,
        inputs_per_program=args.inputs,
        record_tier=not args.state_only,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
        progress=progress,
        tier=args.tier,
        journal_dir=args.journal_dir,
        resume=args.resume,
        trace=args.trace,
        **extra,
    ))
    print("\n".join(report.summary_lines()))
    return 0 if report.ok() else 1


def _cmd_srcfi_sites(args):
    from .srcfi import SourceLocator
    from .workloads import get_workload

    workload = get_workload(args.program)
    locator = SourceLocator(workload.compiled())
    lines = locator.describe()
    print(f"{args.program}: {len(lines)} mutation site(s)")
    for line in lines:
        print(f"  {line}")


def _cmd_srcfi_campaign(args):
    from .swifi.outcomes import MODE_ORDER

    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    classes = tuple(args.classes) if args.classes else ("assignment", "checking")
    results = run_section6(
        _config(args),
        programs=args.programs,
        classes=classes,
        jobs=args.jobs,
        journal_dir=args.journal_dir,
        resume=args.resume,
        trace=args.trace,
        engine=args.engine,
        tier=args.tier,
    )
    for campaign in results.campaigns:
        total = len(campaign.records) or 1
        tallies = "  ".join(
            f"{mode.value}="
            f"{100.0 * sum(1 for r in campaign.records if r.mode == mode) / total:.1f}%"
            for mode in MODE_ORDER
        )
        inputs = len(campaign.records) // campaign.fault_count \
            if campaign.fault_count else 0
        print(f"{campaign.program}/{campaign.klass}: "
              f"{campaign.fault_count} faults x {inputs} input(s) "
              f"({len(campaign.records)} runs)")
        print(f"  {tallies}")


def _cmd_srcfi_compare(args):
    from .experiments import run_srcfi_compare

    exit_code = _reject_paper_opt(args)
    if exit_code is not None:
        return exit_code
    progress = None
    if not args.quiet:
        progress = lambda done, total: print(  # noqa: E731
            f"  pair {done}/{total}", file=sys.stderr)
    report = run_srcfi_compare(
        _config(args),
        programs=args.programs,
        max_sites=args.max_sites,
        include_real=not args.no_real,
        jobs=args.jobs,
        journal_dir=args.journal_dir,
        resume=args.resume,
        trace=args.trace,
        engine=args.engine,
        progress=progress,
    )
    rendered = report.render()
    print(rendered)
    if args.out is not None:
        os.makedirs(args.out, exist_ok=True)
        json_path = os.path.join(args.out, "srcfi_agreement.json")
        text_path = os.path.join(args.out, "srcfi_agreement.txt")
        report.to_json(json_path)
        with open(text_path, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"\nwrote {json_path} and {text_path}")


def _cmd_verify_replay(args):
    from .verify import replay_artifact

    try:
        divergence = replay_artifact(args.artifact)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if divergence is None:
        print("divergence no longer reproduces")
        return 0
    print(divergence.summary())
    return 1


def _cmd_serve(args):
    from .service import run_broker

    return run_broker(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        lease_timeout=args.lease_timeout,
        max_attempts=args.max_attempts,
        port_file=args.port_file,
    )


def _cmd_work(args):
    import threading

    from .service import BrokerUnavailable, ServiceWorker, worker_main

    try:
        if args.workers == 1:
            return worker_main(
                args.broker,
                worker_id=args.worker_id,
                poll_interval=args.poll_interval,
                max_idle=args.max_idle,
            )
        # N workers in one process: independent lease loops with distinct
        # worker ids; runs execute under the GIL but lease bookkeeping,
        # heartbeats and reporting all overlap, which is what matters on
        # a one-core host driving a remote broker.
        base = args.worker_id or f"w-{os.uname().nodename}-{os.getpid()}"
        workers = [
            ServiceWorker(
                args.broker,
                worker_id=f"{base}-t{index}",
                poll_interval=args.poll_interval,
                max_idle=args.max_idle,
            )
            for index in range(args.workers)
        ]
        failures = []

        def run_worker(worker):
            try:
                worker.run()
            except BrokerUnavailable as error:
                failures.append(error)

        threads = [
            threading.Thread(target=run_worker, args=(worker,), daemon=True)
            for worker in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise BrokerUnavailable(failures[0])
        return 0
    except BrokerUnavailable as error:
        print(f"error: broker unreachable: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


def _cmd_submit(args):
    from .service import BrokerRequestError, BrokerUnavailable, run_submit
    from .service.protocol import ProtocolError

    if getattr(args, "tier", "machine") == "source":
        print(
            "error: --tier source is not supported by the campaign service "
            "(the source tier compiles mutants locally; the broker shards "
            "machine-tier campaigns only)",
            file=sys.stderr,
        )
        return 2
    try:
        return run_submit(
            args.broker,
            config=_config(args),
            programs=args.programs,
            shard_size=args.shard_size,
            engine=args.engine,
            snapshot=args.snapshot,
            trace=args.trace,
            journal_dir=args.journal_dir,
            wait=not args.no_wait,
            timeout=args.timeout,
            quiet=args.quiet,
        )
    except BrokerUnavailable as error:
        print(f"error: broker unreachable: {error}", file=sys.stderr)
        return 1
    except (BrokerRequestError, ProtocolError) as error:
        print(f"error: broker rejected request: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Emulation of Software Faults by "
            "Software Fault Injection' (DSN 2000)."
        ),
    )
    # The flags are accepted both before and after the subcommand; the
    # SUPPRESS default keeps a subcommand occurrence from clobbering a
    # value parsed at the top level.
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument("--scale", type=float, default=argparse.SUPPRESS,
                        help="multiply every run count (default 1.0)")
    shared.add_argument("--seed", type=int, default=argparse.SUPPRESS,
                        help="master RNG seed (default 2000)")
    shared.add_argument("--opt", type=_opt_level, default=argparse.SUPPRESS,
                        metavar="{0,1}",
                        help="compiler optimization level (default 0; the "
                             "paper tables/figures require 0)")
    parser = argparse.ArgumentParser(
        prog="repro",
        parents=[shared],
        description=parser.description,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", parents=[shared], help="Table 1: real-fault failure symptoms").set_defaults(fn=_cmd_table1)
    sub.add_parser("table2", parents=[shared], help="Table 2: target programs").set_defaults(fn=_cmd_table2)
    sub.add_parser("table3", parents=[shared], help="Table 3: injected error types").set_defaults(fn=_cmd_table3)
    sub.add_parser("table4", parents=[shared], help="Table 4: fault-location counts").set_defaults(fn=_cmd_table4)
    sub.add_parser("sec5", parents=[shared], help="S5: real-fault emulation verdicts").set_defaults(fn=_cmd_sec5)

    figures = sub.add_parser("figures", parents=[shared], help="Figures 7-10 (runs the S6 campaigns)")
    figures.add_argument("--programs", nargs="*", default=None,
                         help="restrict to these Table-2 programs")
    figures.add_argument("--jobs", type=_positive_int, default=1,
                         help="worker processes per campaign (default 1 = serial; "
                              "results are bit-identical at any value)")
    figures.add_argument("--journal-dir", default=None,
                         help="journal completed runs here so a killed campaign "
                              "can be resumed")
    figures.add_argument("--resume", action="store_true",
                         help="continue from the journal in --journal-dir "
                              "instead of re-running journaled runs")
    figures.add_argument("--telemetry-json", default=None,
                         help="write per-campaign telemetry snapshots "
                              "(runs/sec, tallies, ETA) to this JSON file")
    figures.add_argument("--snapshot", choices=("off", "auto", "verify"),
                         default="off",
                         help="golden-run snapshot fast path: restore at the "
                              "trigger instead of rebooting per run (auto), "
                              "or cross-check both paths (verify); outcomes "
                              "are bit-identical to off")
    figures.add_argument("--engine", choices=("simple", "block", "trace"),
                         default="simple",
                         help="machine execution engine: 'block' compiles "
                              "straight-line RX32 runs into Python closures "
                              "(~2.3x faster, bit-identical results)")
    figures.add_argument("--trace", action="store_true",
                         help="record per-run span traces (phase timings, "
                              "snapshot fast-path accounting) into the journal "
                              "and telemetry; read back with 'repro trace "
                              "report'")
    figures.add_argument("--prune", action="store_true",
                         help="campaign planner: statically prove faults "
                              "dormant or invisible against the golden-run "
                              "access trace and synthesize their records "
                              "without booting (bit-identical results)")
    figures.add_argument("--memoize", action="store_true",
                         help="campaign planner: replay post-trigger outcomes "
                              "from the memo cache instead of re-executing "
                              "identical injections (bit-identical results)")
    figures.add_argument("--memo-dir", default=None,
                         help="persist the outcome memo here so later "
                              "invocations (and resumes) start warm; "
                              "requires --memoize")
    figures.add_argument("--plan-verify", type=float, default=0.0,
                         metavar="FRACTION",
                         help="re-execute this fraction of planner-answered "
                              "runs and fail loudly on any mismatch "
                              "(0.0-1.0; default 0)")
    figures.add_argument("--tier", choices=("machine", "source"),
                         default="machine",
                         help="injection tier: 'machine' rewrites Table-3 "
                              "errors into the running binary, 'source' "
                              "compiles repro.srcfi mutation operators into "
                              "mutant binaries (snapshot/planner are "
                              "machine-tier-only)")
    figures.set_defaults(fn=_cmd_figures)

    trace = sub.add_parser(
        "trace", parents=[shared],
        help="inspect per-run traces recorded with --trace",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report", parents=[shared],
        help="per-phase time breakdown and fallback-reason table of a "
             "journal directory (or a directory of journals)",
    )
    trace_report.add_argument("journal_dir",
                              help="a campaign journal directory, or a parent "
                                   "directory holding one journal per campaign")
    trace_report.add_argument("--perfetto", metavar="FILE", default=None,
                              help="additionally export the span trees as "
                                   "Chrome/Perfetto trace-event JSON")
    trace_report.set_defaults(fn=_cmd_trace_report)

    plan = sub.add_parser(
        "plan", parents=[shared],
        help="inspect the campaign planner's pruned/memoized/executed split",
    )
    plan_sub = plan.add_subparsers(dest="plan_command", required=True)
    plan_report = plan_sub.add_parser(
        "report", parents=[shared],
        help="pruned/memoized/executed partition (with per-fault-class "
             "breakdown) of a journal directory, or a directory of journals",
    )
    plan_report.add_argument("journal_dir",
                             help="a campaign journal directory, or a parent "
                                  "directory holding one journal per campaign")
    plan_report.set_defaults(fn=_cmd_plan_report)

    metrics = sub.add_parser("ablation-metrics", parents=[shared], help="A1: metric-guided allocation")
    metrics.add_argument("--faults", type=int, default=100)
    metrics.set_defaults(fn=_cmd_ablation_metrics)

    triggers = sub.add_parser("ablation-triggers", parents=[shared],
                              help="A2: failure modes vs trigger When policy")
    triggers.add_argument("--jobs", type=_positive_int, default=1)
    triggers.add_argument("--snapshot", choices=("off", "auto", "verify"),
                          default="off")
    triggers.add_argument("--engine", choices=("simple", "block", "trace"),
                          default="simple")
    triggers.set_defaults(fn=_cmd_ablation_triggers)
    hardware = sub.add_parser("ablation-hardware", parents=[shared],
                              help="A3: software vs random hardware faults")
    hardware.add_argument("--jobs", type=_positive_int, default=1)
    hardware.add_argument("--snapshot", choices=("off", "auto", "verify"),
                          default="off")
    hardware.add_argument("--engine", choices=("simple", "block", "trace"),
                          default="simple")
    hardware.set_defaults(fn=_cmd_ablation_hardware)

    disasm = sub.add_parser("disasm", parents=[shared], help="disassemble a workload program")
    disasm.add_argument("program", help="workload name, e.g. C.team1")
    disasm.set_defaults(fn=_cmd_disasm)

    coverage = sub.add_parser(
        "coverage", parents=[shared],
        help="fault-site coverage of a workload under random inputs",
    )
    coverage.add_argument("program")
    coverage.add_argument("--inputs", type=int, default=3)
    coverage.set_defaults(fn=_cmd_coverage)

    inject = sub.add_parser("inject", parents=[shared], help="locate faults in your own MiniC file")
    inject.add_argument("file")
    inject.add_argument("--locations", type=int, default=3)
    inject.set_defaults(fn=_cmd_inject)

    verify = sub.add_parser(
        "verify",
        help="differential verification: fuzz the engine/snapshot/jobs matrix",
    )
    verify_sub = verify.add_subparsers(dest="verify_command", required=True)
    fuzz = verify_sub.add_parser(
        "fuzz",
        help="run a seeded differential fuzz campaign: generated programs x "
             "sampled faults across {engine} x {snapshot} x {jobs}, asserting "
             "bit-identical results; divergences are shrunk and persisted",
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; the whole run is a pure function "
                           "of it (default 0)")
    fuzz.add_argument("--cases", type=int, default=200,
                      help="state-tier differential comparisons to run "
                           "(default 200)")
    fuzz.add_argument("--time-budget", type=float, default=None, metavar="SECONDS",
                      help="stop after this much wall-clock time")
    fuzz.add_argument("--faults", type=int, default=8,
                      help="fault descriptors sampled per program (default 8)")
    fuzz.add_argument("--inputs", type=int, default=2,
                      help="input data sets per program (default 2)")
    fuzz.add_argument("--artifact-dir", default=None,
                      help="write divergence artifacts (JSON + standalone "
                           "repro script) into this directory")
    fuzz.add_argument("--state-only", action="store_true",
                      help="skip the record tier (campaign matrix with "
                           "snapshot policies and worker pools)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="report divergences without minimizing them")
    fuzz.add_argument("--quiet", action="store_true",
                      help="suppress per-program progress on stderr")
    fuzz.add_argument("--jobs", type=_positive_int, default=None,
                      help="widen the record-tier jobs axis to {1, JOBS} "
                           "(default: the oracle's standard axis)")
    fuzz.add_argument("--journal-dir", default=None,
                      help="journal cleanly finished programs here so a "
                           "killed fuzz campaign can be resumed")
    fuzz.add_argument("--resume", action="store_true",
                      help="skip programs journaled in --journal-dir, "
                           "keeping their counts")
    fuzz.add_argument("--trace", action="store_true",
                      help="accepted for flag uniformity; the fuzzer records "
                           "no per-run span traces")
    fuzz.add_argument("--tier", choices=("machine", "source"),
                      default="machine",
                      help="fuzz the machine tier (sampled Table-3 "
                           "descriptors) or the source tier (srcfi mutants: "
                           "engine conformance, revert oracle, source-"
                           "campaign record matrix)")
    fuzz.add_argument("--opt", type=_opt_level, default=0, metavar="{0,1}",
                      help="1 widens the oracle with the compiler axis: "
                           "every generated program is also compiled at O1 "
                           "and must match the O0 binary's console bytes, "
                           "exit code and outcome on every engine "
                           "(default 0 = off)")
    fuzz.set_defaults(fn=_cmd_verify_fuzz)
    replay = verify_sub.add_parser(
        "replay",
        help="re-run one divergence artifact; exits 1 while it reproduces, "
             "0 once the configurations agree again",
    )
    replay.add_argument("artifact", help="path to a divergence-*.json artifact")
    replay.set_defaults(fn=_cmd_verify_replay)

    srcfi = sub.add_parser(
        "srcfi", parents=[shared],
        help="source-level fault injection: mutation sites, source-tier "
             "campaigns, and the two-tier agreement study",
    )
    srcfi_sub = srcfi.add_subparsers(dest="srcfi_command", required=True)
    srcfi_sites = srcfi_sub.add_parser(
        "sites", parents=[shared],
        help="list every (operator, site) mutation point of a workload program",
    )
    srcfi_sites.add_argument("program", help="workload name, e.g. JB.team6")
    srcfi_sites.set_defaults(fn=_cmd_srcfi_sites)

    srcfi_campaign = srcfi_sub.add_parser(
        "campaign", parents=[shared],
        help="run S6-style campaigns at either tier and print "
             "failure-mode tallies",
    )
    srcfi_campaign.add_argument("--programs", nargs="*", default=None,
                                help="restrict to these Table-2 programs")
    srcfi_campaign.add_argument(
        "--classes", nargs="*", default=None,
        choices=("assignment", "checking", "algorithm", "function"),
        help="fault classes to inject (default: assignment checking; "
             "algorithm/function are source-tier-only)")
    srcfi_campaign.add_argument("--jobs", type=_positive_int, default=1,
                                help="worker processes per campaign")
    srcfi_campaign.add_argument("--journal-dir", default=None,
                                help="journal completed runs here for --resume")
    srcfi_campaign.add_argument("--resume", action="store_true",
                                help="skip runs journaled in --journal-dir")
    srcfi_campaign.add_argument("--trace", action="store_true",
                                help="machine tier: record per-run span traces "
                                     "(accepted no-op at the source tier)")
    srcfi_campaign.add_argument("--engine", choices=("simple", "block", "trace"),
                                default="simple",
                                help="machine execution engine")
    srcfi_campaign.add_argument("--tier", choices=("machine", "source"),
                                default="source",
                                help="injection tier (default source)")
    srcfi_campaign.set_defaults(fn=_cmd_srcfi_campaign)

    srcfi_compare = srcfi_sub.add_parser(
        "compare", parents=[shared],
        help="differential emulation-accuracy study: every source fault vs "
             "its best machine-tier counterpart on the same inputs, "
             "agreement aggregated per ODC class (the paper's S5 split)",
    )
    srcfi_compare.add_argument("--programs", nargs="*", default=None,
                               help="restrict to these Table-2 programs")
    srcfi_compare.add_argument("--max-sites", type=_positive_int, default=4,
                               help="cap sites per (program, operator) "
                                    "(default 4)")
    srcfi_compare.add_argument("--no-real", action="store_true",
                               help="skip the S5 real-fault agreement section")
    srcfi_compare.add_argument("--jobs", type=_positive_int, default=1,
                               help="worker processes over (program, fault) "
                                    "pairs")
    srcfi_compare.add_argument("--journal-dir", default=None,
                               help="journal completed pairs here for --resume")
    srcfi_compare.add_argument("--resume", action="store_true",
                               help="skip pairs journaled in --journal-dir")
    srcfi_compare.add_argument("--trace", action="store_true",
                               help="accepted for flag uniformity; the pair "
                                    "runner records no span traces")
    srcfi_compare.add_argument("--engine", choices=("simple", "block", "trace"),
                               default="simple",
                               help="machine execution engine for both tiers")
    srcfi_compare.add_argument("--out", default=None, metavar="DIR",
                               help="additionally write srcfi_agreement.json "
                                    "and srcfi_agreement.txt into this "
                                    "directory")
    srcfi_compare.add_argument("--quiet", action="store_true",
                               help="suppress per-pair progress on stderr")
    srcfi_compare.set_defaults(fn=_cmd_srcfi_compare)

    serve = sub.add_parser(
        "serve",
        help="run the campaign broker: accept submissions, shard the "
             "fault x case matrix, lease shards to workers, merge the "
             "returned journal segments",
    )
    serve.add_argument("--state-dir", required=True,
                       help="durable broker state: campaign manifests, "
                            "journal segments, merged journals (restart the "
                            "broker on the same directory to resume)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=_port_int, default=0,
                       help="TCP port, or 0 to bind an ephemeral port "
                            "(announced on stderr and via --port-file)")
    serve.add_argument("--lease-timeout", type=_positive_float, default=30.0,
                       metavar="SECONDS",
                       help="missed-heartbeat window before a shard lease "
                            "expires and the shard is re-queued for "
                            "stealing (default 30)")
    serve.add_argument("--max-attempts", type=_positive_int, default=None,
                       help="give up on a shard after this many leases "
                            "(default 16); its runs are recorded as failed")
    serve.add_argument("--port-file", default=None, metavar="FILE",
                       help="write the bound port here once listening "
                            "(for scripts wrapping --port 0)")
    serve.set_defaults(fn=_cmd_serve)

    work = sub.add_parser(
        "work",
        help="run campaign workers against a broker: lease shards, execute "
             "them with the standard run loop, stream results back",
    )
    work.add_argument("broker", metavar="BROKER_URL",
                      help="broker base URL, e.g. http://127.0.0.1:8642")
    work.add_argument("--workers", type=_positive_int, default=1,
                      help="worker loops to run in this process "
                           "(default 1)")
    work.add_argument("--worker-id", default=None,
                      help="stable worker identity for lease bookkeeping "
                           "(default: host and pid derived)")
    work.add_argument("--poll-interval", type=_positive_float, default=0.5,
                      metavar="SECONDS",
                      help="idle re-poll interval (default 0.5)")
    work.add_argument("--max-idle", type=_positive_float, default=None,
                      metavar="SECONDS",
                      help="exit 0 after this long with no work "
                           "(default: keep polling forever)")
    work.set_defaults(fn=_cmd_work)

    submit = sub.add_parser(
        "submit", parents=[shared],
        help="submit the S6 campaigns to a broker, follow progress, and "
             "download the merged journals",
    )
    submit.add_argument("broker", metavar="BROKER_URL",
                        help="broker base URL, e.g. http://127.0.0.1:8642")
    submit.add_argument("--programs", nargs="*", default=None,
                        help="restrict to these Table-2 programs")
    submit.add_argument("--shard-size", type=_positive_int, default=None,
                        help="runs per shard (default: matrix split across "
                             "the expected worker count)")
    submit.add_argument("--engine", choices=("simple", "block", "trace"),
                        default="simple",
                        help="machine execution engine used by the workers")
    submit.add_argument("--snapshot", choices=("off", "auto", "verify"),
                        default="off",
                        help="golden-run snapshot policy used by the workers")
    submit.add_argument("--trace", action="store_true",
                        help="record per-run span traces into the merged "
                             "journal")
    submit.add_argument("--journal-dir", default=None,
                        help="download each campaign's merged journal into "
                             "this directory (bit-identical to a local "
                             "--jobs 1 journal)")
    submit.add_argument("--no-wait", action="store_true",
                        help="submit and exit without waiting for completion")
    submit.add_argument("--timeout", type=_positive_float, default=None,
                        metavar="SECONDS",
                        help="fail if a campaign is still running after this "
                             "long (default: wait forever)")
    submit.add_argument("--quiet", action="store_true",
                        help="suppress submission/progress lines on stderr")
    submit.add_argument("--tier", choices=("machine", "source"),
                        default="machine",
                        help="injection tier; the service is machine-tier "
                             "only (source mutants compile locally)")
    submit.set_defaults(fn=_cmd_submit)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    status = args.fn(args)
    return 0 if status is None else int(status)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

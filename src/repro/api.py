"""repro.api — the supported public surface in one stable module.

Examples, the README and downstream scripts import from here instead of
reaching into five deep module paths; anything re-exported below is the
API this project commits to keeping stable.  Typical session::

    from repro.api import (
        CampaignConfig, CampaignRunner, InputCase, boot, compile_source,
    )

    compiled = compile_source(source, "demo.c")
    runner = CampaignRunner(compiled, cases)
    result = runner.run(faults, config=CampaignConfig(jobs=4, snapshot="auto"))

Grouped by layer:

* **machine** — :func:`boot`, :class:`Machine`, :class:`Executable`,
  snapshot types;
* **lang** — :func:`compile_source`, :class:`CompiledProgram`;
* **swifi** — the What/Where/Which/When fault model, the
  :class:`InjectionSpec` tier hierarchy (:class:`MachineFault` /
  :class:`SourceFault`), the :class:`InjectionSession` engine, outcome
  classification, and the campaign layer (:class:`CampaignRunner`,
  :class:`CampaignConfig`, snapshot fast-path controls,
  ``CampaignConfig(tier="source")`` routing);
* **srcfi** — the source-level injection tier: ODC-typed mutation
  operators, the :class:`SourceLocator` site enumerator, mutant
  realization (:func:`realize_source_fault`), and the source campaign
  executor;
* **emulation** — :class:`FaultLocator` and the §6.3
  :func:`generate_error_set` rules;
* **experiments** — :class:`ExperimentConfig` and the per-table/figure
  entry points;
* **orchestrator telemetry** — the sinks accepted by
  ``CampaignConfig(telemetry=...)``;
* **observability** — run-level tracing controls and the journal-backed
  trace reports behind ``repro trace report``;
* **planning** — the campaign planner behind
  ``CampaignConfig(prune=..., memoize=...)``: dormancy proving, outcome
  memoization, and the plan reports behind ``repro plan report``;
* **service** — the distributed campaign service behind ``repro serve``
  / ``repro work`` / ``repro submit``: the durable :class:`BrokerState`
  and its HTTP front-end, the lease/execute/report worker loop, and the
  fingerprint-keyed segment merge that reproduces a local ``--jobs 1``
  journal bit-for-bit;
* **verify** — the differential verification subsystem behind
  ``repro verify fuzz``: seeded program generation, fault sampling, the
  cross-configuration oracle, shrinking and divergence artifacts.
"""

from __future__ import annotations

from .analysis import render_stacked_bars
from .emulation import (
    ASSIGNMENT_CLASS,
    CHECKING_CLASS,
    FaultLocator,
    NotEmulableError,
)
from .emulation.operators import swap_error_type
from .emulation.rules import GeneratedErrorSet, generate_both_classes, generate_error_set
from .experiments import (
    CompareReport,
    ExperimentConfig,
    PairOutcome,
    RealFaultOutcome,
    Section6Results,
    fig7,
    fig8,
    fig9,
    fig10,
    run_hardware_comparison,
    run_metric_guidance,
    run_sec5,
    run_section6,
    run_srcfi_compare,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_trigger_ablation,
)
from .lang import CompiledProgram, compile_source
from .metrics import allocate
from .machine import (
    Executable,
    Machine,
    MachineBaseline,
    MachineSnapshot,
    RunResult,
    boot,
)
from .observability import (
    TraceReport,
    TraceStats,
    build_trace_report,
    disable_tracing,
    enable_tracing,
    export_perfetto,
    render_trace_report,
    tracing_enabled,
)
from .planning import (
    PROVENANCE_EXECUTED,
    PROVENANCE_MEMOIZED,
    PROVENANCE_PRUNED,
    CampaignPlan,
    PlannerCache,
    PlanningDivergence,
    PlanReport,
    build_plan_report,
    plan_from_records,
    render_plan_report,
)
from .orchestrator import (
    CompositeSink,
    JsonTelemetryWriter,
    ProgressRenderer,
    TelemetrySink,
)
from .srcfi import (
    OPERATORS,
    MutationOperator,
    MutationSite,
    SourceFault,
    SourceLocator,
    SourceMutant,
    generate_source_error_set,
    get_operator,
    operators_for_class,
    realize_source_fault,
    run_source_campaign,
)
from .swifi import (
    ENGINE_BLOCK,
    ENGINE_SIMPLE,
    ENGINE_TRACE,
    ENGINES,
    MODE_BREAKPOINT,
    MODE_TRAP,
    RESULT_SCHEMA_VERSION,
    SNAPSHOT_AUTO,
    SNAPSHOT_OFF,
    SNAPSHOT_POLICIES,
    SNAPSHOT_VERIFY,
    TIER_MACHINE,
    TIER_SOURCE,
    TIERS,
    Action,
    Arithmetic,
    BitAnd,
    BitFlip,
    BitOr,
    CampaignConfig,
    CampaignError,
    CampaignResult,
    CampaignRunner,
    CodeWord,
    DataAccess,
    DebugResourceError,
    FailureMode,
    FaultSpec,
    FetchedWord,
    InjectionSession,
    InjectionSpec,
    InputCase,
    MachineFault,
    LegacyCampaignAPIWarning,
    LoadValue,
    MemoryWord,
    OpcodeFetch,
    RegisterTarget,
    RunRecord,
    SetValue,
    SnapshotCache,
    SnapshotDivergence,
    StoreValue,
    Temporal,
    WhenPolicy,
    classify,
    probe,
)
from .service import (
    BrokerClient,
    BrokerState,
    BrokerUnavailable,
    CampaignBundle,
    CampaignOptions,
    MergeConflict,
    ServiceError,
    ServiceWorker,
    campaign_id_for,
    merge_segment_files,
    run_broker,
    run_submit,
    worker_main,
    write_canonical_journal,
)
from .verify import (
    DifferentialOracle,
    Divergence,
    FaultDescriptor,
    FuzzConfig,
    FuzzReport,
    MachineFaultRecipe,
    MatrixConfig,
    generate_program,
    replay_artifact,
    run_fuzz,
    sample_descriptors,
    shrink_case,
)
from .workloads import get_workload, table2_workloads

__all__ = [
    # machine
    "boot",
    "Machine",
    "Executable",
    "RunResult",
    "MachineBaseline",
    "MachineSnapshot",
    # lang
    "compile_source",
    "CompiledProgram",
    # injection-tier hierarchy (InjectionSpec, tier="machine"|"source")
    "InjectionSpec",
    "MachineFault",
    "SourceFault",
    "TIER_MACHINE",
    "TIER_SOURCE",
    "TIERS",
    # swifi fault model (What / Where / Which / When)
    "FaultSpec",
    "Action",
    "WhenPolicy",
    "OpcodeFetch",
    "DataAccess",
    "Temporal",
    "BitFlip",
    "BitAnd",
    "BitOr",
    "Arithmetic",
    "SetValue",
    "CodeWord",
    "MemoryWord",
    "RegisterTarget",
    "FetchedWord",
    "LoadValue",
    "StoreValue",
    "MODE_BREAKPOINT",
    "MODE_TRAP",
    "probe",
    # swifi engine + outcomes
    "InjectionSession",
    "DebugResourceError",
    "FailureMode",
    "classify",
    # campaign layer
    "CampaignRunner",
    "CampaignConfig",
    "CampaignResult",
    "CampaignError",
    "InputCase",
    "RunRecord",
    "LegacyCampaignAPIWarning",
    "RESULT_SCHEMA_VERSION",
    "ENGINE_BLOCK",
    "ENGINE_SIMPLE",
    "ENGINE_TRACE",
    "ENGINES",
    "SNAPSHOT_OFF",
    "SNAPSHOT_AUTO",
    "SNAPSHOT_VERIFY",
    "SNAPSHOT_POLICIES",
    "SnapshotCache",
    "SnapshotDivergence",
    # emulation (Table 3 / §6.3)
    "FaultLocator",
    "GeneratedErrorSet",
    "generate_error_set",
    "generate_both_classes",
    "ASSIGNMENT_CLASS",
    "CHECKING_CLASS",
    "NotEmulableError",
    "swap_error_type",
    # srcfi (source-level injection tier)
    "OPERATORS",
    "MutationOperator",
    "MutationSite",
    "SourceLocator",
    "SourceMutant",
    "generate_source_error_set",
    "get_operator",
    "operators_for_class",
    "realize_source_fault",
    "run_source_campaign",
    # workloads
    "get_workload",
    "table2_workloads",
    # experiments
    "ExperimentConfig",
    "Section6Results",
    "run_section6",
    "run_sec5",
    "run_srcfi_compare",
    "CompareReport",
    "PairOutcome",
    "RealFaultOutcome",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_trigger_ablation",
    "run_hardware_comparison",
    "run_metric_guidance",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    # metrics + analysis helpers used throughout examples/
    "allocate",
    "render_stacked_bars",
    # telemetry sinks (CampaignConfig.telemetry)
    "TelemetrySink",
    "ProgressRenderer",
    "JsonTelemetryWriter",
    "CompositeSink",
    # observability (CampaignConfig.trace / repro trace report)
    "TraceReport",
    "TraceStats",
    "build_trace_report",
    "render_trace_report",
    "export_perfetto",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    # planning (CampaignConfig.prune/.memoize / repro plan report)
    "PlannerCache",
    "PlanningDivergence",
    "CampaignPlan",
    "PlanReport",
    "PROVENANCE_EXECUTED",
    "PROVENANCE_MEMOIZED",
    "PROVENANCE_PRUNED",
    "build_plan_report",
    "plan_from_records",
    "render_plan_report",
    # service (repro serve / work / submit)
    "BrokerClient",
    "BrokerState",
    "BrokerUnavailable",
    "CampaignBundle",
    "CampaignOptions",
    "MergeConflict",
    "ServiceError",
    "ServiceWorker",
    "campaign_id_for",
    "merge_segment_files",
    "run_broker",
    "run_submit",
    "worker_main",
    "write_canonical_journal",
    # verify (repro verify fuzz / replay)
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "DifferentialOracle",
    "Divergence",
    "MatrixConfig",
    "FaultDescriptor",
    "MachineFaultRecipe",
    "generate_program",
    "sample_descriptors",
    "shrink_case",
    "replay_artifact",
]

"""repro — reproduction of *On the Emulation of Software Faults by
Software Fault Injection* (Madeira, Costa, Vieira; DSN 2000).

Layer map (bottom-up):

* :mod:`repro.isa` / :mod:`repro.machine` — the RX32 simulated target
  system (stands in for the Parsytec PowerXplorer / PowerPC 601 / Parix);
* :mod:`repro.lang` — the MiniC compiler the workload programs are built
  with, including the statement-anchor debug info the injector consumes;
* :mod:`repro.swifi` — the Xception-style injector: fault model
  (What/Where/Which/When), debug-unit triggers, outcome classification,
  campaign engine;
* :mod:`repro.odc` — ODC defect types, triggers and field data;
* :mod:`repro.emulation` — Table-3 error types, the fault locator, the
  §6.3 rule engine and the §5 real-fault emulation strategies;
* :mod:`repro.metrics` — complexity metrics and metric-guided allocation;
* :mod:`repro.workloads` — the contest programs (Camelot, JamesB, SOR),
  oracles, input models, and the seven real faults;
* :mod:`repro.experiments` — one driver per table/figure of the paper;
* :mod:`repro.analysis` — tables, stacked-bar figures, statistics.

Quick start::

    from repro.experiments import ExperimentConfig, run_sec5
    print(run_sec5(ExperimentConfig.tiny()).render())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Crash-safe file persistence shared by results and the campaign journal.

A campaign interrupted mid-write must never leave a truncated artefact
behind: results files are replayed by ``--resume`` and by the figure
benchmarks (``REPRO_REUSE_CAMPAIGN``), so a half-written JSON file would
poison later runs.  Both :meth:`CampaignResult.to_json` and the
orchestrator's journal manifest therefore go through the same helper:
write the full payload to a temporary file *in the same directory* (so
``os.replace`` stays on one filesystem and is atomic), fsync, then
replace the target in one step.

Append-only JSON-lines journals (the campaign runs file, the planner's
on-disk outcome memos, the verify fuzzer's case journal, the srcfi
campaign journal) have the complementary hazard: a crash mid-append
leaves an unterminated final line.  Readers tolerate that torn tail,
but a *writer* re-opening in append mode would fuse its first new
record onto the partial line, corrupting two records at once.
:func:`trim_partial_tail` is the repair every such writer applies
before appending to a journal it did not create in this process.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* so readers see either the old or the new file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: object, *, indent: int | None = None) -> None:
    """Serialise *payload* and atomically write it to *path*."""
    atomic_write_text(path, json.dumps(payload, indent=indent))


def trim_partial_tail(path: str | os.PathLike) -> None:
    """Truncate an unterminated final line left by a crash mid-append.

    No-op for missing files, empty files and files whose last byte is a
    newline.  Otherwise truncates back to just after the last newline
    (to zero bytes when the whole file is one partial line), so the next
    append starts a fresh, well-formed record.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return
    with open(path, "rb") as handle:
        data = handle.read()
    if not data or data.endswith(b"\n"):
        return
    keep = data.rfind(b"\n") + 1  # 0 when the whole file is one partial line
    with open(path, "r+b") as handle:
        handle.truncate(keep)

"""Crash-safe file persistence shared by results and the campaign journal.

A campaign interrupted mid-write must never leave a truncated artefact
behind: results files are replayed by ``--resume`` and by the figure
benchmarks (``REPRO_REUSE_CAMPAIGN``), so a half-written JSON file would
poison later runs.  Both :meth:`CampaignResult.to_json` and the
orchestrator's journal manifest therefore go through the same helper:
write the full payload to a temporary file *in the same directory* (so
``os.replace`` stays on one filesystem and is atomic), fsync, then
replace the target in one step.
"""

from __future__ import annotations

import json
import os
import tempfile


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* so readers see either the old or the new file."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, payload: object, *, indent: int | None = None) -> None:
    """Serialise *payload* and atomically write it to *path*."""
    atomic_write_text(path, json.dumps(payload, indent=indent))

"""Block-compiling execution engine: superinstruction closures for RX32.

The per-instruction interpreter in :mod:`repro.machine.cpu` pays fetch,
bounds check, decode-cache lookup and a long if/elif dispatch for every
retired instruction.  Campaign throughput lives in that loop, so this
module trades a one-time compilation cost for straight-line execution:

* :class:`BlockEngine` scans ``Machine.code_words`` into **basic blocks**
  — runs of straight-line instructions terminated by a branch
  (``b``/``bl``/``blr``/``bc``), cut before ``sc``/``trap`` and before
  any PC carrying a fetch watch;
* each block is compiled **once** into a specialized Python closure:
  operands are baked in as constants, registers live in Python locals
  for the duration of the block, branch targets and trap messages are
  precomputed, and ``regs``/``mem_data``/access-range checks are
  captured in the closure;
* the dispatch loop executes block-at-a-time from a cache keyed by the
  block's entry index, falling back to the per-instruction loop whenever
  a block would overrun the quantum / ``pause_at_instret`` budget, when
  the next PC carries a fetch watch, and for the entire remainder of a
  quantum while any data watch or one-shot load/store transform is
  armed — so every fault-injection hook keeps bit-identical semantics.

Compiled closures are invalidated by a generation check at every
``run_quantum`` entry and after every fetch-watch step: the machine's
``_code_gen`` counter (bumped by ``debug_write_code`` and by snapshot
restore of dirty code-mirror pages), the :class:`~repro.machine.debug.
DebugUnit` ``generation`` counter (bumped on every watch arm/disarm),
the memory's segment version, and the literal fetch-watch address set
(which callers such as the golden-run tracer mutate directly).

The Python *code objects* are cached at module level keyed by the raw
word tuple — a campaign boots a fresh machine per injection run, so
per-machine instantiation must be cheap: it is one factory call per
block, not a re-``compile()``.

Correctness contract (enforced by ``tests/test_engine_equivalence.py``):
for any program and any fault from the paper's Table-3 classes, the
block engine retires the same instructions, produces the same register
file, memory image, console and trap (with identical pc/core attribution
and retired-instruction count) as the simple interpreter.
"""

from __future__ import annotations

from struct import pack_into, unpack_from
from typing import TYPE_CHECKING

from ..isa.encoding import (
    COND_ALWAYS,
    COND_EQ,
    COND_GE,
    COND_GT,
    COND_LE,
    COND_LT,
    COND_NE,
    OP_ADDI,
    OP_ADDIS,
    OP_ANDI,
    OP_B,
    OP_BC,
    OP_BL,
    OP_BLR,
    OP_CMPI,
    OP_CMPLI,
    OP_LBZ,
    OP_LWZ,
    OP_MFLR,
    OP_MTLR,
    OP_MULLI,
    OP_ORI,
    OP_SLWI,
    OP_SRAWI,
    OP_SRWI,
    OP_STB,
    OP_STW,
    OP_XO,
    OP_XORI,
    XO_ADD,
    XO_AND,
    XO_CMP,
    XO_DIVW,
    XO_MODW,
    XO_MUL,
    XO_NEG,
    XO_NOR,
    XO_NOT,
    XO_OR,
    XO_SLW,
    XO_SRAW,
    XO_SRW,
    XO_SUB,
    XO_XOR,
)
from ..observability import trace as _trace
from .cpu import decode_fields
from .traps import ArithmeticTrap, Trap

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core
    from .machine import Machine

#: Longest straight-line run compiled into one closure.  Basic blocks in
#: compiled MiniC are far shorter; the cap only bounds codegen size.
MAX_BLOCK = 64

#: Cache entry for a PC that cannot head a compiled block (``sc``,
#: ``trap``, an illegal word): the dispatcher single-steps it instead.
_UNCOMPILED: tuple[int, None] = (0, None)

_TERMINATORS = frozenset({OP_B, OP_BL, OP_BLR, OP_BC})

_STRAIGHT = frozenset(
    {
        OP_ADDI,
        OP_ADDIS,
        OP_MULLI,
        OP_ANDI,
        OP_ORI,
        OP_XORI,
        OP_CMPI,
        OP_CMPLI,
        OP_SLWI,
        OP_SRWI,
        OP_SRAWI,
        OP_MFLR,
        OP_MTLR,
        OP_LWZ,
        OP_STW,
        OP_LBZ,
        OP_STB,
    }
)

_XO_VALID = frozenset(
    {
        XO_ADD,
        XO_SUB,
        XO_MUL,
        XO_CMP,
        XO_DIVW,
        XO_MODW,
        XO_AND,
        XO_OR,
        XO_XOR,
        XO_NOR,
        XO_SLW,
        XO_SRW,
        XO_SRAW,
        XO_NEG,
        XO_NOT,
    }
)

_COND_EXPR = {
    COND_LT: "cr < 0",
    COND_LE: "cr <= 0",
    COND_EQ: "cr == 0",
    COND_GE: "cr >= 0",
    COND_GT: "cr > 0",
    COND_NE: "cr != 0",
}

_M = "0xFFFFFFFF"


def _supported(decoded: tuple[int, int, int, int, int]) -> bool:
    """Whether codegen handles this word (illegal words fall to the
    interpreter, which raises the trap with full context)."""
    opcode = decoded[0]
    if opcode == OP_XO:
        return decoded[4] in _XO_VALID
    if opcode == OP_BC:
        return decoded[1] == COND_ALWAYS or decoded[1] in _COND_EXPR
    return opcode in _STRAIGHT or opcode in _TERMINATORS


class _Emitter:
    """Generates the body of one block closure from decoded words.

    Registers used anywhere in the block are hoisted into Python locals
    (``r5 = regs[5]``) and written back in the epilogue — and, because
    the block is straight-line, the locals hold the exact architectural
    state of the completed-instruction prefix at every point, which is
    what the trap handler writes back.  ``r0`` is modelled faithfully:
    it is a readable register until the first register-writing
    instruction zeroes it (matching the interpreter's ``regs[0] = 0``
    after every write), after which reads fold to the literal ``0``.
    """

    def __init__(self) -> None:
        self.prelude: list[str] = []  # factory-level constants
        self.lines: list[str] = []    # run() body
        self.used: dict[int, bool] = {}
        self.uses_cr = False
        self.uses_lr = False
        self.r0_zero = False
        self.can_trap = False

    # -- register plumbing ------------------------------------------------

    def read(self, reg: int) -> str:
        if reg == 0 and self.r0_zero:
            return "0"
        self.used[reg] = True
        return f"r{reg}"

    def write(self, rd: int, expr: str) -> None:
        self.used[rd] = True
        self.lines.append(f"r{rd} = {expr}")
        if rd == 0:
            self.lines.append("r0 = 0")
        elif not self.r0_zero:
            self.used[0] = True
            self.lines.append("r0 = 0")
        self.r0_zero = True

    def _signed(self, expr: str, temp: str) -> str:
        """Emit a signed-view temp of *expr*; returns the temp name."""
        self.lines.append(f"{temp} = {expr}")
        self.lines.append(f"if {temp} >= 0x80000000:")
        self.lines.append(f"    {temp} -= 0x100000000")
        return temp

    # -- straight-line instructions --------------------------------------

    def emit(self, k: int, decoded: tuple[int, int, int, int, int]) -> None:
        opcode, rd, ra, rb, imm = decoded
        if opcode == OP_ADDI:
            a = self.read(ra)
            self.write(rd, hex(imm & 0xFFFFFFFF) if a == "0"
                       else f"({a} + {imm}) & {_M}")
        elif opcode == OP_ADDIS:
            a = self.read(ra)
            self.write(rd, hex((imm << 16) & 0xFFFFFFFF) if a == "0"
                       else f"({a} + {imm << 16}) & {_M}")
        elif opcode == OP_MULLI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"({a} * {imm}) & {_M}")
        elif opcode == OP_ANDI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"{a} & {imm}")
        elif opcode == OP_ORI:
            a = self.read(ra)
            self.write(rd, hex(imm) if a == "0" else f"{a} | {imm}")
        elif opcode == OP_XORI:
            a = self.read(ra)
            self.write(rd, hex(imm) if a == "0" else f"{a} ^ {imm}")
        elif opcode == OP_CMPI:
            self.uses_cr = True
            a = self.read(ra)
            if a == "0":
                self.lines.append(
                    f"cr = {-1 if 0 < imm else (1 if 0 > imm else 0)}"
                )
            else:
                t = self._signed(a, "t")
                self.lines.append(
                    f"cr = -1 if {t} < {imm} else (1 if {t} > {imm} else 0)"
                )
        elif opcode == OP_CMPLI:
            self.uses_cr = True
            a = self.read(ra)
            if a == "0":
                self.lines.append(f"cr = {-1 if 0 < imm else 0}")
            else:
                self.lines.append(
                    f"cr = -1 if {a} < {imm} else (1 if {a} > {imm} else 0)"
                )
        elif opcode == OP_SLWI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"({a} << {imm & 31}) & {_M}")
        elif opcode == OP_SRWI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"{a} >> {imm & 31}")
        elif opcode == OP_SRAWI:
            a = self.read(ra)
            if a == "0":
                self.write(rd, "0")
            else:
                t = self._signed(a, "t")
                self.write(rd, f"({t} >> {imm & 31}) & {_M}")
        elif opcode == OP_MFLR:
            self.uses_lr = True
            self.write(rd, f"lr & {_M}")
        elif opcode == OP_MTLR:
            self.uses_lr = True
            self.lines.append(f"lr = {self.read(rd)}")
        elif opcode == OP_LWZ:
            self._emit_load_word(k, rd, ra, imm)
        elif opcode == OP_STW:
            self._emit_store_word(k, rd, ra, imm)
        elif opcode == OP_LBZ:
            self._emit_load_byte(k, rd, ra, imm)
        elif opcode == OP_STB:
            self._emit_store_byte(k, rd, ra, imm)
        elif opcode == OP_XO:
            self._emit_xo(k, rd, ra, rb, imm)
        else:  # pragma: no cover - the scanner only admits supported words
            raise AssertionError(f"unsupported opcode {opcode:#x} in block")

    # -- memory -----------------------------------------------------------

    def _effective_address(self, k: int, ra: int, imm: int) -> None:
        self.can_trap = True
        self.prelude.append(f"_pc{k} = entry_pc + {4 * k}")
        self.lines.append(f"ip = {k}")
        a = self.read(ra)
        if a == "0":
            self.lines.append(f"ea = {hex(imm & 0xFFFFFFFF)}")
        else:
            self.lines.append(f"ea = ({a} + {imm}) & {_M}")

    def _emit_load_word(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            "if ea & 3 == 0:",
            "    for lo, hi in read_ranges:",
            "        if lo <= ea < hi:",
            "            t = unpack_from('>I', mem_data, ea)[0]",
            "            break",
            "    else:",
            f"        t = read_word(ea, _pc{k})",
            "else:",
            f"    t = read_word(ea, _pc{k})",
        ]
        self.write(rd, "t")

    def _emit_store_word(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            f"t = {self.read(rd)}",
            "if ea & 3 == 0:",
            "    for lo, hi in write_ranges:",
            "        if lo <= ea < hi:",
            "            pack_into('>I', mem_data, ea, t)",
            "            break",
            "    else:",
            f"        write_word(ea, t, _pc{k})",
            "else:",
            f"    write_word(ea, t, _pc{k})",
        ]

    def _emit_load_byte(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            "for lo, hi in read_ranges:",
            "    if lo <= ea < hi:",
            "        t = mem_data[ea]",
            "        break",
            "else:",
            f"    t = read_byte(ea, _pc{k})",
        ]
        self.write(rd, "t")

    def _emit_store_byte(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            f"t = {self.read(rd)}",
            "for lo, hi in write_ranges:",
            "    if lo <= ea < hi:",
            "        mem_data[ea] = t & 0xFF",
            "        break",
            "else:",
            f"    write_byte(ea, t, _pc{k})",
        ]

    # -- the XO register-register group -----------------------------------

    def _emit_xo(self, k: int, rd: int, ra: int, rb: int, subop: int) -> None:
        a = self.read(ra)
        b = self.read(rb)
        if subop == XO_ADD:
            self.write(rd, f"({a} + {b}) & {_M}")
        elif subop == XO_SUB:
            self.write(rd, f"({a} - {b}) & {_M}")
        elif subop == XO_MUL:
            self.write(rd, f"({a} * {b}) & {_M}")
        elif subop == XO_CMP:
            self.uses_cr = True
            t = self._signed(a, "t")
            u = self._signed(b, "u")
            self.lines.append(
                f"cr = -1 if {t} < {u} else (1 if {t} > {u} else 0)"
            )
        elif subop in (XO_DIVW, XO_MODW):
            self.can_trap = True
            self.prelude.append(
                f"_msg{k} = 'integer division by zero at ' "
                f"+ format(entry_pc + {4 * k}, '#010x')"
            )
            self.lines.append(f"ip = {k}")
            t = self._signed(a, "t")
            u = self._signed(b, "u")
            self.lines += [
                f"if {u} == 0:",
                f"    raise ArithmeticTrap(_msg{k})",
                f"q = abs({t}) // abs({u})",
                f"if ({t} < 0) != ({u} < 0):",
                "    q = -q",
            ]
            if subop == XO_DIVW:
                self.write(rd, f"q & {_M}")
            else:
                self.write(rd, f"({t} - q * {u}) & {_M}")
        elif subop == XO_AND:
            self.write(rd, f"{a} & {b}")
        elif subop == XO_OR:
            self.write(rd, f"{a} | {b}")
        elif subop == XO_XOR:
            self.write(rd, f"{a} ^ {b}")
        elif subop == XO_NOR:
            self.write(rd, f"({a} | {b}) ^ {_M}")
        elif subop == XO_SLW:
            self.write(rd, f"({a} << ({b} & 31)) & {_M}")
        elif subop == XO_SRW:
            self.write(rd, f"{a} >> ({b} & 31)")
        elif subop == XO_SRAW:
            t = self._signed(a, "t")
            self.write(rd, f"({t} >> ({b} & 31)) & {_M}")
        elif subop == XO_NEG:
            self.write(rd, f"(-{a}) & {_M}")
        elif subop == XO_NOT:
            self.write(rd, f"{a} ^ {_M}")
        else:  # pragma: no cover - the scanner only admits valid subops
            raise AssertionError(f"unsupported XO subop {subop:#x} in block")

    # -- terminators -------------------------------------------------------

    def emit_terminal(self, k: int, decoded: tuple[int, int, int, int, int]) -> str:
        """The terminal branch; returns the ``return <next_pc>`` line."""
        opcode, rd, _ra, _rb, imm = decoded
        if opcode == OP_B:
            self.prelude.append(
                f"_t{k} = (entry_pc + {4 * (k + imm)}) & 0xFFFFFFFF"
            )
            return f"return _t{k}"
        if opcode == OP_BL:
            self.uses_lr = True
            self.prelude.append(
                f"_t{k} = (entry_pc + {4 * (k + imm)}) & 0xFFFFFFFF"
            )
            self.prelude.append(f"_l{k} = entry_pc + {4 * k + 4}")
            self.lines.append(f"lr = _l{k}")
            return f"return _t{k}"
        if opcode == OP_BLR:
            self.uses_lr = True
            return "return lr"
        assert opcode == OP_BC
        self.prelude.append(
            f"_t{k} = (entry_pc + {4 * (k + imm)}) & 0xFFFFFFFF"
        )
        if rd == COND_ALWAYS:
            return f"return _t{k}"
        self.uses_cr = True
        self.prelude.append(f"_f{k} = entry_pc + {4 * k + 4}")
        return f"return _t{k} if {_COND_EXPR[rd]} else _f{k}"

    def emit_fallthrough(self, count: int) -> str:
        """No terminal branch (block cut by a watch / ``sc`` / cap)."""
        self.prelude.append(f"_fall = entry_pc + {4 * count}")
        return "return _fall"


def _generate_source(decoded: tuple[tuple[int, int, int, int, int], ...]) -> str:
    """Python source of the factory producing one block's ``run`` closure."""
    emitter = _Emitter()
    count = len(decoded)
    terminal = decoded[-1][0] in _TERMINATORS
    for k in range(count - 1 if terminal else count):
        emitter.emit(k, decoded[k])
    if terminal:
        ret = emitter.emit_terminal(count - 1, decoded[count - 1])
    else:
        ret = emitter.emit_fallthrough(count)

    hoists = [f"r{reg} = regs[{reg}]" for reg in emitter.used]
    writebacks = [f"regs[{reg}] = r{reg}" for reg in emitter.used]
    if emitter.uses_cr:
        hoists.append("cr = core.cr")
        writebacks.append("core.cr = cr")
    if emitter.uses_lr:
        hoists.append("lr = core.lr")
        writebacks.append("core.lr = lr")

    out = [
        "def factory(entry_pc, mem_data, read_ranges, write_ranges, machine,",
        "            read_word, write_word, read_byte, write_byte,",
        "            unpack_from, pack_into, ArithmeticTrap, Trap):",
    ]
    out += ["    " + line for line in emitter.prelude]
    out.append("    def run(core, regs):")
    if emitter.can_trap:
        out.append("        ip = 0")
        out.append("        try:")
        inner = "            "
    else:
        inner = "        "
    for line in hoists + emitter.lines + writebacks:
        out.append(inner + line)
    out.append(inner + ret)
    if emitter.can_trap:
        out.append("        except Trap as err:")
        handler = "            "
        for line in writebacks:
            out.append(handler + line)
        out += [
            handler + "n = ip + 1",
            handler + "core.instret += n",
            handler + "machine.instret += n",
            handler + "pc = entry_pc + ip * 4",
            handler + "core.pc = pc",
            handler + "if err.pc is None:",
            handler + "    err.pc = pc",
            handler + "if err.core_id is None:",
            handler + "    err.core_id = core.core_id",
            handler + "raise",
        ]
    out.append("    return run")
    out.append("")
    return "\n".join(out)


#: Code-object cache: raw word tuple → compiled factory.  Shared across
#: machines (and therefore across the campaign's per-run fresh boots), so
#: ``compile()`` is paid once per distinct block, not once per run.
_FACTORY_CACHE: dict[tuple[int, ...], object] = {}

#: Backstop against pathological churn (randomised fuzz programs); real
#: campaigns use a handful of programs and never approach this.
_FACTORY_CACHE_LIMIT = 8192


def _factory_for(words: tuple[int, ...]):
    factory = _FACTORY_CACHE.get(words)
    if factory is None:
        if len(_FACTORY_CACHE) >= _FACTORY_CACHE_LIMIT:
            _FACTORY_CACHE.clear()
        decoded = tuple(decode_fields(word) for word in words)
        source = _generate_source(decoded)
        namespace: dict = {}
        exec(compile(source, f"<rx32-block[{len(words)}]>", "exec"), namespace)
        factory = namespace["factory"]
        _FACTORY_CACHE[words] = factory
    return factory


class BlockEngine:
    """Per-machine block cache + dispatch loop (see module docstring)."""

    __slots__ = (
        "machine",
        "blocks",
        "_gen_key",
        "_watch_keys",
        "compiled",
        "invalidated",
    )

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        #: entry pc → (instruction count, run closure); count 0 marks a PC
        #: the dispatcher must single-step (sc / trap / illegal / a fetch
        #: watch on the entry itself, so the hot loop needs no watch check).
        self.blocks: dict[int, tuple] = {}
        self._gen_key: tuple | None = None
        self._watch_keys: frozenset[int] = frozenset()
        self.compiled = 0
        self.invalidated = 0

    # -- invalidation ------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every compiled block."""
        if self.blocks:
            self.invalidated += len(self.blocks)
            _trace.add_counter("blocks_invalidated", len(self.blocks))
            self.blocks.clear()

    def _sync(self) -> None:
        """Invalidate if code, watches or segments changed since last sync.

        The generation counters catch every in-band mutation path
        (``debug_write_code``, snapshot restore, the debug unit); the
        literal fetch-watch key comparison additionally catches callers
        that mutate ``machine._fetch_watch`` directly (the golden-run
        tracer does) — fetch-watched PCs are block boundaries, so the
        block partition depends on that exact set.
        """
        machine = self.machine
        key = (
            machine._code_gen,
            machine.debug.generation,
            machine.memory._ranges_gen,
        )
        watch_keys = machine._fetch_watch.keys()
        if key != self._gen_key or watch_keys != self._watch_keys:
            self.invalidate()
            self._gen_key = key
            self._watch_keys = frozenset(watch_keys)

    # -- compilation -------------------------------------------------------

    def _compile(self, entry_pc: int) -> tuple:
        machine = self.machine
        words = machine.code_words
        code_base = machine.code_base
        watched = self._watch_keys
        index = (entry_pc - code_base) >> 2
        total = len(words)
        decoded: list[tuple[int, int, int, int, int]] = []
        k = index
        while k < total and len(decoded) < MAX_BLOCK:
            # A fetch-watched PC (including the entry itself) is never
            # part of a compiled block: the dispatcher single-steps it so
            # the watch handler runs with architecturally exact state.
            if (code_base + 4 * k) in watched:
                break
            fields = decode_fields(words[k])
            if not _supported(fields):
                break
            decoded.append(fields)
            k += 1
            if fields[0] in _TERMINATORS:
                break
        if not decoded:
            self.blocks[entry_pc] = _UNCOMPILED
            return _UNCOMPILED
        with _trace.phase(_trace.PHASE_BLOCK_COMPILE):
            factory = _factory_for(tuple(words[index : index + len(decoded)]))
            memory = machine.memory
            read_ranges, write_ranges = machine.access_ranges()
            run = factory(
                entry_pc,
                memory.data,
                read_ranges,
                write_ranges,
                machine,
                memory.read_word,
                memory.write_word,
                memory.read_byte,
                memory.write_byte,
                unpack_from,
                pack_into,
                ArithmeticTrap,
                Trap,
            )
        entry = (len(decoded), run)
        self.blocks[entry_pc] = entry
        self.compiled += 1
        _trace.add_counter("blocks_compiled", 1)
        return entry

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, core: "Core", limit: int) -> int:
        """Execute up to *limit* instructions on *core*; return the count.

        Identical contract to the interpreter's ``run_quantum``: executes
        exactly *limit* instructions unless the core halts, blocks or
        traps, and leaves ``core.pc`` / retired counters current at every
        exit — partial quanta included.
        """
        machine = self.machine
        self._sync()
        blocks_get = self.blocks.get
        simple = core._run_quantum_simple
        regs = core.regs
        executed = 0
        # ``pc`` shadows ``core.pc`` and ``pending`` holds block-retired
        # instructions not yet flushed to the architectural counters; both
        # are synchronised before every interpreter excursion and on every
        # exit, so observable state is exact at every boundary.  On a trap
        # inside a block the closure's handler accounts for its own
        # partial progress and sets ``core.pc``; the except arm below
        # flushes the blocks that completed before it.
        pending = 0
        pc = core.pc
        # Hooks can only become armed through interpreted steps (fetch
        # handlers / callers outside run_quantum) — never by a compiled
        # block, which is pure computation — so the armed check runs at
        # entry and after every interpreter excursion, not per block.
        check_hooks = True
        try:
            while executed < limit:
                if check_hooks:
                    if (
                        machine._load_watch
                        or machine._store_watch
                        or core._load_transform is not None
                        or core._store_transform is not None
                    ):
                        # Data watches / one-shot transforms hook
                        # individual loads and stores: the interpreter
                        # runs the remainder.
                        core.pc = pc
                        core.instret += pending
                        machine.instret += pending
                        pending = 0
                        executed += simple(limit - executed)
                        if core.halted or core.blocked:
                            return executed
                        pc = core.pc
                        continue  # handlers may have disarmed; re-check
                    check_hooks = False
                entry = blocks_get(pc)
                if entry is None:
                    core.pc = pc
                    if pc < machine.code_base or pc >= machine.code_end:
                        core.instret += pending
                        machine.instret += pending
                        pending = 0
                        executed += simple(limit - executed)  # fetch trap
                        if core.halted or core.blocked:  # pragma: no cover
                            return executed
                        pc = core.pc  # pragma: no cover
                        continue  # pragma: no cover
                    entry = self._compile(pc)
                count = entry[0]
                if count == 0:
                    # sc / trap / illegal word / fetch watch on this PC:
                    # one interpreted step runs it (applying any watch
                    # handler), which may rewrite code or re-arm hooks —
                    # re-validate both afterwards.
                    core.pc = pc
                    core.instret += pending
                    machine.instret += pending
                    pending = 0
                    executed += simple(1)
                    if core.halted or core.blocked:
                        return executed
                    self._sync()
                    blocks_get = self.blocks.get
                    check_hooks = True
                    pc = core.pc
                    continue
                if count > limit - executed:
                    # The block would overrun the quantum / pause budget:
                    # the interpreter finishes the partial slice exactly.
                    core.pc = pc
                    core.instret += pending
                    machine.instret += pending
                    pending = 0
                    executed += simple(limit - executed)
                    if core.halted or core.blocked:
                        return executed
                    pc = core.pc
                    continue
                pc = entry[1](core, regs)
                pending += count
                executed += count
            core.pc = pc
            core.instret += pending
            machine.instret += pending
            pending = 0
            return executed
        except BaseException:
            core.instret += pending
            machine.instret += pending
            raise


__all__ = ["BlockEngine", "MAX_BLOCK"]

"""Block-compiling execution engine: superinstruction closures for RX32.

The per-instruction interpreter in :mod:`repro.machine.cpu` pays fetch,
bounds check, decode-cache lookup and a long if/elif dispatch for every
retired instruction.  Campaign throughput lives in that loop, so this
module trades a one-time compilation cost for straight-line execution:

* :class:`BlockEngine` scans ``Machine.code_words`` into **basic blocks**
  — runs of straight-line instructions terminated by a branch
  (``b``/``bl``/``blr``/``bc``), cut before ``sc``/``trap`` and before
  any PC carrying a fetch watch;
* each block is compiled **once** into a specialized Python closure:
  operands are baked in as constants, registers live in Python locals
  for the duration of the block, branch targets and trap messages are
  precomputed, and ``regs``/``mem_data``/access-range checks are
  captured in the closure;
* the dispatch loop executes block-at-a-time from a cache keyed by the
  block's entry index, falling back to the per-instruction loop whenever
  a block would overrun the quantum / ``pause_at_instret`` budget, when
  the next PC carries a fetch watch, and for the entire remainder of a
  quantum while any data watch or one-shot load/store transform is
  armed — so every fault-injection hook keeps bit-identical semantics.

Compiled closures are invalidated by a generation check at every
``run_quantum`` entry and after every fetch-watch step: the machine's
``_code_gen`` counter (bumped by ``debug_write_code`` and by snapshot
restore of dirty code-mirror pages), the :class:`~repro.machine.debug.
DebugUnit` ``generation`` counter (bumped on every watch arm/disarm),
the memory's segment version, and the literal fetch-watch address set
(which callers such as the golden-run tracer mutate directly).

The Python *code objects* are cached at module level keyed by the raw
word tuple — a campaign boots a fresh machine per injection run, so
per-machine instantiation must be cheap: it is one factory call per
block, not a re-``compile()``.  The module cache is a bounded LRU
(:class:`FactoryCache`) backed by an on-disk tier keyed by a content
hash of the emitted code, so repeated campaign boots of the same binary
— including the orchestrator's fresh worker processes — skip source
generation *and* ``compile()`` entirely.

:class:`TraceEngine` builds on block dispatch with a trace-compiling
tier: it profiles block-entry execution counts and branch outcomes
during warmup, chains hot blocks across predictable branches into
**superblock traces** (the profiled path, guarded by cheap side-exits
that fall back to block dispatch), batches self-looping traces into a
budget-bounded inner loop, and promotes constant-offset stack slots into
Python locals behind a per-entry alignment/range guard.  A trace closure
returns ``(next_pc, executed)``; ``executed == 0`` signals a failed
entry guard and nothing has run.

Correctness contract (enforced by ``tests/test_engine_equivalence.py``):
for any program and any fault from the paper's Table-3 classes, the
block engine retires the same instructions, produces the same register
file, memory image, console and trap (with identical pc/core attribution
and retired-instruction count) as the simple interpreter.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os
from collections import OrderedDict
from struct import pack_into, unpack_from
from typing import TYPE_CHECKING

from ..isa.encoding import (
    COND_ALWAYS,
    COND_EQ,
    COND_GE,
    COND_GT,
    COND_LE,
    COND_LT,
    COND_NE,
    OP_ADDI,
    OP_ADDIS,
    OP_ANDI,
    OP_B,
    OP_BC,
    OP_BL,
    OP_BLR,
    OP_CMPI,
    OP_CMPLI,
    OP_LBZ,
    OP_LWZ,
    OP_MFLR,
    OP_MTLR,
    OP_MULLI,
    OP_ORI,
    OP_SLWI,
    OP_SRAWI,
    OP_SRWI,
    OP_STB,
    OP_STW,
    OP_XO,
    OP_XORI,
    XO_ADD,
    XO_AND,
    XO_CMP,
    XO_DIVW,
    XO_MODW,
    XO_MUL,
    XO_NEG,
    XO_NOR,
    XO_NOT,
    XO_OR,
    XO_SLW,
    XO_SRAW,
    XO_SRW,
    XO_SUB,
    XO_XOR,
)
from ..observability import trace as _trace
from .cpu import decode_fields
from .traps import ArithmeticTrap, Trap

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core
    from .machine import Machine

#: Longest straight-line run compiled into one closure.  Basic blocks in
#: compiled MiniC are far shorter; the cap only bounds codegen size.
MAX_BLOCK = 64

#: Cache entry for a PC that cannot head a compiled block (``sc``,
#: ``trap``, an illegal word): the dispatcher single-steps it instead.
_UNCOMPILED: tuple[int, None] = (0, None)

_TERMINATORS = frozenset({OP_B, OP_BL, OP_BLR, OP_BC})

_STRAIGHT = frozenset(
    {
        OP_ADDI,
        OP_ADDIS,
        OP_MULLI,
        OP_ANDI,
        OP_ORI,
        OP_XORI,
        OP_CMPI,
        OP_CMPLI,
        OP_SLWI,
        OP_SRWI,
        OP_SRAWI,
        OP_MFLR,
        OP_MTLR,
        OP_LWZ,
        OP_STW,
        OP_LBZ,
        OP_STB,
    }
)

_XO_VALID = frozenset(
    {
        XO_ADD,
        XO_SUB,
        XO_MUL,
        XO_CMP,
        XO_DIVW,
        XO_MODW,
        XO_AND,
        XO_OR,
        XO_XOR,
        XO_NOR,
        XO_SLW,
        XO_SRW,
        XO_SRAW,
        XO_NEG,
        XO_NOT,
    }
)

_COND_EXPR = {
    COND_LT: "cr < 0",
    COND_LE: "cr <= 0",
    COND_EQ: "cr == 0",
    COND_GE: "cr >= 0",
    COND_GT: "cr > 0",
    COND_NE: "cr != 0",
}

_M = "0xFFFFFFFF"


def _supported(decoded: tuple[int, int, int, int, int]) -> bool:
    """Whether codegen handles this word (illegal words fall to the
    interpreter, which raises the trap with full context)."""
    opcode = decoded[0]
    if opcode == OP_XO:
        return decoded[4] in _XO_VALID
    if opcode == OP_BC:
        return decoded[1] == COND_ALWAYS or decoded[1] in _COND_EXPR
    return opcode in _STRAIGHT or opcode in _TERMINATORS


class _Emitter:
    """Generates the body of one block closure from decoded words.

    Registers used anywhere in the block are hoisted into Python locals
    (``r5 = regs[5]``) and written back in the epilogue — and, because
    the block is straight-line, the locals hold the exact architectural
    state of the completed-instruction prefix at every point, which is
    what the trap handler writes back.  ``r0`` is modelled faithfully:
    it is a readable register until the first register-writing
    instruction zeroes it (matching the interpreter's ``regs[0] = 0``
    after every write), after which reads fold to the literal ``0``.
    """

    def __init__(self) -> None:
        self.prelude: list[str] = []  # factory-level constants
        self.lines: list[str] = []    # run() body
        self.used: dict[int, bool] = {}
        self.uses_cr = False
        self.uses_lr = False
        self.r0_zero = False
        self.can_trap = False

    def pc_offset(self, k: int) -> int:
        """Byte offset of instruction *k* from ``entry_pc``.  Blocks are
        contiguous; the trace emitter overrides this with the stitched
        path's real (possibly backward) offsets."""
        return 4 * k

    # -- register plumbing ------------------------------------------------

    def read(self, reg: int) -> str:
        if reg == 0 and self.r0_zero:
            return "0"
        self.used[reg] = True
        return f"r{reg}"

    def write(self, rd: int, expr: str) -> None:
        self.used[rd] = True
        self.lines.append(f"r{rd} = {expr}")
        if rd == 0:
            self.lines.append("r0 = 0")
        elif not self.r0_zero:
            self.used[0] = True
            self.lines.append("r0 = 0")
        self.r0_zero = True

    def _signed(self, expr: str, temp: str) -> str:
        """Emit a signed-view temp of *expr*; returns the temp name."""
        self.lines.append(f"{temp} = {expr}")
        self.lines.append(f"if {temp} >= 0x80000000:")
        self.lines.append(f"    {temp} -= 0x100000000")
        return temp

    # -- straight-line instructions --------------------------------------

    def emit(self, k: int, decoded: tuple[int, int, int, int, int]) -> None:
        opcode, rd, ra, rb, imm = decoded
        if opcode == OP_ADDI:
            a = self.read(ra)
            self.write(rd, hex(imm & 0xFFFFFFFF) if a == "0"
                       else f"({a} + {imm}) & {_M}")
        elif opcode == OP_ADDIS:
            a = self.read(ra)
            self.write(rd, hex((imm << 16) & 0xFFFFFFFF) if a == "0"
                       else f"({a} + {imm << 16}) & {_M}")
        elif opcode == OP_MULLI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"({a} * {imm}) & {_M}")
        elif opcode == OP_ANDI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"{a} & {imm}")
        elif opcode == OP_ORI:
            a = self.read(ra)
            self.write(rd, hex(imm) if a == "0" else f"{a} | {imm}")
        elif opcode == OP_XORI:
            a = self.read(ra)
            self.write(rd, hex(imm) if a == "0" else f"{a} ^ {imm}")
        elif opcode == OP_CMPI:
            self.uses_cr = True
            a = self.read(ra)
            if a == "0":
                self.lines.append(
                    f"cr = {-1 if 0 < imm else (1 if 0 > imm else 0)}"
                )
            else:
                t = self._signed(a, "t")
                self.lines.append(
                    f"cr = -1 if {t} < {imm} else (1 if {t} > {imm} else 0)"
                )
        elif opcode == OP_CMPLI:
            self.uses_cr = True
            a = self.read(ra)
            if a == "0":
                self.lines.append(f"cr = {-1 if 0 < imm else 0}")
            else:
                self.lines.append(
                    f"cr = -1 if {a} < {imm} else (1 if {a} > {imm} else 0)"
                )
        elif opcode == OP_SLWI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"({a} << {imm & 31}) & {_M}")
        elif opcode == OP_SRWI:
            a = self.read(ra)
            self.write(rd, "0" if a == "0" else f"{a} >> {imm & 31}")
        elif opcode == OP_SRAWI:
            a = self.read(ra)
            if a == "0":
                self.write(rd, "0")
            else:
                t = self._signed(a, "t")
                self.write(rd, f"({t} >> {imm & 31}) & {_M}")
        elif opcode == OP_MFLR:
            self.uses_lr = True
            self.write(rd, f"lr & {_M}")
        elif opcode == OP_MTLR:
            self.uses_lr = True
            self.lines.append(f"lr = {self.read(rd)}")
        elif opcode == OP_LWZ:
            self._emit_load_word(k, rd, ra, imm)
        elif opcode == OP_STW:
            self._emit_store_word(k, rd, ra, imm)
        elif opcode == OP_LBZ:
            self._emit_load_byte(k, rd, ra, imm)
        elif opcode == OP_STB:
            self._emit_store_byte(k, rd, ra, imm)
        elif opcode == OP_XO:
            self._emit_xo(k, rd, ra, rb, imm)
        else:  # pragma: no cover - the scanner only admits supported words
            raise AssertionError(f"unsupported opcode {opcode:#x} in block")

    # -- memory -----------------------------------------------------------

    def _effective_address(self, k: int, ra: int, imm: int) -> None:
        self.can_trap = True
        self.prelude.append(f"_pc{k} = entry_pc + {self.pc_offset(k)}")
        self.lines.append(f"ip = {k}")
        a = self.read(ra)
        if a == "0":
            self.lines.append(f"ea = {hex(imm & 0xFFFFFFFF)}")
        else:
            self.lines.append(f"ea = ({a} + {imm}) & {_M}")

    def _emit_load_word(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            "if ea & 3 == 0:",
            "    for lo, hi in read_ranges:",
            "        if lo <= ea < hi:",
            "            t = unpack_from('>I', mem_data, ea)[0]",
            "            break",
            "    else:",
            f"        t = read_word(ea, _pc{k})",
            "else:",
            f"    t = read_word(ea, _pc{k})",
        ]
        self.write(rd, "t")

    def _emit_store_word(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            f"t = {self.read(rd)}",
            "if ea & 3 == 0:",
            "    for lo, hi in write_ranges:",
            "        if lo <= ea < hi:",
            "            pack_into('>I', mem_data, ea, t)",
            "            break",
            "    else:",
            f"        write_word(ea, t, _pc{k})",
            "else:",
            f"    write_word(ea, t, _pc{k})",
        ]

    def _emit_load_byte(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            "for lo, hi in read_ranges:",
            "    if lo <= ea < hi:",
            "        t = mem_data[ea]",
            "        break",
            "else:",
            f"    t = read_byte(ea, _pc{k})",
        ]
        self.write(rd, "t")

    def _emit_store_byte(self, k: int, rd: int, ra: int, imm: int) -> None:
        self._effective_address(k, ra, imm)
        self.lines += [
            f"t = {self.read(rd)}",
            "for lo, hi in write_ranges:",
            "    if lo <= ea < hi:",
            "        mem_data[ea] = t & 0xFF",
            "        break",
            "else:",
            f"    write_byte(ea, t, _pc{k})",
        ]

    # -- the XO register-register group -----------------------------------

    def _emit_xo(self, k: int, rd: int, ra: int, rb: int, subop: int) -> None:
        a = self.read(ra)
        b = self.read(rb)
        if subop == XO_ADD:
            self.write(rd, f"({a} + {b}) & {_M}")
        elif subop == XO_SUB:
            self.write(rd, f"({a} - {b}) & {_M}")
        elif subop == XO_MUL:
            self.write(rd, f"({a} * {b}) & {_M}")
        elif subop == XO_CMP:
            self.uses_cr = True
            t = self._signed(a, "t")
            u = self._signed(b, "u")
            self.lines.append(
                f"cr = -1 if {t} < {u} else (1 if {t} > {u} else 0)"
            )
        elif subop in (XO_DIVW, XO_MODW):
            self.can_trap = True
            self.prelude.append(
                f"_msg{k} = 'integer division by zero at ' "
                f"+ format(entry_pc + {self.pc_offset(k)}, '#010x')"
            )
            self.lines.append(f"ip = {k}")
            t = self._signed(a, "t")
            u = self._signed(b, "u")
            self.lines += [
                f"if {u} == 0:",
                f"    raise ArithmeticTrap(_msg{k})",
                f"q = abs({t}) // abs({u})",
                f"if ({t} < 0) != ({u} < 0):",
                "    q = -q",
            ]
            if subop == XO_DIVW:
                self.write(rd, f"q & {_M}")
            else:
                self.write(rd, f"({t} - q * {u}) & {_M}")
        elif subop == XO_AND:
            self.write(rd, f"{a} & {b}")
        elif subop == XO_OR:
            self.write(rd, f"{a} | {b}")
        elif subop == XO_XOR:
            self.write(rd, f"{a} ^ {b}")
        elif subop == XO_NOR:
            self.write(rd, f"({a} | {b}) ^ {_M}")
        elif subop == XO_SLW:
            self.write(rd, f"({a} << ({b} & 31)) & {_M}")
        elif subop == XO_SRW:
            self.write(rd, f"{a} >> ({b} & 31)")
        elif subop == XO_SRAW:
            t = self._signed(a, "t")
            self.write(rd, f"({t} >> ({b} & 31)) & {_M}")
        elif subop == XO_NEG:
            self.write(rd, f"(-{a}) & {_M}")
        elif subop == XO_NOT:
            self.write(rd, f"{a} ^ {_M}")
        else:  # pragma: no cover - the scanner only admits valid subops
            raise AssertionError(f"unsupported XO subop {subop:#x} in block")

    # -- terminators -------------------------------------------------------

    def emit_terminal(self, k: int, decoded: tuple[int, int, int, int, int]) -> str:
        """The terminal branch; returns the ``return <next_pc>`` line."""
        opcode, rd, _ra, _rb, imm = decoded
        if opcode == OP_B:
            self.prelude.append(
                f"_t{k} = (entry_pc + {4 * (k + imm)}) & 0xFFFFFFFF"
            )
            return f"return _t{k}"
        if opcode == OP_BL:
            self.uses_lr = True
            self.prelude.append(
                f"_t{k} = (entry_pc + {4 * (k + imm)}) & 0xFFFFFFFF"
            )
            self.prelude.append(f"_l{k} = entry_pc + {4 * k + 4}")
            self.lines.append(f"lr = _l{k}")
            return f"return _t{k}"
        if opcode == OP_BLR:
            self.uses_lr = True
            return "return lr"
        assert opcode == OP_BC
        self.prelude.append(
            f"_t{k} = (entry_pc + {4 * (k + imm)}) & 0xFFFFFFFF"
        )
        if rd == COND_ALWAYS:
            return f"return _t{k}"
        self.uses_cr = True
        self.prelude.append(f"_f{k} = entry_pc + {4 * k + 4}")
        return f"return _t{k} if {_COND_EXPR[rd]} else _f{k}"

    def emit_fallthrough(self, count: int) -> str:
        """No terminal branch (block cut by a watch / ``sc`` / cap)."""
        self.prelude.append(f"_fall = entry_pc + {4 * count}")
        return "return _fall"


def _generate_source(decoded: tuple[tuple[int, int, int, int, int], ...]) -> str:
    """Python source of the factory producing one block's ``run`` closure."""
    emitter = _Emitter()
    count = len(decoded)
    terminal = decoded[-1][0] in _TERMINATORS
    for k in range(count - 1 if terminal else count):
        emitter.emit(k, decoded[k])
    if terminal:
        ret = emitter.emit_terminal(count - 1, decoded[count - 1])
    else:
        ret = emitter.emit_fallthrough(count)

    hoists = [f"r{reg} = regs[{reg}]" for reg in emitter.used]
    writebacks = [f"regs[{reg}] = r{reg}" for reg in emitter.used]
    if emitter.uses_cr:
        hoists.append("cr = core.cr")
        writebacks.append("core.cr = cr")
    if emitter.uses_lr:
        hoists.append("lr = core.lr")
        writebacks.append("core.lr = lr")

    out = [
        "def factory(entry_pc, mem_data, read_ranges, write_ranges, machine,",
        "            read_word, write_word, read_byte, write_byte,",
        "            unpack_from, pack_into, ArithmeticTrap, Trap):",
    ]
    out += ["    " + line for line in emitter.prelude]
    out.append("    def run(core, regs):")
    if emitter.can_trap:
        out.append("        ip = 0")
        out.append("        try:")
        inner = "            "
    else:
        inner = "        "
    for line in hoists + emitter.lines + writebacks:
        out.append(inner + line)
    out.append(inner + ret)
    if emitter.can_trap:
        out.append("        except Trap as err:")
        handler = "            "
        for line in writebacks:
            out.append(handler + line)
        out += [
            handler + "n = ip + 1",
            handler + "core.instret += n",
            handler + "machine.instret += n",
            handler + "pc = entry_pc + ip * 4",
            handler + "core.pc = pc",
            handler + "if err.pc is None:",
            handler + "    err.pc = pc",
            handler + "if err.core_id is None:",
            handler + "    err.core_id = core.core_id",
            handler + "raise",
        ]
    out.append("    return run")
    out.append("")
    return "\n".join(out)


# ---------------------------------------------------------------------------
# Superblock traces
# ---------------------------------------------------------------------------

#: Block-entry executions before the dispatcher tries to form a trace.
TRACE_HOT = 32
#: A failed formation attempt is retried once the entry gets this hot
#: (the branch profile may have been too thin at ``TRACE_HOT``).
TRACE_RETRY = 1024
#: Minimum profiled outcomes before a conditional branch is predictable.
TRACE_MIN_EDGE = 8
#: Required bias toward one successor for the branch to be stitched over.
TRACE_BIAS = 0.85
#: Formation caps: blocks per trace / instructions per iteration.
TRACE_MAX_BLOCKS = 16
TRACE_MAX_INSTR = 256
#: Stack-slot promotion cap (each slot adds entry-guard cost).
TRACE_MAX_SLOTS = 6

#: Trace-cache entry for an entry PC where formation failed or the
#: promoted-slot guard bailed: block dispatch handles it from now on.
_NO_TRACE: tuple[int, None] = (0, None)

#: Deferred-exit placeholder: "<marker><target-expr>\x00<count-expr>".
#: Expanded after emission into slot flushes + register write-backs +
#: ``return target, count`` — the full write-back set is only known once
#: the whole trace has been emitted.
_EXIT = "\x00EXIT\x00"

#: Opcodes that write their ``rd`` field (promotion-safety analysis).
_WRITES_RD = frozenset(
    {
        OP_ADDI,
        OP_ADDIS,
        OP_MULLI,
        OP_ANDI,
        OP_ORI,
        OP_XORI,
        OP_SLWI,
        OP_SRWI,
        OP_SRAWI,
        OP_MFLR,
        OP_LWZ,
        OP_LBZ,
    }
)


class _TraceEmitter(_Emitter):
    """Emits one superblock trace: straight-line instructions from many
    blocks, guard side-exits at internal conditional branches, and
    (optionally) promoted stack-slot locals in place of memory traffic.
    """

    def __init__(self, offsets: list[int], slots: dict[int, str]) -> None:
        super().__init__()
        self.offsets = offsets  # instruction index -> byte offset
        self.slots = slots      # displacement -> slot local (promotion)

    def pc_offset(self, k: int) -> int:
        return self.offsets[k]

    def _emit_load_word(self, k: int, rd: int, ra: int, imm: int) -> None:
        name = self.slots.get(imm)
        if name is None:
            super()._emit_load_word(k, rd, ra, imm)
        else:
            self.write(rd, name)

    def _emit_store_word(self, k: int, rd: int, ra: int, imm: int) -> None:
        name = self.slots.get(imm)
        if name is None:
            super()._emit_store_word(k, rd, ra, imm)
        else:
            self.lines.append(f"{name} = {self.read(rd)}")

    def emit_guard(self, k: int, cond: int, predicted_taken: bool,
                   exit_off: int) -> None:
        """Side-exit guard for an internal conditional branch: when the
        profiled-unlikely direction is taken, flush and leave the trace
        at the unstitched target (``k + 1`` instructions retired this
        iteration, the branch itself included)."""
        self.uses_cr = True
        label = f"_sx{k}"
        self.prelude.append(
            f"{label} = (entry_pc + {exit_off}) & 0xFFFFFFFF"
        )
        expr = _COND_EXPR[cond]
        test = f"not ({expr})" if predicted_taken else expr
        self.lines.append(f"if {test}:")
        self.lines.append(f"    {_EXIT}{label}\x00n + {k + 1}")


def _analyze_promotion(steps) -> tuple[int, tuple] | None:
    """Decide whether every memory access in the trace can be promoted
    to a Python local.

    Safe only when *all* memory operations are word-sized with a
    constant displacement off one shared base register that the trace
    never writes (so every slot's effective address is fixed for the
    whole trace and distinct aligned slots cannot overlap).  Returns
    ``(base_reg, ((disp, written), ...))`` or ``None``.
    """
    base: int | None = None
    slots: dict[int, bool] = {}
    instrs = [dec for _off, dec, role, _aux in steps if role == "i"]
    for dec in instrs:
        op = dec[0]
        if op in (OP_LWZ, OP_STW):
            ra = dec[2]
            if ra == 0:
                return None
            if base is None:
                base = ra
            elif ra != base:
                return None
            disp = dec[4]
            slots[disp] = slots.get(disp, False) or (op == OP_STW)
        elif op in (OP_LBZ, OP_STB):
            return None
    if base is None or len(slots) > TRACE_MAX_SLOTS:
        return None
    for dec in instrs:
        op, rd = dec[0], dec[1]
        if rd == base and (
            op in _WRITES_RD or (op == OP_XO and dec[4] != XO_CMP)
        ):
            return None
    return base, tuple(sorted(slots.items()))


def _generate_trace_source(steps, terminal, promo, count, looping) -> str:
    """Python source of the factory producing one trace's ``run`` closure.

    ``run(core, regs, budget) -> (next_pc, executed)``.  The dispatcher
    only calls it with ``budget >= count``; a looping trace batches full
    iterations while ``n + count <= budget`` still holds.  A return of
    ``(entry_pc, 0)`` means the promoted-slot entry guard failed and no
    architectural state was touched.
    """
    offsets = [step[0] for step in steps]
    tkind, tdec, toff, taux = terminal
    if tkind != "fall":
        offsets.append(toff)

    slots: list[tuple[int, str, bool]] = []
    slot_names: dict[int, str] = {}
    if promo is not None:
        for index, (disp, written) in enumerate(promo[1]):
            name = f"_s{index}"
            slots.append((disp, name, written))
            slot_names[disp] = name

    em = _TraceEmitter(offsets, slot_names)
    if promo is not None:
        em.used[promo[0]] = True  # slot addresses come off the base reg
    for k, (off, dec, role, aux) in enumerate(steps):
        if role == "i":
            em.emit(k, dec)
        elif role == "s":
            pass  # internal unconditional branch: the path is baked in
        else:
            em.emit_guard(k, dec[1], role == "gt", aux)

    lines = em.lines
    if tkind == "fall":
        em.prelude.append(f"_end = (entry_pc + {toff}) & 0xFFFFFFFF")
        lines.append(f"{_EXIT}_end\x00n + {count}")
    elif tkind == "loop":
        lines.append(f"n += {count}")
        lines.append(f"if n + {count} <= budget:")
        lines.append("    continue")
        lines.append(f"{_EXIT}entry_pc\x00n")
    elif tkind in ("loop_taken", "loop_fall"):
        em.uses_cr = True
        em.prelude.append(f"_x = (entry_pc + {taux}) & 0xFFFFFFFF")
        lines.append(f"n += {count}")
        if tkind == "loop_taken":
            lines.append(f"if {_COND_EXPR[tdec[1]]}:")
            lines.append(f"    if n + {count} <= budget:")
            lines.append("        continue")
            lines.append(f"    {_EXIT}entry_pc\x00n")
            lines.append(f"{_EXIT}_x\x00n")
        else:
            lines.append(f"if {_COND_EXPR[tdec[1]]}:")
            lines.append(f"    {_EXIT}_x\x00n")
            lines.append(f"if n + {count} <= budget:")
            lines.append("    continue")
            lines.append(f"{_EXIT}entry_pc\x00n")
    elif tkind == "b":
        em.prelude.append(f"_t = (entry_pc + {taux}) & 0xFFFFFFFF")
        lines.append(f"{_EXIT}_t\x00n + {count}")
    elif tkind == "bl":
        em.uses_lr = True
        em.prelude.append(f"_t = (entry_pc + {taux}) & 0xFFFFFFFF")
        em.prelude.append(f"_l = entry_pc + {toff + 4}")
        lines.append("lr = _l")
        lines.append(f"{_EXIT}_t\x00n + {count}")
    elif tkind == "blr":
        em.uses_lr = True
        lines.append(f"{_EXIT}lr\x00n + {count}")
    else:
        assert tkind == "bc"
        em.uses_cr = True
        em.prelude.append(f"_t = (entry_pc + {taux[0]}) & 0xFFFFFFFF")
        em.prelude.append(f"_f = (entry_pc + {taux[1]}) & 0xFFFFFFFF")
        lines.append(f"if {_COND_EXPR[tdec[1]]}:")
        lines.append(f"    {_EXIT}_t\x00n + {count}")
        lines.append(f"{_EXIT}_f\x00n + {count}")

    hoists = [f"r{reg} = regs[{reg}]" for reg in em.used]
    writebacks = [f"regs[{reg}] = r{reg}" for reg in em.used]
    if em.uses_cr:
        hoists.append("cr = core.cr")
        writebacks.append("core.cr = cr")
    if em.uses_lr:
        hoists.append("lr = core.lr")
        writebacks.append("core.lr = lr")
    flushes = [
        f"pack_into('>I', mem_data, _ea{index}, {name})"
        for index, (_disp, name, written) in enumerate(slots)
        if written
    ]
    exits = flushes + writebacks

    # Promoted-slot entry guard: fixed effective addresses, all aligned,
    # each inside one fast range — else bail before touching anything.
    guard: list[str] = []
    if slots:
        base = promo[0]
        for index, (disp, _name, _written) in enumerate(slots):
            guard.append(f"_ea{index} = (r{base} + {disp}) & 0xFFFFFFFF")
        ors = " | ".join(f"_ea{index}" for index in range(len(slots)))
        guard.append(f"if ({ors}) & 3:")
        guard.append("    return entry_pc, 0")
        for index, (_disp, _name, written) in enumerate(slots):
            ranges = "write_ranges" if written else "read_ranges"
            guard.append(f"for lo, hi in {ranges}:")
            guard.append(f"    if lo <= _ea{index} < hi:")
            guard.append("        break")
            guard.append("else:")
            guard.append("    return entry_pc, 0")
        for index, (_disp, name, _written) in enumerate(slots):
            guard.append(f"{name} = unpack_from('>I', mem_data, _ea{index})[0]")

    out = [
        "def factory(entry_pc, mem_data, read_ranges, write_ranges, machine,",
        "            read_word, write_word, read_byte, write_byte,",
        "            unpack_from, pack_into, ArithmeticTrap, Trap):",
    ]
    out += ["    " + line for line in em.prelude]
    if em.can_trap:
        pcs = ", ".join(str(off) for off in offsets)
        if len(offsets) == 1:
            pcs += ","
        out.append(f"    _tpcs = ({pcs})")
    out.append("    def run(core, regs, budget):")
    for line in hoists + guard:
        out.append("        " + line)
    out.append("        n = 0")
    inner = "        "
    if em.can_trap:
        out.append("        ip = 0")
        out.append("        try:")
        inner += "    "
    if looping:
        out.append(inner + "while True:")
        inner += "    "
    for line in lines:
        out.append(inner + line)
    if em.can_trap:
        out.append("        except Trap as err:")
        handler = "            "
        for line in exits:
            out.append(handler + line)
        out += [
            handler + "_n = n + ip + 1",
            handler + "core.instret += _n",
            handler + "machine.instret += _n",
            handler + "pc = entry_pc + _tpcs[ip]",
            handler + "core.pc = pc",
            handler + "if err.pc is None:",
            handler + "    err.pc = pc",
            handler + "if err.core_id is None:",
            handler + "    err.core_id = core.core_id",
            handler + "raise",
        ]
    out.append("    return run")
    out.append("")

    final: list[str] = []
    for line in out:
        stripped = line.lstrip()
        if stripped.startswith(_EXIT):
            indent = line[: len(line) - len(stripped)]
            target, n_expr = stripped[len(_EXIT):].split("\x00")
            for exit_line in exits:
                final.append(indent + exit_line)
            final.append(indent + f"return {target}, {n_expr}")
        else:
            final.append(line)
    return "\n".join(final)


# ---------------------------------------------------------------------------
# Factory caching: in-memory LRU + on-disk emitted-code tier
# ---------------------------------------------------------------------------

#: Backstop against pathological churn (randomised fuzz programs); real
#: campaigns use a handful of programs and never approach this.
_FACTORY_CACHE_LIMIT = 8192

#: Bump to orphan every on-disk entry (key-format changes).  Emitter
#: *code* changes are caught automatically by :func:`_emitter_fingerprint`.
_CODEGEN_VERSION = 1

#: Maximum emitted-code entries kept on disk (each entry is a ``.py``
#: source plus a marshalled code object).
_DISK_CACHE_LIMIT = 16384

#: On-disk tier telemetry, exposed via :func:`factory_cache_stats`.
_DISK_STATS = {"hits": 0, "misses": 0, "stores": 0, "errors": 0}

#: Per-directory entry counts (avoids an os.listdir per store).
_DISK_COUNTS: dict[str, int] = {}


class FactoryCache:
    """Bounded LRU of compiled factory callables.

    Keyed like the srcfi ``MutantCache``: an ``OrderedDict`` in
    recency order with hit/miss/eviction counters, evicting from the
    cold end.  Long-lived campaign workers compile thousands of distinct
    mutant binaries; without the bound the old unbounded dict grew (and
    was periodically ``clear()``-ed wholesale, dropping the hot set too).
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_entries")

    def __init__(self, capacity: int = _FACTORY_CACHE_LIMIT) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key, factory) -> None:
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            return
        entries[key] = factory
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1
            _trace.add_counter("factory_cache_evictions", 1)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: Shared across machines (and therefore across the campaign's per-run
#: fresh boots), so codegen is paid once per distinct block/trace.
_FACTORY_CACHE = FactoryCache()


def factory_cache_stats() -> dict:
    """Counters for both caching tiers (tests and telemetry)."""
    stats = _FACTORY_CACHE.stats()
    stats["disk"] = dict(_DISK_STATS)
    return stats


def _disk_cache_dir() -> str | None:
    """Directory of the on-disk code cache, or ``None`` when disabled.

    ``REPRO_CODE_CACHE`` overrides the location; ``0``/``off``/empty
    disables the tier entirely.
    """
    value = os.environ.get("REPRO_CODE_CACHE")
    if value is not None:
        if value.strip().lower() in ("", "0", "off", "none"):
            return None
        return value
    root = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(root, "repro", "rx32-code")


def _hash_code(h, code) -> None:
    h.update(code.co_code)
    for const in code.co_consts:
        if hasattr(const, "co_code"):
            _hash_code(h, const)
        else:
            h.update(repr(const).encode("utf-8", "replace"))


def _emitter_fingerprint() -> str:
    """Content hash of the code generators themselves.

    Folded into every disk key so that editing (or monkeypatching — the
    differential fuzzer's mutation tests do) any emitter invalidates
    stale on-disk entries instead of silently serving old code.
    """
    h = hashlib.sha256()
    for cls in (_Emitter, _TraceEmitter):
        for name in sorted(vars(cls)):
            code = getattr(vars(cls)[name], "__code__", None)
            if code is not None:
                h.update(name.encode())
                _hash_code(h, code)
    for fn in (_generate_source, _generate_trace_source):
        _hash_code(h, fn.__code__)
    return h.hexdigest()


def _disk_load(digest: str):
    """Fetch a compiled factory code object from the disk tier."""
    directory = _disk_cache_dir()
    if directory is None:
        return None
    magic = importlib.util.MAGIC_NUMBER
    try:
        with open(os.path.join(directory, digest + ".bin"), "rb") as handle:
            blob = handle.read()
        if blob[: len(magic)] == magic:
            code = marshal.loads(blob[len(magic):])
            _DISK_STATS["hits"] += 1
            return code
        # Bytecode from another interpreter version: recompile the
        # stored source instead (and the store below refreshes .bin).
        path = os.path.join(directory, digest + ".py")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        code = compile(source, path, "exec")
        _DISK_STATS["hits"] += 1
        return code
    except (OSError, ValueError, EOFError, TypeError, SyntaxError):
        _DISK_STATS["misses"] += 1
        return None


def _disk_store(digest: str, source: str, code) -> None:
    """Persist emitted source + marshalled code object, atomically.

    Failures only cost the cache (never correctness); a full directory
    stops accepting new entries rather than racing concurrent workers
    over eviction.
    """
    directory = _disk_cache_dir()
    if directory is None:
        return
    try:
        count = _DISK_COUNTS.get(directory)
        if count is None:
            try:
                count = len(os.listdir(directory)) // 2
            except OSError:
                count = 0
            _DISK_COUNTS[directory] = count
        if count >= _DISK_CACHE_LIMIT:
            return
        os.makedirs(directory, exist_ok=True)
        blob = importlib.util.MAGIC_NUMBER + marshal.dumps(code)
        for name, data in (
            (digest + ".py", source.encode("utf-8")),
            (digest + ".bin", blob),
        ):
            path = os.path.join(directory, name)
            tmp = f"{path}.tmp{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(data)
            os.replace(tmp, path)
        _DISK_COUNTS[directory] = count + 1
        _DISK_STATS["stores"] += 1
    except OSError:
        _DISK_STATS["errors"] += 1


def _load_factory(kind: str, key, filename: str, generate):
    """Resolve a factory through both cache tiers, generating on miss."""
    cache_key = (kind, key)
    factory = _FACTORY_CACHE.get(cache_key)
    if factory is not None:
        return factory
    digest = hashlib.sha256(
        repr(
            (kind, _CODEGEN_VERSION, _emitter_fingerprint(), key)
        ).encode("ascii")
    ).hexdigest()
    code = _disk_load(digest)
    if code is None:
        source = generate()
        code = compile(source, filename, "exec")
        _disk_store(digest, source, code)
    namespace: dict = {}
    exec(code, namespace)
    factory = namespace["factory"]
    _FACTORY_CACHE.put(cache_key, factory)
    return factory


def _factory_for(words: tuple[int, ...]):
    def generate() -> str:
        decoded = tuple(decode_fields(word) for word in words)
        return _generate_source(decoded)

    return _load_factory("block", words, f"<rx32-block[{len(words)}]>", generate)


def _trace_factory_for(steps, terminal, promo, count, looping):
    key = (steps, terminal, promo, count, looping)
    return _load_factory(
        "trace",
        key,
        f"<rx32-trace[{count}]>",
        lambda: _generate_trace_source(steps, terminal, promo, count, looping),
    )


class BlockEngine:
    """Per-machine block cache + dispatch loop (see module docstring)."""

    __slots__ = (
        "machine",
        "blocks",
        "_gen_key",
        "_watch_keys",
        "compiled",
        "invalidated",
    )

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        #: entry pc → (instruction count, run closure); count 0 marks a PC
        #: the dispatcher must single-step (sc / trap / illegal / a fetch
        #: watch on the entry itself, so the hot loop needs no watch check).
        self.blocks: dict[int, tuple] = {}
        self._gen_key: tuple | None = None
        self._watch_keys: frozenset[int] = frozenset()
        self.compiled = 0
        self.invalidated = 0

    # -- invalidation ------------------------------------------------------

    def invalidate(self) -> None:
        """Drop every compiled block."""
        if self.blocks:
            self.invalidated += len(self.blocks)
            _trace.add_counter("blocks_invalidated", len(self.blocks))
            self.blocks.clear()

    def _sync(self) -> None:
        """Invalidate if code, watches or segments changed since last sync.

        The generation counters catch every in-band mutation path
        (``debug_write_code``, snapshot restore, the debug unit); the
        literal fetch-watch key comparison additionally catches callers
        that mutate ``machine._fetch_watch`` directly (the golden-run
        tracer does) — fetch-watched PCs are block boundaries, so the
        block partition depends on that exact set.
        """
        machine = self.machine
        key = (
            machine._code_gen,
            machine.debug.generation,
            machine.memory._ranges_gen,
        )
        watch_keys = machine._fetch_watch.keys()
        if key != self._gen_key or watch_keys != self._watch_keys:
            self.invalidate()
            self._gen_key = key
            self._watch_keys = frozenset(watch_keys)

    # -- compilation -------------------------------------------------------

    def _scan_block(self, entry_pc: int) -> list[tuple[int, int, int, int, int]]:
        """Decode the basic block headed at *entry_pc* (empty when the
        PC cannot head a compiled block)."""
        machine = self.machine
        words = machine.code_words
        code_base = machine.code_base
        watched = self._watch_keys
        total = len(words)
        decoded: list[tuple[int, int, int, int, int]] = []
        k = (entry_pc - code_base) >> 2
        while k < total and len(decoded) < MAX_BLOCK:
            # A fetch-watched PC (including the entry itself) is never
            # part of a compiled block: the dispatcher single-steps it so
            # the watch handler runs with architecturally exact state.
            if (code_base + 4 * k) in watched:
                break
            fields = decode_fields(words[k])
            if not _supported(fields):
                break
            decoded.append(fields)
            k += 1
            if fields[0] in _TERMINATORS:
                break
        return decoded

    def _compile(self, entry_pc: int) -> tuple:
        machine = self.machine
        words = machine.code_words
        code_base = machine.code_base
        index = (entry_pc - code_base) >> 2
        decoded = self._scan_block(entry_pc)
        if not decoded:
            self.blocks[entry_pc] = _UNCOMPILED
            return _UNCOMPILED
        with _trace.phase(_trace.PHASE_BLOCK_COMPILE):
            factory = _factory_for(tuple(words[index : index + len(decoded)]))
            memory = machine.memory
            read_ranges, write_ranges = machine.access_ranges()
            run = factory(
                entry_pc,
                memory.data,
                read_ranges,
                write_ranges,
                machine,
                memory.read_word,
                memory.write_word,
                memory.read_byte,
                memory.write_byte,
                unpack_from,
                pack_into,
                ArithmeticTrap,
                Trap,
            )
        entry = (len(decoded), run)
        self.blocks[entry_pc] = entry
        self.compiled += 1
        _trace.add_counter("blocks_compiled", 1)
        return entry

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, core: "Core", limit: int) -> int:
        """Execute up to *limit* instructions on *core*; return the count.

        Identical contract to the interpreter's ``run_quantum``: executes
        exactly *limit* instructions unless the core halts, blocks or
        traps, and leaves ``core.pc`` / retired counters current at every
        exit — partial quanta included.
        """
        machine = self.machine
        self._sync()
        blocks_get = self.blocks.get
        simple = core._run_quantum_simple
        regs = core.regs
        executed = 0
        # ``pc`` shadows ``core.pc`` and ``pending`` holds block-retired
        # instructions not yet flushed to the architectural counters; both
        # are synchronised before every interpreter excursion and on every
        # exit, so observable state is exact at every boundary.  On a trap
        # inside a block the closure's handler accounts for its own
        # partial progress and sets ``core.pc``; the except arm below
        # flushes the blocks that completed before it.
        pending = 0
        pc = core.pc
        # Hooks can only become armed through interpreted steps (fetch
        # handlers / callers outside run_quantum) — never by a compiled
        # block, which is pure computation — so the armed check runs at
        # entry and after every interpreter excursion, not per block.
        check_hooks = True
        try:
            while executed < limit:
                if check_hooks:
                    if (
                        machine._load_watch
                        or machine._store_watch
                        or core._load_transform is not None
                        or core._store_transform is not None
                    ):
                        # Data watches / one-shot transforms hook
                        # individual loads and stores: the interpreter
                        # runs the remainder.
                        core.pc = pc
                        core.instret += pending
                        machine.instret += pending
                        pending = 0
                        executed += simple(limit - executed)
                        if core.halted or core.blocked:
                            return executed
                        pc = core.pc
                        continue  # handlers may have disarmed; re-check
                    check_hooks = False
                entry = blocks_get(pc)
                if entry is None:
                    core.pc = pc
                    if pc < machine.code_base or pc >= machine.code_end:
                        core.instret += pending
                        machine.instret += pending
                        pending = 0
                        executed += simple(limit - executed)  # fetch trap
                        if core.halted or core.blocked:  # pragma: no cover
                            return executed
                        pc = core.pc  # pragma: no cover
                        continue  # pragma: no cover
                    entry = self._compile(pc)
                count = entry[0]
                if count == 0:
                    # sc / trap / illegal word / fetch watch on this PC:
                    # one interpreted step runs it (applying any watch
                    # handler), which may rewrite code or re-arm hooks —
                    # re-validate both afterwards.
                    core.pc = pc
                    core.instret += pending
                    machine.instret += pending
                    pending = 0
                    executed += simple(1)
                    if core.halted or core.blocked:
                        return executed
                    self._sync()
                    blocks_get = self.blocks.get
                    check_hooks = True
                    pc = core.pc
                    continue
                if count > limit - executed:
                    # The block would overrun the quantum / pause budget:
                    # the interpreter finishes the partial slice exactly.
                    core.pc = pc
                    core.instret += pending
                    machine.instret += pending
                    pending = 0
                    executed += simple(limit - executed)
                    if core.halted or core.blocked:
                        return executed
                    pc = core.pc
                    continue
                pc = entry[1](core, regs)
                pending += count
                executed += count
            core.pc = pc
            core.instret += pending
            machine.instret += pending
            pending = 0
            return executed
        except BaseException:
            core.instret += pending
            machine.instret += pending
            raise


class TraceEngine(BlockEngine):
    """Block dispatch plus a trace-compiling tier (see module docstring).

    Warmup profiling rides on the block dispatch loop: every block
    execution counts its entry PC and the observed successor.  Once an
    entry is hot, the profiled path is stitched into a superblock trace
    and dispatched as one closure call — side-exit guards return control
    to block dispatch whenever a stitched branch goes the unprofiled
    way, and a failed promoted-slot entry guard retires the trace
    without touching any architectural state.
    """

    __slots__ = ("traces", "_prof", "traces_compiled", "trace_bailouts")

    def __init__(self, machine: "Machine") -> None:
        super().__init__(machine)
        #: entry pc → (iteration instruction count, run closure); the
        #: ``_NO_TRACE`` sentinel marks entries block dispatch owns.
        self.traces: dict[int, tuple] = {}
        #: entry pc → [execution count, {successor pc: count}]
        self._prof: dict[int, list] = {}
        self.traces_compiled = 0
        self.trace_bailouts = 0

    def invalidate(self) -> None:
        super().invalidate()
        if self.traces:
            _trace.add_counter("traces_invalidated", len(self.traces))
            self.traces.clear()
        self._prof.clear()

    # -- trace formation ---------------------------------------------------

    def _plan_trace(self, entry_pc: int):
        """Stitch the profiled hot path headed at *entry_pc*.

        Returns ``(steps, terminal, promo, count, looping)`` for the
        generator, or ``None`` when no worthwhile trace exists.  Each
        step is ``(byte_off, decoded, role, aux)`` with role ``"i"``
        (straight-line), ``"s"`` (internal unconditional branch) or
        ``"gt"``/``"gf"`` (guard, predicted taken / fall-through, with
        the side-exit offset in ``aux``).
        """
        machine = self.machine
        code_base, code_end = machine.code_base, machine.code_end
        prof = self._prof
        segs: list[list] = []  # [pc, decoded, successor, predicted_taken]
        visited: set[int] = set()
        total = 0
        looping = False
        pc = entry_pc
        while len(segs) < TRACE_MAX_BLOCKS and total < TRACE_MAX_INSTR:
            if not code_base <= pc < code_end:
                break
            decoded = self._scan_block(pc)
            if not decoded:
                break
            visited.add(pc)
            seg = [pc, decoded, None, None]
            segs.append(seg)
            total += len(decoded)
            last = decoded[-1]
            op = last[0]
            if op not in _TERMINATORS or op in (OP_BL, OP_BLR):
                break
            kterm = len(decoded) - 1
            taken = (pc + 4 * (kterm + last[4])) & 0xFFFFFFFF
            if op == OP_B or last[1] == COND_ALWAYS:
                succ = taken
            else:
                fall = pc + 4 * kterm + 4
                stats = prof.get(pc)
                outcomes = stats[1] if stats else {}
                n_taken = outcomes.get(taken, 0)
                n_fall = outcomes.get(fall, 0)
                observed = n_taken + n_fall
                if observed < TRACE_MIN_EDGE:
                    break
                predicted_taken = n_taken >= n_fall
                winner = n_taken if predicted_taken else n_fall
                if winner / observed < TRACE_BIAS:
                    break
                succ = taken if predicted_taken else fall
                seg[3] = predicted_taken
            seg[2] = succ
            if succ == entry_pc:
                looping = True
                break
            if succ in visited:
                break
            pc = succ
        if not segs or (not looping and len(segs) < 2):
            return None

        steps: list[tuple] = []
        last_index = len(segs) - 1
        for i, (spc, decoded, succ, predicted_taken) in enumerate(segs):
            base_off = spc - entry_pc
            kterm = len(decoded) - 1
            has_term = decoded[kterm][0] in _TERMINATORS
            for j, dec in enumerate(decoded):
                off = base_off + 4 * j
                if j == kterm and has_term:
                    if i < last_index and succ is not None:
                        op = dec[0]
                        if op == OP_B or (op == OP_BC and dec[1] == COND_ALWAYS):
                            steps.append((off, dec, "s", None))
                        else:
                            taken_off = off + 4 * dec[4]
                            exit_off = off + 4 if predicted_taken else taken_off
                            role = "gt" if predicted_taken else "gf"
                            steps.append((off, dec, role, exit_off))
                    # terminal instruction: handled below, not a step
                else:
                    steps.append((off, dec, "i", None))

        spc, decoded, succ, predicted_taken = segs[last_index]
        base_off = spc - entry_pc
        kterm = len(decoded) - 1
        last = decoded[kterm]
        toff = base_off + 4 * kterm
        if last[0] not in _TERMINATORS:
            terminal = ("fall", None, base_off + 4 * len(decoded), None)
        elif looping:
            if last[0] != OP_BC or last[1] == COND_ALWAYS:
                terminal = ("loop", last, toff, None)
            elif predicted_taken:
                terminal = ("loop_taken", last, toff, toff + 4)
            else:
                terminal = ("loop_fall", last, toff, toff + 4 * last[4])
        else:
            op = last[0]
            if op == OP_B or (op == OP_BC and last[1] == COND_ALWAYS):
                terminal = ("b", last, toff, toff + 4 * last[4])
            elif op == OP_BL:
                terminal = ("bl", last, toff, toff + 4 * last[4])
            elif op == OP_BLR:
                terminal = ("blr", last, toff, None)
            else:
                terminal = ("bc", last, toff, (toff + 4 * last[4], toff + 4))

        # Stack-slot promotion only pays inside a batched loop, where it
        # removes the memory traffic from every iteration.
        promo = _analyze_promotion(steps) if looping else None
        return tuple(steps), terminal, promo, total, looping

    def _build_trace(self, entry_pc: int) -> None:
        with _trace.phase(_trace.PHASE_TRACE_COMPILE):
            plan = self._plan_trace(entry_pc)
            if plan is None:
                self.traces[entry_pc] = _NO_TRACE
                return
            steps, terminal, promo, count, looping = plan
            factory = _trace_factory_for(steps, terminal, promo, count, looping)
            machine = self.machine
            memory = machine.memory
            read_ranges, write_ranges = machine.access_ranges()
            run = factory(
                entry_pc,
                memory.data,
                read_ranges,
                write_ranges,
                machine,
                memory.read_word,
                memory.write_word,
                memory.read_byte,
                memory.write_byte,
                unpack_from,
                pack_into,
                ArithmeticTrap,
                Trap,
            )
            self.traces[entry_pc] = (count, run)
            self.traces_compiled += 1
            _trace.add_counter("traces_compiled", 1)
            _trace.add_counter("trace_instructions", count)

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, core: "Core", limit: int) -> int:
        """Block dispatch with a trace fast path and warmup profiling.

        Mirrors :meth:`BlockEngine.dispatch` exactly on the block path
        (same contract, same pending-flush discipline); traces are tried
        first for PCs that have one, and every block execution feeds the
        branch profile that forms them.
        """
        machine = self.machine
        self._sync()
        blocks_get = self.blocks.get
        traces_get = self.traces.get
        prof = self._prof
        simple = core._run_quantum_simple
        regs = core.regs
        executed = 0
        pending = 0
        pc = core.pc
        check_hooks = True
        try:
            while executed < limit:
                if check_hooks:
                    if (
                        machine._load_watch
                        or machine._store_watch
                        or core._load_transform is not None
                        or core._store_transform is not None
                    ):
                        core.pc = pc
                        core.instret += pending
                        machine.instret += pending
                        pending = 0
                        executed += simple(limit - executed)
                        if core.halted or core.blocked:
                            return executed
                        pc = core.pc
                        continue  # handlers may have disarmed; re-check
                    check_hooks = False
                entry = traces_get(pc)
                if entry is not None:
                    need = entry[0]
                    if need and need <= limit - executed:
                        new_pc, ran = entry[1](core, regs, limit - executed)
                        if ran:
                            pending += ran
                            executed += ran
                            pc = new_pc
                            continue
                        # Entry guard bailed: nothing ran.  Retire the
                        # trace — block dispatch owns this PC until the
                        # next invalidation.
                        self.traces[pc] = _NO_TRACE
                        self.trace_bailouts += 1
                        _trace.add_counter("trace_bailouts", 1)
                entry = blocks_get(pc)
                if entry is None:
                    core.pc = pc
                    if pc < machine.code_base or pc >= machine.code_end:
                        core.instret += pending
                        machine.instret += pending
                        pending = 0
                        executed += simple(limit - executed)  # fetch trap
                        if core.halted or core.blocked:  # pragma: no cover
                            return executed
                        pc = core.pc  # pragma: no cover
                        continue  # pragma: no cover
                    entry = self._compile(pc)
                count = entry[0]
                if count == 0:
                    core.pc = pc
                    core.instret += pending
                    machine.instret += pending
                    pending = 0
                    executed += simple(1)
                    if core.halted or core.blocked:
                        return executed
                    self._sync()
                    blocks_get = self.blocks.get
                    traces_get = self.traces.get
                    check_hooks = True
                    pc = core.pc
                    continue
                if count > limit - executed:
                    core.pc = pc
                    core.instret += pending
                    machine.instret += pending
                    pending = 0
                    executed += simple(limit - executed)
                    if core.halted or core.blocked:
                        return executed
                    pc = core.pc
                    continue
                new_pc = entry[1](core, regs)
                pending += count
                executed += count
                # -- warmup profiling (drives superblock formation) ----
                stats = prof.get(pc)
                if stats is None:
                    prof[pc] = stats = [0, {}]
                stats[0] += 1
                outcomes = stats[1]
                outcomes[new_pc] = outcomes.get(new_pc, 0) + 1
                hot = stats[0]
                if hot == TRACE_HOT or (
                    hot == TRACE_RETRY and traces_get(pc) is _NO_TRACE
                ):
                    if pc not in self.traces or traces_get(pc) is _NO_TRACE:
                        if traces_get(pc) is _NO_TRACE:
                            del self.traces[pc]
                        self._build_trace(pc)
                        traces_get = self.traces.get
                pc = new_pc
            core.pc = pc
            core.instret += pending
            machine.instret += pending
            pending = 0
            return executed
        except BaseException:
            core.instret += pending
            machine.instret += pending
            raise


__all__ = [
    "BlockEngine",
    "TraceEngine",
    "FactoryCache",
    "factory_cache_stats",
    "MAX_BLOCK",
]

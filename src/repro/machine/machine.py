"""The simulated target system: memory + cores + kernel + debug unit.

Stands in for the paper's Parsytec PowerXplorer (four PowerPC 601
processors running Parix).  A :class:`Machine` is cheap to construct and
is *rebuilt from scratch for every injection run* — the paper reboots the
target between injections "to assure a clean state", and campaigns here do
the same by calling :func:`repro.machine.loader.boot` per run.

``Machine.run`` drives the cores round-robin and classifies how execution
ended into the raw statuses the failure-mode taxonomy builds on:

* ``exited``  — every core performed the exit syscall,
* ``trapped`` — some core raised a hardware trap (→ *Program crash*),
* ``hung``    — the instruction budget ran out, or all live cores were
  blocked at a barrier that can never release (→ *Program hang*).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import Core
from .debug import DebugUnit
from .memory import Memory
from .syscalls import HeapManager, SyscallHandler
from .traps import Trap

# Address-space layout (see DESIGN.md).
CODE_BASE = 0x0000_1000
DATA_BASE = 0x0010_0000
HEAP_BASE = 0x0020_0000
STACK_REGION = 0x0040_0000
STACK_SIZE = 0x0004_0000  # 256 KiB per core
MAX_CORES = 4
PHYSICAL_SIZE = STACK_REGION + MAX_CORES * STACK_SIZE

DEFAULT_QUANTUM = 64
DEFAULT_BUDGET = 50_000_000

# Execution engines (see cpu.py and blocks.py).  ``simple`` is the
# per-instruction threaded interpreter; ``block`` compiles basic blocks
# into specialized closures and falls back to ``simple`` around every
# fault-injection hook, so outcomes are bit-identical between the two;
# ``trace`` additionally chains hot blocks into superblock traces across
# profiled-predictable branches (same bit-identical contract).
ENGINE_SIMPLE = "simple"
ENGINE_BLOCK = "block"
ENGINE_TRACE = "trace"
ENGINES = (ENGINE_SIMPLE, ENGINE_BLOCK, ENGINE_TRACE)


@dataclass(frozen=True)
class RunResult:
    """How one program execution on the machine ended."""

    status: str  # "exited" | "trapped" | "hung"
    exit_code: int | None
    trap: Trap | None
    instructions: int
    console: bytes
    deadlock: bool = False

    @property
    def exited_cleanly(self) -> bool:
        return self.status == "exited" and self.exit_code == 0


class Machine:
    """One bootable instance of the simulated target system."""

    def __init__(self, num_cores: int = 1, *, heap_size: int = 0x0010_0000,
                 console_limit: int = 1 << 20,
                 engine: str = ENGINE_SIMPLE) -> None:
        if not 1 <= num_cores <= MAX_CORES:
            raise ValueError(f"num_cores must be 1..{MAX_CORES}")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self.memory = Memory(PHYSICAL_SIZE)
        self.cores = [Core(self, index) for index in range(num_cores)]
        self.console = bytearray()
        self.console_limit = console_limit
        self.heap = HeapManager(HEAP_BASE, heap_size)
        self.syscalls = SyscallHandler(self)
        self.debug = DebugUnit(self)
        self.instret = 0

        # Hot-loop hook tables (see cpu.py); populated by the debug unit.
        self._fetch_watch: dict = {}
        self._load_watch: dict = {}
        self._store_watch: dict = {}

        # Code mirror for fast fetch; filled by the loader.
        self.code_base = CODE_BASE
        self.code_end = CODE_BASE
        self.code_words: list[int] = []
        self.decode_cache: list = []

        self._barrier_waiting: set[int] = set()
        self.executable = None  # set by the loader
        # Code-mirror indices rewritten through the debug port since the
        # last snapshot baseline (lets restore repair the mirror and the
        # decode cache without rebuilding either).
        self._mirror_dirty: set[int] = set()
        # Code-mirror version: bumped whenever code_words changes after
        # install (debug_write_code, snapshot restore of dirty indices).
        self._code_gen = 0
        # access_ranges() cache, keyed on the memory's segment version.
        self._access_ranges: tuple | None = None
        self._access_ranges_gen = -1

        self.engine = engine
        if engine == ENGINE_BLOCK:
            from .blocks import BlockEngine

            self.block_engine = BlockEngine(self)
        elif engine == ENGINE_TRACE:
            from .blocks import TraceEngine

            self.block_engine = TraceEngine(self)
        else:
            self.block_engine = None

    # ------------------------------------------------------------------

    def install_code(self, base: int, code: bytes) -> None:
        """Map *code* at *base* and build the fetch mirror."""
        if len(code) % 4:
            raise ValueError("code size must be a multiple of 4")
        self.memory.add_segment("code", base, len(code), writable=False)
        self.memory.debug_write(base, code)
        self.code_base = base
        self.code_end = base + len(code)
        self.code_words = [
            int.from_bytes(code[offset : offset + 4], "big")
            for offset in range(0, len(code), 4)
        ]
        self.decode_cache = [None] * len(self.code_words)

    def access_ranges(self) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """(readable, writable) address ranges for the CPU fast path.

        Ordered by expected access frequency: stacks first (locals dominate
        compiled code), then data, heap, and — for reads — code.  Cached on
        the instance against the memory's segment version — this is called
        once per quantum, and re-sorting all segments every 64 instructions
        is measurable on multi-core runs.
        """
        cached = self._access_ranges
        if cached is not None and self._access_ranges_gen == self.memory._ranges_gen:
            return cached

        def sort_key(segment) -> int:
            if segment.name.startswith("stack"):
                return 0
            if segment.name == "data":
                return 1
            if segment.name == "heap":
                return 2
            return 3

        ordered = sorted(self.memory.segments, key=sort_key)
        readable = [(s.start, s.end) for s in ordered]
        writable = [(s.start, s.end) for s in ordered if s.writable]
        self._access_ranges = (readable, writable)
        self._access_ranges_gen = self.memory._ranges_gen
        return self._access_ranges

    def debug_write_code(self, address: int, word: int) -> None:
        """Debug-port write into the code segment, keeping the mirror hot."""
        self.memory.debug_write_word(address, word)
        if self.code_base <= address < self.code_end:
            index = (address - self.code_base) >> 2
            self.code_words[index] = word & 0xFFFFFFFF
            self.decode_cache[index] = None
            self._mirror_dirty.add(index)
            self._code_gen += 1

    def debug_read_code(self, address: int) -> int:
        return self.memory.debug_read_word(address)

    # -- checkpoint / restore (see machine/snapshot.py) -----------------

    def baseline(self):
        """Full post-boot image; the reference snapshots delta against."""
        from .snapshot import capture_baseline

        return capture_baseline(self)

    def snapshot(self, baseline=None):
        """Checkpoint the current state (sparse delta over *baseline*)."""
        from ..observability import trace as _trace
        from .snapshot import capture_baseline, capture_snapshot

        with _trace.phase(_trace.PHASE_SNAPSHOT_CAPTURE):
            if baseline is None:
                baseline = capture_baseline(self)
            return capture_snapshot(self, baseline)

    def restore(self, snapshot) -> None:
        """Rewind to *snapshot*; disarms every debug-unit hook."""
        from ..observability import trace as _trace
        from .snapshot import restore_snapshot

        with _trace.phase(_trace.PHASE_SNAPSHOT_RESTORE):
            restore_snapshot(self, snapshot)

    # ------------------------------------------------------------------

    def enter_barrier(self, core: Core) -> None:
        """Barrier syscall: block until *every* core has arrived.

        Strict semantics, as on the paper's Parsytec: a core that exits
        without reaching the barrier leaves the remaining cores blocked
        forever — :meth:`run` reports that as a (deadlock) hang, which is
        how the experiment manager's timeout would classify it.
        """
        core.blocked = True
        self._barrier_waiting.add(core.core_id)
        everyone = {c.core_id for c in self.cores}
        if everyone <= self._barrier_waiting:
            for other in self.cores:
                other.blocked = False
            self._barrier_waiting.clear()

    # ------------------------------------------------------------------

    def run(self, max_instructions: int = DEFAULT_BUDGET,
            quantum: int = DEFAULT_QUANTUM,
            pause_at_instret: int | None = None) -> RunResult:
        """Run all cores to completion, trap, or budget exhaustion.

        *pause_at_instret* suspends execution once the machine-wide retired
        instruction count reaches the given value, returning a result with
        status ``"paused"`` — the hook temporal fault triggers use.
        """
        start = self.instret
        single_core = len(self.cores) == 1
        while True:
            ran_any = False
            for core in self.cores:
                if core.halted or core.blocked:
                    continue
                if pause_at_instret is not None and self.instret >= pause_at_instret:
                    return self._result("paused")
                remaining = max_instructions - (self.instret - start)
                if remaining <= 0:
                    return self._result("hung")
                slice_size = remaining if single_core else min(quantum, remaining)
                if pause_at_instret is not None:
                    slice_size = min(slice_size, pause_at_instret - self.instret)
                try:
                    core.run_quantum(slice_size)
                except Trap as trap:
                    return self._result("trapped", trap=trap)
                ran_any = True
            if pause_at_instret is not None and self.instret >= pause_at_instret and not all(
                core.halted for core in self.cores
            ):
                return self._result("paused")
            if all(core.halted for core in self.cores):
                return self._result("exited")
            if not ran_any:
                # Every live core is blocked on a barrier that cannot
                # release (some peer halted first): a silent deadlock, which
                # the experiment manager's timeout would classify as a hang.
                return self._result("hung", deadlock=True)

    def _result(self, status: str, trap: Trap | None = None,
                deadlock: bool = False) -> RunResult:
        exit_codes = [core.exit_code for core in self.cores if core.exit_code is not None]
        exit_code = self.cores[0].exit_code if self.cores[0].exit_code is not None else (
            exit_codes[0] if exit_codes else None
        )
        return RunResult(
            status=status,
            exit_code=exit_code,
            trap=trap,
            instructions=self.instret,
            console=bytes(self.console),
            deadlock=deadlock,
        )

"""The Parix-like "kernel" interface of the simulated machine.

The original experiments ran on Parix, a Unix-like OS for the Parsytec
parallel machine.  Our programs reach the outside world exclusively through
the ``sc`` instruction: console output, heap management, and the parallel
primitives (core id, core count, barrier) that the SOR workload uses.

Console output is captured in :attr:`Machine.console`; campaigns compare
those bytes against the oracle's expected output to distinguish *Correct*
from *Incorrect* results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .cpu import to_signed
from .traps import ConsoleLimitExceeded, HeapTrap, InvalidSyscallTrap

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core
    from .machine import Machine

SYS_EXIT = 0
SYS_PUTINT = 1
SYS_PUTCHAR = 2
SYS_MALLOC = 3
SYS_FREE = 4
SYS_COREID = 5
SYS_NCORES = 6
SYS_BARRIER = 7
SYS_PUTS = 8
SYS_PUTHEX = 9

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_PUTINT: "put_int",
    SYS_PUTCHAR: "put_char",
    SYS_MALLOC: "malloc",
    SYS_FREE: "free",
    SYS_COREID: "core_id",
    SYS_NCORES: "num_cores",
    SYS_BARRIER: "barrier",
    SYS_PUTS: "put_str",
    SYS_PUTHEX: "put_hex",
}

_HEAP_ALIGN = 8


class HeapManager:
    """A deliberately simple bump-plus-freelist allocator.

    It is strict about misuse: freeing a pointer that was never returned by
    ``malloc`` (or freeing twice) raises :class:`HeapTrap`, modelling the
    heap-corruption aborts that gave the paper's C.team9 (the
    dynamic-structures program) its elevated crash rate.
    """

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size
        self._cursor = base
        self._allocated: dict[int, int] = {}
        self._free_by_size: dict[int, list[int]] = {}

    def malloc(self, size: int) -> int:
        """Allocate *size* bytes; returns 0 when out of memory (like Parix)."""
        if size <= 0:
            return 0
        size = (size + _HEAP_ALIGN - 1) & ~(_HEAP_ALIGN - 1)
        bucket = self._free_by_size.get(size)
        if bucket:
            address = bucket.pop()
        else:
            if self._cursor + size > self.base + self.size:
                return 0
            address = self._cursor
            self._cursor += size
        self._allocated[address] = size
        return address

    def free(self, address: int) -> None:
        if address == 0:
            return  # free(NULL) is a no-op, as in C
        size = self._allocated.pop(address, None)
        if size is None:
            raise HeapTrap(f"invalid or double free of {address:#010x}", address=address)
        self._free_by_size.setdefault(size, []).append(address)

    @property
    def bytes_in_use(self) -> int:
        return sum(self._allocated.values())

    # -- snapshot support ---------------------------------------------------

    def capture(self) -> tuple:
        """Immutable allocator state for :meth:`Machine.snapshot`."""
        return (
            self._cursor,
            tuple(self._allocated.items()),
            tuple((size, tuple(stack)) for size, stack in self._free_by_size.items()),
        )

    def restore(self, state: tuple) -> None:
        cursor, allocated, free_by_size = state
        self._cursor = cursor
        self._allocated = dict(allocated)
        self._free_by_size = {size: list(stack) for size, stack in free_by_size}


class SyscallHandler:
    """Dispatches ``sc`` instructions against the owning machine."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine

    def dispatch(self, core: "Core", number: int) -> None:
        machine = self.machine
        regs = core.regs
        if number == SYS_PUTINT:
            machine.console += b"%d" % to_signed(regs[3])
        elif number == SYS_PUTCHAR:
            machine.console.append(regs[3] & 0xFF)
        elif number == SYS_EXIT:
            core.halted = True
            core.exit_code = to_signed(regs[3])
        elif number == SYS_MALLOC:
            regs[3] = machine.heap.malloc(to_signed(regs[3]))
        elif number == SYS_FREE:
            machine.heap.free(regs[3])
        elif number == SYS_COREID:
            regs[3] = core.core_id
        elif number == SYS_NCORES:
            regs[3] = len(machine.cores)
        elif number == SYS_BARRIER:
            machine.enter_barrier(core)
        elif number == SYS_PUTS:
            machine.console += machine.memory.read_cstring(regs[3])
        elif number == SYS_PUTHEX:
            machine.console += b"%08x" % (regs[3] & 0xFFFFFFFF)
        else:
            raise InvalidSyscallTrap(f"unknown syscall number {number}")
        if len(machine.console) > machine.console_limit:
            raise ConsoleLimitExceeded(
                f"console output exceeded {machine.console_limit} bytes"
            )

"""Checkpoint/restore for the simulated machine.

The paper reboots the target between injections "to assure a clean
state"; QEMU/GDB-based descendants of Xception get their campaign
throughput from the equivalent guarantee at a fraction of the cost — a
*golden-run snapshot* restored before every injection.  This module
provides that primitive for the RX32 machine:

* :func:`capture_baseline` takes a full page-granular image of every
  mapped segment right after boot (the reference all snapshots delta
  against);
* :func:`capture_snapshot` records the machine mid-run as a **sparse
  delta**: only pages whose bytes differ from the baseline, plus the
  architectural state (cores, console, heap allocator, retired-count,
  barrier membership);
* :func:`restore_snapshot` rewrites only the pages whose *current*
  content differs from the target, clears every debug-unit hook, and
  reinstates the architectural state — leaving the machine
  indistinguishable from one that ran fresh from boot to the snapshot
  point.

The machine has no other hidden mutable state: syscalls are dispatched
statelessly against the machine, and the simulated kernel has no RNG —
determinism is what makes restore ≡ re-execution provable (and tested in
``tests/test_snapshot_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..observability import trace as _trace
from .memory import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

#: Content of a never-written page outside every segment.
_ZERO_PAGE = bytes(PAGE_SIZE)


@dataclass(frozen=True)
class CoreState:
    """Architectural state of one core (everything ``Core.reset`` touches)."""

    regs: tuple[int, ...]
    pc: int
    lr: int
    cr: int
    halted: bool
    blocked: bool
    exit_code: int | None
    instret: int


@dataclass(frozen=True)
class MachineBaseline:
    """Post-boot reference image: full segment pages + the code mirror."""

    pages: dict[int, bytes]
    code_words: tuple[int, ...]


@dataclass(frozen=True)
class MachineSnapshot:
    """One restorable point of a run, stored as a delta over a baseline."""

    baseline: MachineBaseline
    page_delta: dict[int, bytes]
    cores: tuple[CoreState, ...]
    console: bytes
    heap: tuple
    instret: int
    barrier: frozenset[int]
    #: Full code mirror iff the mirror diverged from the baseline
    #: (debug writes into the code segment); ``None`` otherwise.
    code_words: tuple[int, ...] | None


def _capture_core(core) -> CoreState:
    return CoreState(
        regs=tuple(core.regs),
        pc=core.pc,
        lr=core.lr,
        cr=core.cr,
        halted=core.halted,
        blocked=core.blocked,
        exit_code=core.exit_code,
        instret=core.instret,
    )


def capture_baseline(machine: "Machine") -> MachineBaseline:
    """Image every mapped page; future snapshots/restores delta against it.

    Resets the dirty-page bookkeeping: the baseline is the new "clean"
    reference, so anything dirtied before it is folded into the image.
    """
    pages = machine.memory.capture_pages(machine.memory.segment_pages())
    machine.memory._debug_dirty_pages.clear()
    machine._mirror_dirty.clear()
    return MachineBaseline(pages=pages, code_words=tuple(machine.code_words))


def capture_snapshot(machine: "Machine", baseline: MachineBaseline) -> MachineSnapshot:
    """Checkpoint the machine as a sparse delta over *baseline*."""
    # NB: bytearray slice compares take the memcmp path; memoryview
    # compares do not (element-by-element, ~25x slower).
    memory = machine.memory
    data = memory.data
    delta: dict[int, bytes] = {}
    for page, image in baseline.pages.items():
        start = page * PAGE_SIZE
        chunk = data[start : start + PAGE_SIZE]
        if chunk != image:
            delta[page] = bytes(chunk)
    # Debug writes can land outside every segment; those pages are not in
    # the baseline but must survive a restore of this snapshot.
    for page in memory._debug_dirty_pages:
        if page not in baseline.pages and page not in delta:
            start = page * PAGE_SIZE
            chunk = data[start : start + PAGE_SIZE]
            if chunk != _ZERO_PAGE:
                delta[page] = bytes(chunk)
    code_words = tuple(machine.code_words) if machine._mirror_dirty else None
    _trace.add_counter("pages_captured", len(delta))
    return MachineSnapshot(
        baseline=baseline,
        page_delta=delta,
        cores=tuple(_capture_core(core) for core in machine.cores),
        console=bytes(machine.console),
        heap=machine.heap.capture(),
        instret=machine.instret,
        barrier=frozenset(machine._barrier_waiting),
        code_words=code_words,
    )


def restore_snapshot(machine: "Machine", snapshot: MachineSnapshot) -> None:
    """Rewind the machine to *snapshot*; clears every debug-unit hook."""
    from .debug import DebugUnit  # machine ↔ debug import cycle guard

    if len(snapshot.cores) != len(machine.cores):
        raise ValueError(
            f"snapshot taken with {len(snapshot.cores)} core(s), "
            f"machine has {len(machine.cores)}"
        )
    memory = machine.memory

    # 1. Disarm everything.  A fresh DebugUnit (rather than clear()) avoids
    #    rewriting trap-patched words twice: the page restore below already
    #    reinstates the original code bytes.
    machine._fetch_watch.clear()
    machine._load_watch.clear()
    machine._store_watch.clear()
    machine.debug = DebugUnit(machine)

    # 2. Memory: baseline pages overlaid with the snapshot's delta, plus a
    #    zero-page for any gap page dirtied since (restore_pages skips
    #    pages that already match, so this stays copy-on-write).
    targets = dict(snapshot.baseline.pages)
    targets.update(snapshot.page_delta)
    for page in memory._debug_dirty_pages:
        if page not in targets:
            targets[page] = _ZERO_PAGE
    rewritten = memory.restore_pages(targets)
    _trace.add_counter("pages_restored", rewritten)
    # Gap pages carried by the delta still diverge from the baseline.
    memory._debug_dirty_pages = {
        page for page in snapshot.page_delta if page not in snapshot.baseline.pages
    }

    # 3. Code mirror + decode cache.  Only indices the debug port touched
    #    can diverge, so repair those instead of rebuilding the mirror.
    if snapshot.code_words is not None:
        machine.code_words = list(snapshot.code_words)
        machine.decode_cache = [None] * len(machine.code_words)
        machine._mirror_dirty = set(
            index
            for index, word in enumerate(snapshot.code_words)
            if word != snapshot.baseline.code_words[index]
        )
        machine._code_gen += 1
    elif machine._mirror_dirty:
        for index in machine._mirror_dirty:
            machine.code_words[index] = snapshot.baseline.code_words[index]
            machine.decode_cache[index] = None
        machine._mirror_dirty.clear()
        machine._code_gen += 1

    # 4. Cores (including the one-shot load/store transforms, which are
    #    never live at a snapshot point — they exist only within a single
    #    triggering instruction).
    for core, state in zip(machine.cores, snapshot.cores):
        core.regs[:] = state.regs
        core.pc = state.pc
        core.lr = state.lr
        core.cr = state.cr
        core.halted = state.halted
        core.blocked = state.blocked
        core.exit_code = state.exit_code
        core.instret = state.instret
        core._load_transform = None
        core._store_transform = None

    # 5. Console, heap allocator, counters, barrier membership.
    machine.console[:] = snapshot.console
    machine.heap.restore(snapshot.heap)
    machine.instret = snapshot.instret
    machine._barrier_waiting = set(snapshot.barrier)


__all__ = [
    "CoreState",
    "MachineBaseline",
    "MachineSnapshot",
    "capture_baseline",
    "capture_snapshot",
    "restore_snapshot",
]

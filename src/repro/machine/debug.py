"""The RX32 debug unit — the hardware the fault injector rides on.

Xception's defining idea is that faults are injected through the
*debugging and performance-monitoring features* of the processor rather
than by modifying the target program.  We model the two mechanisms the
paper contrasts:

* **Breakpoint registers.**  The PowerPC 601 has *two* instruction-address
  breakpoint registers, a limit the paper explicitly runs into when a
  fault needs more trigger addresses ("the fault trigger used ... is
  implemented by using the processor breakpoint registers, which are only
  two in the PowerPC").  :meth:`DebugUnit.set_iabr` enforces the same
  limit and raises :class:`DebugResourceError` beyond it.  Data-address
  breakpoints (DABRs) are similarly capped.

* **Trap insertion.**  The "traditional SWIFI approach of inserting trap
  instructions", which the paper calls *very intrusive* because it rewrites
  the program in memory.  :meth:`DebugUnit.insert_trap` overwrites the
  target word with a ``trap`` instruction and arranges for the handler to
  run and the original word to execute when the trap is fetched.  There is
  no count limit, but the unit tracks intrusiveness so experiments can
  report it.

Handlers receive ``(core, address, word)`` and may return a substitute
word (data-bus corruption of the fetch) or ``None`` to execute whatever is
now in memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core
    from .machine import Machine

FetchHandler = Callable[["Core", int, int], Optional[int]]
DataHandler = Callable[["Core", int, int], int]

NUM_IABR = 2
NUM_DABR = 2


class DebugResourceError(RuntimeError):
    """Raised when a fault definition needs more hardware breakpoints than exist."""


class DebugUnit:
    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._iabr: dict[int, FetchHandler] = {}
        self._dabr: dict[int, DataHandler] = {}
        self._software_breakpoints: dict[int, tuple[int, FetchHandler]] = {}
        self.intrusive = False  # True once trap insertion has modified the program
        # Bumped on every arm/disarm; the block engine keys its compiled-
        # block cache on it (watched PCs are block boundaries).
        self.generation = 0

    # -- hardware breakpoints ------------------------------------------------

    def set_iabr(self, address: int, handler: FetchHandler) -> None:
        """Arm an instruction-address breakpoint (at most ``NUM_IABR``)."""
        if address not in self._iabr and len(self._iabr) >= NUM_IABR:
            raise DebugResourceError(
                f"all {NUM_IABR} instruction-address breakpoint registers are in use"
            )
        self._iabr[address] = handler
        self.machine._fetch_watch[address] = handler
        self.generation += 1

    def clear_iabr(self, address: int) -> None:
        self._iabr.pop(address, None)
        if address not in self._software_breakpoints:
            self.machine._fetch_watch.pop(address, None)
        self.generation += 1

    def set_dabr(
        self,
        address: int,
        handler: DataHandler,
        *,
        on_load: bool = True,
        on_store: bool = False,
    ) -> None:
        """Arm a data-address breakpoint (at most ``NUM_DABR`` addresses)."""
        if address not in self._dabr and len(self._dabr) >= NUM_DABR:
            raise DebugResourceError(
                f"all {NUM_DABR} data-address breakpoint registers are in use"
            )
        self._dabr[address] = handler
        if on_load:
            self.machine._load_watch[address] = handler
        if on_store:
            self.machine._store_watch[address] = handler
        self.generation += 1

    def clear_dabr(self, address: int) -> None:
        self._dabr.pop(address, None)
        self.machine._load_watch.pop(address, None)
        self.machine._store_watch.pop(address, None)
        self.generation += 1

    @property
    def iabr_in_use(self) -> int:
        return len(self._iabr)

    @property
    def dabr_in_use(self) -> int:
        return len(self._dabr)

    # -- trap insertion (intrusive) -------------------------------------------

    def insert_trap(self, address: int, handler: FetchHandler) -> None:
        """Replace the word at *address* with a trap; run *handler* on fetch.

        The original word executes after the handler unless the handler
        returns a substitute.  Unlimited in number but marks the session
        intrusive — the program image is modified, which the paper flags
        as the main drawback of this technique.
        """
        from ..isa import ins  # local import to avoid a cycle at module load

        machine = self.machine
        if address in self._software_breakpoints:
            raise DebugResourceError(f"trap already inserted at {address:#010x}")
        original = machine.memory.debug_read_word(address)
        trap_word = ins.trap(len(self._software_breakpoints) & 0xFFFF).encode()
        machine.debug_write_code(address, trap_word)
        self._software_breakpoints[address] = (original, handler)
        self.intrusive = True

        def on_fetch(core: "Core", pc: int, word: int) -> int | None:
            saved, user_handler = self._software_breakpoints[pc]
            substitute = user_handler(core, pc, saved)
            return saved if substitute is None else substitute

        machine._fetch_watch[address] = on_fetch
        self.generation += 1

    def remove_trap(self, address: int) -> None:
        entry = self._software_breakpoints.pop(address, None)
        if entry is None:
            return
        original, _ = entry
        self.machine.debug_write_code(address, original)
        self.machine._fetch_watch.pop(address, None)
        if address in self._iabr:  # pragma: no cover - defensive
            self.machine._fetch_watch[address] = self._iabr[address]
        self.generation += 1

    # -- lifecycle -------------------------------------------------------------

    def clear(self) -> None:
        """Disarm everything and restore any trap-patched words."""
        for address in list(self._software_breakpoints):
            self.remove_trap(address)
        self._iabr.clear()
        self._dabr.clear()
        self.machine._fetch_watch.clear()
        self.machine._load_watch.clear()
        self.machine._store_watch.clear()
        self.generation += 1

"""Executable format and program loader.

An :class:`Executable` is what the MiniC compiler (or the assembler) hands
the machine: code, initialised data, a BSS size, an entry point and a
symbol table.  The loader also plays the role the paper assigns to the
Parix loader in §5: "The loader provides this information" — the absolute
addresses the injector needs to place fault triggers and errors.

:func:`boot` is the one-call path campaigns use: fresh machine, program
loaded, input globals poked — the reproduction of "the target system is
rebooted between injections to assure a clean state".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .machine import (
    CODE_BASE,
    DATA_BASE,
    ENGINE_SIMPLE,
    HEAP_BASE,
    MAX_CORES,
    STACK_REGION,
    STACK_SIZE,
    Machine,
)


class LoaderError(ValueError):
    """Raised for images that do not fit the machine's address map."""


@dataclass
class Executable:
    """A linked program image."""

    code: bytes
    entry: int
    data: bytes = b""
    bss_size: int = 0
    code_base: int = CODE_BASE
    data_base: int = DATA_BASE
    symbols: dict[str, int] = field(default_factory=dict)
    debug_info: Any = None  # compiler-attached; opaque to the machine
    name: str = "a.out"

    def address_of(self, symbol: str) -> int:
        try:
            return self.symbols[symbol]
        except KeyError:
            raise LoaderError(f"undefined symbol {symbol!r} in {self.name}") from None

    @property
    def data_size(self) -> int:
        return len(self.data) + self.bss_size


def load(machine: Machine, executable: Executable) -> None:
    """Map an executable into a freshly constructed machine."""
    if machine.executable is not None:
        raise LoaderError("machine already has a program loaded; boot a fresh one")
    if executable.code_base + len(executable.code) > DATA_BASE:
        raise LoaderError("code image overflows into the data region")
    data_size = (executable.data_size + 7) & ~7
    if executable.data_base + data_size > HEAP_BASE:
        raise LoaderError("data image overflows into the heap region")

    machine.install_code(executable.code_base, executable.code)
    if data_size:
        machine.memory.add_segment("data", executable.data_base, data_size, writable=True)
        if executable.data:
            machine.memory.debug_write(executable.data_base, executable.data)
    machine.memory.add_segment("heap", HEAP_BASE, machine.heap.size, writable=True)

    for core in machine.cores:
        stack_start = STACK_REGION + core.core_id * STACK_SIZE
        machine.memory.add_segment(
            f"stack{core.core_id}", stack_start, STACK_SIZE, writable=True
        )
        core.pc = executable.entry
        # Leave a small red zone at the very top; keep 8-byte alignment.
        core.regs[1] = stack_start + STACK_SIZE - 16
    machine.executable = executable


def poke_global_word(machine: Machine, symbol: str, value: int) -> None:
    """Write one word into a named global (used to feed input data sets)."""
    address = machine.executable.address_of(symbol)
    machine.memory.debug_write_word(address, value & 0xFFFFFFFF)


def poke_global_words(machine: Machine, symbol: str, values: list[int]) -> None:
    address = machine.executable.address_of(symbol)
    payload = b"".join((v & 0xFFFFFFFF).to_bytes(4, "big") for v in values)
    machine.memory.debug_write(address, payload)


def poke_global_bytes(machine: Machine, symbol: str, payload: bytes) -> None:
    address = machine.executable.address_of(symbol)
    machine.memory.debug_write(address, payload)


def peek_global_word(machine: Machine, symbol: str) -> int:
    address = machine.executable.address_of(symbol)
    return machine.memory.debug_read_word(address)


def boot(executable: Executable, *, num_cores: int = 1,
         inputs: dict[str, int | list[int] | bytes] | None = None,
         engine: str = ENGINE_SIMPLE) -> Machine:
    """Fresh machine + loaded program + input globals: one injection run's start state."""
    if not 1 <= num_cores <= MAX_CORES:
        raise LoaderError(f"num_cores must be 1..{MAX_CORES}")
    machine = Machine(num_cores=num_cores, engine=engine)
    load(machine, executable)
    for symbol, value in (inputs or {}).items():
        if isinstance(value, bytes):
            poke_global_bytes(machine, symbol, value)
        elif isinstance(value, list):
            poke_global_words(machine, symbol, value)
        else:
            poke_global_word(machine, symbol, value)
    return machine

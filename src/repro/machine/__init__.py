"""The simulated target system (stand-in for the Parsytec/PowerPC 601/Parix).

Public surface: :class:`Machine`, :class:`RunResult`, the loader
(:class:`Executable`, :func:`boot`, :func:`load`), the debug unit and the
trap hierarchy.
"""

from .cpu import Core, to_signed, to_unsigned
from .debug import NUM_DABR, NUM_IABR, DebugResourceError, DebugUnit
from .loader import (
    Executable,
    LoaderError,
    boot,
    load,
    peek_global_word,
    poke_global_bytes,
    poke_global_word,
    poke_global_words,
)
from .blocks import BlockEngine
from .machine import (
    CODE_BASE,
    DATA_BASE,
    DEFAULT_BUDGET,
    ENGINE_BLOCK,
    ENGINE_SIMPLE,
    ENGINES,
    HEAP_BASE,
    MAX_CORES,
    STACK_REGION,
    STACK_SIZE,
    Machine,
    RunResult,
)
from .memory import PAGE_SIZE, Memory, Segment
from .snapshot import CoreState, MachineBaseline, MachineSnapshot
from .syscalls import (
    SYS_BARRIER,
    SYS_COREID,
    SYS_EXIT,
    SYS_FREE,
    SYS_MALLOC,
    SYS_NCORES,
    SYS_PUTCHAR,
    SYS_PUTHEX,
    SYS_PUTINT,
    SYS_PUTS,
    SYSCALL_NAMES,
    HeapManager,
    SyscallHandler,
)
from .traps import (
    AlignmentTrap,
    ArithmeticTrap,
    HeapTrap,
    IllegalInstructionTrap,
    InvalidSyscallTrap,
    MemoryTrap,
    Trap,
    TrapInstructionHit,
)

__all__ = [
    "Core",
    "to_signed",
    "to_unsigned",
    "NUM_DABR",
    "NUM_IABR",
    "DebugResourceError",
    "DebugUnit",
    "Executable",
    "LoaderError",
    "boot",
    "load",
    "peek_global_word",
    "poke_global_bytes",
    "poke_global_word",
    "poke_global_words",
    "BlockEngine",
    "CODE_BASE",
    "DATA_BASE",
    "DEFAULT_BUDGET",
    "ENGINE_BLOCK",
    "ENGINE_SIMPLE",
    "ENGINES",
    "HEAP_BASE",
    "MAX_CORES",
    "STACK_REGION",
    "STACK_SIZE",
    "Machine",
    "RunResult",
    "Memory",
    "PAGE_SIZE",
    "Segment",
    "CoreState",
    "MachineBaseline",
    "MachineSnapshot",
    "SYS_BARRIER",
    "SYS_COREID",
    "SYS_EXIT",
    "SYS_FREE",
    "SYS_MALLOC",
    "SYS_NCORES",
    "SYS_PUTCHAR",
    "SYS_PUTHEX",
    "SYS_PUTINT",
    "SYS_PUTS",
    "SYSCALL_NAMES",
    "HeapManager",
    "SyscallHandler",
    "AlignmentTrap",
    "ArithmeticTrap",
    "HeapTrap",
    "IllegalInstructionTrap",
    "InvalidSyscallTrap",
    "MemoryTrap",
    "Trap",
    "TrapInstructionHit",
]

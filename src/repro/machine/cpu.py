"""RX32 CPU core: a threaded interpreter over encoded instruction words.

The dispatch loop uses a per-address *decode cache*: the first execution of
each word extracts ``(opcode, rd, ra, rb, imm)`` once; later executions
reuse the tuple.  The cache is invalidated whenever the debug port writes
into the code segment, so injected instruction corruptions always take
effect — and instructions fetched while a fault trigger is armed on their
address bypass the cache entirely (a data-bus corruption of the fetch must
not be remembered).

Faults hook in at three architecturally faithful points:

* **fetch watch** — the debug unit registers handlers on program-counter
  values (the paper's *opcode fetch from address X* trigger, implemented on
  the PowerPC 601 with its two instruction-address breakpoint registers).
  A handler may corrupt memory/registers, return a substitute word
  (a data-bus corruption of the fetched instruction), or both.
* **load/store watches** — data-address triggers (DABR-style), able to
  corrupt the value read or written.
* **transient transforms** — ``_load_transform`` / ``_store_transform``
  are one-shot value corruptions armed by a fetch handler and applied to
  the current instruction's memory operand: the paper's "error inserted in
  the data fetched (data bus fault)".

Registers are stored as unsigned 32-bit integers; r0 reads as zero always
(writes land and are immediately overwritten, keeping the loop branchless).
"""

from __future__ import annotations

from struct import pack_into, unpack_from
from typing import TYPE_CHECKING

from ..isa.encoding import (
    COND_ALWAYS,
    COND_EQ,
    COND_GE,
    COND_GT,
    COND_LE,
    COND_LT,
    COND_NE,
    OP_ADDI,
    OP_ADDIS,
    OP_ANDI,
    OP_B,
    OP_BC,
    OP_BL,
    OP_BLR,
    OP_CMPI,
    OP_CMPLI,
    OP_LBZ,
    OP_LWZ,
    OP_MFLR,
    OP_MTLR,
    OP_MULLI,
    OP_ORI,
    OP_SC,
    OP_SLWI,
    OP_SRAWI,
    OP_SRWI,
    OP_STB,
    OP_STW,
    OP_TRAP,
    OP_XO,
    OP_XORI,
    XO_ADD,
    XO_AND,
    XO_CMP,
    XO_DIVW,
    XO_MODW,
    XO_MUL,
    XO_NEG,
    XO_NOR,
    XO_NOT,
    XO_OR,
    XO_SLW,
    XO_SRAW,
    XO_SRW,
    XO_SUB,
    XO_XOR,
)
from .traps import (
    ArithmeticTrap,
    IllegalInstructionTrap,
    MemoryTrap,
    Trap,
    TrapInstructionHit,
)

if TYPE_CHECKING:  # pragma: no cover
    from .machine import Machine

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

_SIGNED_IMM_OPCODES = frozenset(
    {OP_ADDI, OP_ADDIS, OP_MULLI, OP_CMPI, OP_LWZ, OP_STW, OP_LBZ, OP_STB, OP_BC}
)


def to_signed(value: int) -> int:
    """Interpret an unsigned 32-bit register value as signed."""
    return value - 0x100000000 if value & _SIGN else value


def to_unsigned(value: int) -> int:
    """Truncate a Python integer into the unsigned 32-bit register domain."""
    return value & _MASK


def decode_fields(word: int) -> tuple[int, int, int, int, int]:
    """Extract ``(opcode, rd, ra, rb_or_subop, imm)`` from a raw word.

    Purely structural — illegal opcodes are detected at execution time so
    corrupted words trap with full context.  For the XO group the fourth
    element is ``rb`` and ``imm`` carries the sub-opcode.
    """
    opcode = word >> 26
    if opcode == OP_B or opcode == OP_BL:
        imm = word & 0x3FFFFFF
        if imm >= 0x2000000:
            imm -= 0x4000000
        return (opcode, 0, 0, 0, imm)
    rd = (word >> 21) & 31
    ra = (word >> 16) & 31
    rb = (word >> 11) & 31
    if opcode == OP_XO:
        return (opcode, rd, ra, rb, word & 0x7FF)
    imm = word & 0xFFFF
    if imm >= 0x8000 and opcode in _SIGNED_IMM_OPCODES:
        imm -= 0x10000
    return (opcode, rd, ra, rb, imm)


class Core:
    """One RX32 processor.  Shares memory with its siblings via Machine."""

    __slots__ = (
        "machine",
        "core_id",
        "regs",
        "pc",
        "lr",
        "cr",
        "halted",
        "blocked",
        "exit_code",
        "instret",
        "_load_transform",
        "_store_transform",
    )

    def __init__(self, machine: "Machine", core_id: int) -> None:
        self.machine = machine
        self.core_id = core_id
        self.reset()

    def reset(self) -> None:
        self.regs = [0] * 32
        self.pc = 0
        self.lr = 0
        self.cr = 0  # -1 = LT, 0 = EQ, 1 = GT
        self.halted = False
        self.blocked = False
        self.exit_code: int | None = None
        self.instret = 0
        self._load_transform = None
        self._store_transform = None

    # ------------------------------------------------------------------

    def step(self) -> None:
        """Execute exactly one instruction (test/debug convenience)."""
        self.run_quantum(1)

    def run_quantum(self, limit: int) -> int:
        """Execute up to *limit* instructions; return the number executed.

        Stops early when the core halts (exit syscall), blocks (barrier)
        or raises a trap.  Traps propagate to the caller with core/pc
        context attached.  Dispatches to the machine's block-compiling
        engine when one is configured (``Machine(engine="block")``); the
        engine itself falls back to :meth:`_run_quantum_simple` around
        every fault-injection hook.
        """
        engine = self.machine.block_engine
        if engine is not None:
            return engine.dispatch(self, limit)
        return self._run_quantum_simple(limit)

    def _run_quantum_simple(self, limit: int) -> int:
        """The per-instruction interpreter loop (the ``simple`` engine)."""
        machine = self.machine
        mem = machine.memory
        read_word = mem.read_word
        write_word = mem.write_word
        read_byte = mem.read_byte
        write_byte = mem.write_byte
        mem_data = mem.data
        regs = self.regs
        code_base = machine.code_base
        code_end = machine.code_end
        code_words = machine.code_words
        decode_cache = machine.decode_cache
        fetch_watch = machine._fetch_watch
        load_watch = machine._load_watch
        store_watch = machine._store_watch
        syscall = machine.syscalls.dispatch
        read_ranges, write_ranges = machine.access_ranges()

        pc = self.pc
        executed = 0
        try:
            while executed < limit:
                if pc < code_base or pc >= code_end:
                    raise MemoryTrap(
                        f"instruction fetch outside code segment at {pc:#010x}",
                        address=pc,
                    )
                index = (pc - code_base) >> 2
                if fetch_watch and pc in fetch_watch:
                    self.pc = pc
                    substitute = fetch_watch[pc](self, pc, code_words[index])
                    word = code_words[index] if substitute is None else substitute
                    decoded = decode_fields(word)
                else:
                    decoded = decode_cache[index]
                    if decoded is None:
                        decoded = decode_fields(code_words[index])
                        decode_cache[index] = decoded
                executed += 1
                opcode, rd, ra, rb, imm = decoded

                if opcode == OP_ADDI:
                    regs[rd] = (regs[ra] + imm) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_LWZ:
                    ea = (regs[ra] + imm) & _MASK
                    if ea & 3 == 0:
                        for lo, hi in read_ranges:
                            if lo <= ea < hi:
                                value = unpack_from(">I", mem_data, ea)[0]
                                break
                        else:
                            value = read_word(ea, pc)  # raises the proper trap
                    else:
                        value = read_word(ea, pc)
                    if load_watch:
                        handler = load_watch.get(ea)
                        if handler is not None:
                            value = handler(self, ea, value) & _MASK
                    if self._load_transform is not None:
                        value = self._load_transform(value) & _MASK
                        self._load_transform = None
                    regs[rd] = value
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_STW:
                    ea = (regs[ra] + imm) & _MASK
                    value = regs[rd]
                    if self._store_transform is not None:
                        value = self._store_transform(value) & _MASK
                        self._store_transform = None
                    if store_watch:
                        handler = store_watch.get(ea)
                        if handler is not None:
                            value = handler(self, ea, value) & _MASK
                    if ea & 3 == 0:
                        for lo, hi in write_ranges:
                            if lo <= ea < hi:
                                pack_into(">I", mem_data, ea, value)
                                break
                        else:
                            write_word(ea, value, pc)  # raises the proper trap
                    else:
                        write_word(ea, value, pc)
                    pc += 4
                elif opcode == OP_BC:
                    cr = self.cr
                    if rd == COND_LT:
                        taken = cr < 0
                    elif rd == COND_LE:
                        taken = cr <= 0
                    elif rd == COND_EQ:
                        taken = cr == 0
                    elif rd == COND_GE:
                        taken = cr >= 0
                    elif rd == COND_GT:
                        taken = cr > 0
                    elif rd == COND_NE:
                        taken = cr != 0
                    elif rd == COND_ALWAYS:
                        taken = True
                    else:
                        raise IllegalInstructionTrap(
                            f"illegal branch condition {rd} at {pc:#010x}"
                        )
                    pc = (pc + imm * 4) & _MASK if taken else pc + 4
                elif opcode == OP_XO:
                    a = regs[ra]
                    b = regs[rb]
                    if imm == XO_ADD:
                        regs[rd] = (a + b) & _MASK
                    elif imm == XO_SUB:
                        regs[rd] = (a - b) & _MASK
                    elif imm == XO_MUL:
                        regs[rd] = (a * b) & _MASK
                    elif imm == XO_CMP:
                        if a & _SIGN:
                            a -= 0x100000000
                        if b & _SIGN:
                            b -= 0x100000000
                        self.cr = -1 if a < b else (1 if a > b else 0)
                        pc += 4
                        continue
                    elif imm == XO_DIVW or imm == XO_MODW:
                        if a & _SIGN:
                            a -= 0x100000000
                        if b & _SIGN:
                            b -= 0x100000000
                        if b == 0:
                            raise ArithmeticTrap(
                                f"integer division by zero at {pc:#010x}"
                            )
                        quotient = abs(a) // abs(b)
                        if (a < 0) != (b < 0):
                            quotient = -quotient
                        if imm == XO_DIVW:
                            regs[rd] = quotient & _MASK
                        else:
                            regs[rd] = (a - quotient * b) & _MASK
                    elif imm == XO_AND:
                        regs[rd] = a & b
                    elif imm == XO_OR:
                        regs[rd] = a | b
                    elif imm == XO_XOR:
                        regs[rd] = a ^ b
                    elif imm == XO_NOR:
                        regs[rd] = (a | b) ^ _MASK
                    elif imm == XO_SLW:
                        regs[rd] = (a << (b & 31)) & _MASK
                    elif imm == XO_SRW:
                        regs[rd] = a >> (b & 31)
                    elif imm == XO_SRAW:
                        if a & _SIGN:
                            a -= 0x100000000
                        regs[rd] = (a >> (b & 31)) & _MASK
                    elif imm == XO_NEG:
                        regs[rd] = (-a) & _MASK
                    elif imm == XO_NOT:
                        regs[rd] = a ^ _MASK
                    else:
                        raise IllegalInstructionTrap(
                            f"illegal XO sub-opcode {imm:#x} at {pc:#010x}"
                        )
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_CMPI:
                    a = regs[ra]
                    if a & _SIGN:
                        a -= 0x100000000
                    self.cr = -1 if a < imm else (1 if a > imm else 0)
                    pc += 4
                elif opcode == OP_B:
                    pc = (pc + imm * 4) & _MASK
                elif opcode == OP_BL:
                    self.lr = pc + 4
                    pc = (pc + imm * 4) & _MASK
                elif opcode == OP_BLR:
                    pc = self.lr
                elif opcode == OP_LBZ:
                    ea = (regs[ra] + imm) & _MASK
                    for lo, hi in read_ranges:
                        if lo <= ea < hi:
                            value = mem_data[ea]
                            break
                    else:
                        value = read_byte(ea, pc)  # raises the proper trap
                    if load_watch:
                        handler = load_watch.get(ea)
                        if handler is not None:
                            value = handler(self, ea, value) & 0xFF
                    if self._load_transform is not None:
                        value = self._load_transform(value) & 0xFF
                        self._load_transform = None
                    regs[rd] = value
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_STB:
                    ea = (regs[ra] + imm) & _MASK
                    value = regs[rd]
                    if self._store_transform is not None:
                        value = self._store_transform(value) & _MASK
                        self._store_transform = None
                    if store_watch:
                        handler = store_watch.get(ea)
                        if handler is not None:
                            # Byte ops mask handler results to a byte, same
                            # as the OP_LBZ load-watch path: the bus only
                            # carries 8 bits here.
                            value = handler(self, ea, value) & 0xFF
                    for lo, hi in write_ranges:
                        if lo <= ea < hi:
                            mem_data[ea] = value & 0xFF
                            break
                    else:
                        write_byte(ea, value, pc)  # raises the proper trap
                    pc += 4
                elif opcode == OP_ADDIS:
                    regs[rd] = (regs[ra] + (imm << 16)) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_MULLI:
                    regs[rd] = (regs[ra] * imm) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_ANDI:
                    regs[rd] = regs[ra] & imm
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_ORI:
                    regs[rd] = regs[ra] | imm
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_XORI:
                    regs[rd] = regs[ra] ^ imm
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_CMPLI:
                    a = regs[ra]
                    self.cr = -1 if a < imm else (1 if a > imm else 0)
                    pc += 4
                elif opcode == OP_SLWI:
                    regs[rd] = (regs[ra] << (imm & 31)) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_SRWI:
                    regs[rd] = regs[ra] >> (imm & 31)
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_SRAWI:
                    a = regs[ra]
                    if a & _SIGN:
                        a -= 0x100000000
                    regs[rd] = (a >> (imm & 31)) & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_MFLR:
                    regs[rd] = self.lr & _MASK
                    regs[0] = 0
                    pc += 4
                elif opcode == OP_MTLR:
                    self.lr = regs[rd]
                    pc += 4
                elif opcode == OP_SC:
                    self.pc = pc
                    syscall(self, imm)
                    pc += 4
                    if self.halted or self.blocked:
                        break
                elif opcode == OP_TRAP:
                    raise TrapInstructionHit(
                        f"trap instruction (code {imm}) at {pc:#010x}"
                    )
                else:
                    raise IllegalInstructionTrap(
                        f"illegal opcode {opcode:#x} at {pc:#010x}"
                    )
        except Trap as error:
            # Only machine-detected faults get location info attached.  A
            # blanket ``except Exception`` here used to dress up *any*
            # python error (a TypeError in a watch handler, say) like a
            # machine trap on its way out; genuine tool bugs must surface
            # undecorated instead of being classified as program crashes.
            if error.pc is None:
                error.pc = pc
            if error.core_id is None:
                error.core_id = self.core_id
            raise
        finally:
            self.pc = pc
            self.instret += executed
            machine.instret += executed
        return executed

"""Segmented flat memory for the RX32 machine.

The address space is one flat byte array carved into segments (code, data,
heap, one stack per core).  Program-initiated accesses are checked against
segment bounds and permissions — an access outside any segment, a store to
read-only code, or a misaligned word access raises a trap, which is how the
"Program crash" failure mode of the paper arises from corrupted pointers.

The *debug port* (:meth:`Memory.debug_read` / :meth:`Memory.debug_write`)
bypasses protection.  It models the processor debug facilities Xception
uses: the loader and the fault injector write through it, including into
the read-only code segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from .traps import AlignmentTrap, MemoryTrap

#: Granularity of snapshot/restore (see :mod:`repro.machine.snapshot`).
#: 64 KiB keeps the page count of the 5.25 MiB address space small enough
#: that a restore is a handful of slice compares, while one dirtied byte
#: never drags more than 64 KiB of copying with it.
PAGE_SIZE = 1 << 16


@dataclass(frozen=True)
class Segment:
    name: str
    start: int
    size: int
    writable: bool

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, address: int, size: int = 1) -> bool:
        return self.start <= address and address + size <= self.end


class Memory:
    """Byte-addressable memory with segment protection.

    Words are big-endian (matching the PowerPC ancestry of the ISA).
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.data = bytearray(size)
        self.segments: list[Segment] = []
        # Segment-layout version; consumers caching derived views of the
        # segment list (Machine.access_ranges, the block engine) key on it.
        self._ranges_gen = 0
        # Pages touched through the debug port since the last snapshot
        # baseline.  Debug writes may land outside any segment (e.g. a
        # MemoryWord corruption aimed at a gap), so segment-derived page
        # sets alone cannot tell a restore which pages to reset.
        self._debug_dirty_pages: set[int] = set()

    # -- segment management -------------------------------------------------

    def add_segment(self, name: str, start: int, size: int, *, writable: bool) -> Segment:
        if start < 0 or start + size > self.size:
            raise ValueError(f"segment {name!r} outside physical memory")
        for existing in self.segments:
            if start < existing.end and existing.start < start + size:
                raise ValueError(f"segment {name!r} overlaps {existing.name!r}")
        segment = Segment(name, start, size, writable)
        self.segments.append(segment)
        self._ranges_gen += 1
        return segment

    def segment_for(self, address: int, size: int = 1) -> Segment | None:
        for segment in self.segments:
            if segment.contains(address, size):
                return segment
        return None

    def _check(self, address: int, size: int, write: bool, pc: int | None) -> None:
        segment = self.segment_for(address, size)
        if segment is None:
            raise MemoryTrap(
                f"access to unmapped address {address:#010x}", address=address, pc=pc
            )
        if write and not segment.writable:
            raise MemoryTrap(
                f"write to read-only segment {segment.name!r} at {address:#010x}",
                address=address,
                pc=pc,
            )

    # -- program-initiated accesses (checked) --------------------------------

    def read_word(self, address: int, pc: int | None = None) -> int:
        if address & 3:
            raise AlignmentTrap(
                f"misaligned word read at {address:#010x}", address=address, pc=pc
            )
        self._check(address, 4, False, pc)
        data = self.data
        return (data[address] << 24) | (data[address + 1] << 16) | (data[address + 2] << 8) | data[address + 3]

    def write_word(self, address: int, value: int, pc: int | None = None) -> None:
        if address & 3:
            raise AlignmentTrap(
                f"misaligned word write at {address:#010x}", address=address, pc=pc
            )
        self._check(address, 4, True, pc)
        value &= 0xFFFFFFFF
        data = self.data
        data[address] = value >> 24
        data[address + 1] = (value >> 16) & 0xFF
        data[address + 2] = (value >> 8) & 0xFF
        data[address + 3] = value & 0xFF

    def read_byte(self, address: int, pc: int | None = None) -> int:
        self._check(address, 1, False, pc)
        return self.data[address]

    def write_byte(self, address: int, value: int, pc: int | None = None) -> None:
        self._check(address, 1, True, pc)
        self.data[address] = value & 0xFF

    # -- debug port (unchecked; models Xception's use of debug facilities) --

    def debug_read(self, address: int, size: int) -> bytes:
        if address < 0 or address + size > self.size:
            raise ValueError(f"debug read outside physical memory: {address:#x}+{size}")
        return bytes(self.data[address : address + size])

    def debug_write(self, address: int, payload: bytes) -> None:
        if address < 0 or address + len(payload) > self.size:
            raise ValueError(f"debug write outside physical memory: {address:#x}")
        if payload:
            self._debug_dirty_pages.update(
                range(address // PAGE_SIZE, (address + len(payload) - 1) // PAGE_SIZE + 1)
            )
        self.data[address : address + len(payload)] = payload

    def debug_read_word(self, address: int) -> int:
        return int.from_bytes(self.debug_read(address, 4), "big")

    def debug_write_word(self, address: int, value: int) -> None:
        self.debug_write(address, (value & 0xFFFFFFFF).to_bytes(4, "big"))

    # -- snapshot support (page granularity) ---------------------------------

    def segment_pages(self) -> list[int]:
        """Page numbers overlapping any segment, ascending."""
        pages: set[int] = set()
        for segment in self.segments:
            if segment.size:
                pages.update(
                    range(segment.start // PAGE_SIZE, (segment.end - 1) // PAGE_SIZE + 1)
                )
        return sorted(pages)

    def capture_pages(self, pages: list[int]) -> dict[int, bytes]:
        """Immutable copies of the given pages (page number → bytes)."""
        data = self.data
        out: dict[int, bytes] = {}
        for page in pages:
            start = page * PAGE_SIZE
            out[page] = bytes(data[start : start + PAGE_SIZE])
        return out

    def restore_pages(self, pages: dict[int, bytes]) -> int:
        """Write back captured pages, skipping those already identical.

        The compare-before-copy is what makes restore copy-on-write in
        practice: a run that dirtied two pages costs two page copies, not
        a full image copy.  Returns the number of pages rewritten.
        """
        # NB: slice the bytearray rather than a memoryview — memoryview's
        # rich-compare walks element-by-element (~25x slower than the
        # memcmp path a bytes/bytearray compare takes).
        data = self.data
        rewritten = 0
        for page, image in pages.items():
            start = page * PAGE_SIZE
            if data[start : start + PAGE_SIZE] != image:
                data[start : start + PAGE_SIZE] = image
                rewritten += 1
        return rewritten

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Checked read of a NUL-terminated string (for syscalls/tests).

        Every byte goes through the segment check: a corrupted pointer —
        negative, unmapped, or running off the end of a segment before
        the NUL — raises :class:`MemoryTrap` like any other bad program
        access, instead of wrapping around or crashing the tool.
        """
        out = bytearray()
        for offset in range(limit):
            byte = self.read_byte(address + offset)
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

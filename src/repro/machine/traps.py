"""Hardware trap conditions raised by the RX32 machine.

Traps are what turn an injected error into a *Program crash* outcome in the
paper's failure-mode taxonomy ("the program terminated abnormally and
generated errors detected by the system (incorrect instructions, etc)").
Every trap records the core, program counter and a short machine-level
reason so campaigns can break crashes down by cause.
"""

from __future__ import annotations


class Trap(Exception):
    """Base class for all machine-detected error conditions."""

    kind = "trap"

    def __init__(self, message: str, *, address: int | None = None, pc: int | None = None,
                 core_id: int | None = None) -> None:
        super().__init__(message)
        self.message = message
        self.address = address
        self.pc = pc
        self.core_id = core_id

    def describe(self) -> str:
        parts = [f"{self.kind}: {self.message}"]
        if self.pc is not None:
            parts.append(f"pc={self.pc:#010x}")
        if self.address is not None:
            parts.append(f"addr={self.address:#010x}")
        if self.core_id is not None:
            parts.append(f"core={self.core_id}")
        return " ".join(parts)


class IllegalInstructionTrap(Trap):
    """The fetched word does not decode to a valid instruction."""

    kind = "illegal-instruction"


class MemoryTrap(Trap):
    """Access to an unmapped address or a protection violation."""

    kind = "memory-fault"


class AlignmentTrap(Trap):
    """Word access to a non-word-aligned address."""

    kind = "alignment-fault"


class ArithmeticTrap(Trap):
    """Integer division or modulo by zero."""

    kind = "arithmetic-fault"


class TrapInstructionHit(Trap):
    """An explicit ``trap`` instruction executed outside debugger control."""

    kind = "trap-instruction"


class InvalidSyscallTrap(Trap):
    """Unknown syscall number, or syscall arguments the kernel rejects."""

    kind = "invalid-syscall"


class HeapTrap(Trap):
    """Heap-manager detected corruption (invalid free / double free)."""

    kind = "heap-corruption"


class ConsoleLimitExceeded(Trap):
    """Runaway output: the program printed past the console byte limit.

    The experiment manager classifies this as a *hang* — on the real
    testbed a loop spewing output would be killed by the run timeout, not
    detected by the processor.
    """

    kind = "console-overflow"

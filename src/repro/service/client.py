"""A thin ``urllib`` client for the broker's HTTP/JSON protocol.

Shared by the worker loop, ``repro submit`` and the test suites.  All
transport-level failures — connection refused while the broker restarts,
a socket dying mid-response — surface as :class:`BrokerUnavailable`;
protocol-level rejections (unknown campaign, malformed request) surface
as :class:`BrokerRequestError` with the broker's own message.  Callers
decide the retry policy: workers retry forever (a broker restart must
not kill the fleet), the submit client retries up to a deadline.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request
from typing import Callable, Iterator

from .protocol import API_PREFIX, WIRE_VERSION, ProtocolError


class BrokerUnavailable(ConnectionError):
    """The broker cannot be reached (down, restarting, or unroutable)."""


class BrokerRequestError(RuntimeError):
    """The broker answered with an error status."""

    def __init__(self, message: str, code: int) -> None:
        super().__init__(message)
        self.code = code


class BrokerClient:
    """One broker endpoint, e.g. ``BrokerClient("http://127.0.0.1:8642")``."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{API_PREFIX}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get(
                    "error", str(error)
                )
            except Exception:  # noqa: BLE001 - any body shape
                message = str(error)
            raise BrokerRequestError(message, error.code) from None
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as error:
            raise BrokerUnavailable(f"{url}: {error}") from None

    # -- endpoints -----------------------------------------------------

    def ping(self) -> dict:
        reply = self._request("/ping")
        version = reply.get("wire_version")
        if version != WIRE_VERSION:
            raise ProtocolError(
                f"broker speaks wire version {version}, this client needs "
                f"{WIRE_VERSION}"
            )
        return reply

    def submit(self, fingerprint: dict, options: dict, bundle_blob: str) -> dict:
        return self._request("/submit", {
            "fingerprint": fingerprint,
            "options": options,
            "bundle": bundle_blob,
        })

    def lease(self, worker_id: str) -> dict:
        return self._request("/lease", {"worker_id": worker_id})

    def report(
        self,
        worker_id: str,
        campaign_id: str,
        shard_id: int,
        attempt: int,
        entries: list[dict],
        *,
        complete: bool = False,
    ) -> dict:
        return self._request("/report", {
            "worker_id": worker_id,
            "campaign_id": campaign_id,
            "shard_id": shard_id,
            "attempt": attempt,
            "entries": entries,
            "complete": complete,
        })

    def heartbeat(
        self, worker_id: str, campaign_id: str, shard_id: int, attempt: int
    ) -> dict:
        return self._request("/heartbeat", {
            "worker_id": worker_id,
            "campaign_id": campaign_id,
            "shard_id": shard_id,
            "attempt": attempt,
        })

    def status(self, campaign_id: str | None = None) -> dict:
        if campaign_id is None:
            return self._request("/status")
        return self._request(f"/campaigns/{campaign_id}")

    def fetch_journal_file(self, campaign_id: str, name: str) -> bytes:
        url = f"{self.base_url}{API_PREFIX}/campaigns/{campaign_id}/journal/{name}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            try:
                message = json.loads(error.read().decode("utf-8")).get(
                    "error", str(error)
                )
            except Exception:  # noqa: BLE001
                message = str(error)
            raise BrokerRequestError(message, error.code) from None
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as error:
            raise BrokerUnavailable(f"{url}: {error}") from None

    def stream(self, campaign_id: str) -> Iterator[dict]:
        """Yield live campaign snapshots until the campaign completes.

        Transport failures raise :class:`BrokerUnavailable` mid-stream;
        callers fall back to polling :meth:`status`.
        """
        url = f"{self.base_url}{API_PREFIX}/campaigns/{campaign_id}/stream"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise BrokerRequestError(str(error), error.code) from None
        except (urllib.error.URLError, ConnectionError, socket.timeout,
                TimeoutError, OSError) as error:
            raise BrokerUnavailable(f"{url}: {error}") from None

    def shutdown(self) -> dict:
        return self._request("/shutdown", {})

    # -- resilience helpers -------------------------------------------

    def wait_until_reachable(
        self,
        deadline_seconds: float,
        *,
        poll: float = 0.2,
        clock: Callable[[], float] = time.monotonic,
    ) -> dict:
        """Ping until the broker answers, or raise after the deadline."""
        deadline = clock() + deadline_seconds
        while True:
            try:
                return self.ping()
            except BrokerUnavailable:
                if clock() >= deadline:
                    raise
                time.sleep(poll)

"""Merging worker journal segments into one canonical campaign journal.

Workers stream journal *segments* — files of the exact JSONL entries a
local ``runs.jsonl`` holds — and lease-based work stealing delivers them
**at least once**: a stalled worker's shard is re-leased, both workers
may finish the same run, and a report can land after the broker already
rewound the shard.  The merge makes that safe:

* every segment is repaired with :func:`repro.persist.trim_partial_tail`
  first (a SIGKILLed writer leaves an unterminated final line, same as
  the local journal);
* records are deduplicated by their serial run index — the campaign
  fingerprint pins what the index *means*, so two records for one index
  are the same (fault, case) pair executed twice;
* duplicates must agree byte for byte.  Runs are deterministic, so a
  disagreement can only mean corruption or a mis-routed segment, and the
  merge refuses (:class:`MergeConflict`) rather than guessing;
* the canonical journal is written in serial-index order through
  :func:`repro.orchestrator.journal.encode_entry`, which makes it
  bit-identical to the journal a single-process ``--jobs 1`` campaign
  writes — the invariant the chaos suite asserts.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from ..orchestrator.journal import MANIFEST_NAME, RUNS_NAME, encode_entry
from ..persist import atomic_write_json, atomic_write_text, trim_partial_tail
from ..swifi.campaign import RunRecord


class MergeConflict(RuntimeError):
    """Two segments disagree about one run's record — refuse to merge."""


def parse_segment_text(text: str) -> list[dict]:
    """Parse one segment's JSONL text into journal entry dicts.

    Mirrors the local journal reader's crash tolerance: exactly one
    unterminated final line (a writer killed mid-append) is dropped; any
    other malformed line is an error.
    """
    entries: list[dict] = []
    lines = text.split("\n")
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if position == len(lines) - 1 and not text.endswith("\n"):
                break
            raise MergeConflict(
                f"corrupt segment line {position + 1}"
            ) from None
        if not isinstance(entry, dict):
            raise MergeConflict(f"segment line {position + 1} is not an object")
        entries.append(entry)
    return entries


def merge_entries(
    segment_entries: Iterable[Sequence[dict]],
    *,
    total_runs: int | None = None,
) -> tuple[dict[int, dict], dict[int, dict]]:
    """Merge segments' entries into ``(records, traces)`` keyed by index.

    Records are deduplicated first-wins; a duplicate that *differs* from
    the kept record raises :class:`MergeConflict` (deterministic runs
    cannot legitimately disagree).  Trace payloads carry wall-clock
    timings, so duplicates there are expected to differ — first one
    wins, no comparison.  Unknown entry types are rejected.
    """
    records: dict[int, dict] = {}
    traces: dict[int, dict] = {}
    for entries in segment_entries:
        for entry in entries:
            kind = entry.get("type")
            if kind == "run":
                index = int(entry["index"])
                if total_runs is not None and not 0 <= index < total_runs:
                    raise MergeConflict(
                        f"run index {index} outside campaign of {total_runs} runs"
                    )
                record = entry["record"]
                kept = records.get(index)
                if kept is None:
                    records[index] = record
                elif kept != record:
                    raise MergeConflict(
                        f"segments disagree about run {index}: "
                        f"{kept!r} != {record!r}"
                    )
            elif kind == "trace":
                traces.setdefault(int(entry["index"]), entry["trace"])
            else:
                raise MergeConflict(f"unknown segment entry type {kind!r}")
    return records, traces


def merge_segment_files(
    paths: Iterable[str],
    *,
    total_runs: int | None = None,
) -> tuple[dict[int, dict], dict[int, dict]]:
    """Trim, parse and merge segment files (missing files are skipped)."""
    all_entries: list[list[dict]] = []
    for path in sorted(paths):
        if not os.path.exists(path):
            continue
        # Repair a torn tail before parsing, exactly as every local
        # journal writer does before appending (see repro.persist).
        trim_partial_tail(path)
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            all_entries.append(parse_segment_text(text))
        except MergeConflict as error:
            raise MergeConflict(f"{path}: {error}") from None
    return merge_entries(all_entries, total_runs=total_runs)


def render_canonical_runs(
    records: dict[int, dict],
    traces: dict[int, dict] | None = None,
    failures: list[dict] | None = None,
) -> str:
    """Render the merged state as canonical ``runs.jsonl`` text.

    Entry order matches what a fresh single-process campaign writes: one
    ``run`` entry per serial index, ascending (each followed by its
    ``trace`` entry when present), then any ``shard-failed`` entries,
    then the ``plan`` partition summary over the surviving records.
    """
    from ..planning.plan import plan_from_records

    traces = traces or {}
    lines: list[str] = []
    for index in sorted(records):
        lines.append(encode_entry({"type": "run", "index": index,
                                   "record": records[index]}))
        if index in traces:
            lines.append(encode_entry({"type": "trace", "index": index,
                                       "trace": traces[index]}))
    for failure in failures or []:
        lines.append(encode_entry(failure))
    plan = plan_from_records(
        RunRecord.from_dict(records[index]) for index in sorted(records)
    )
    lines.append(encode_entry({"type": "plan", "plan": plan.to_dict()}))
    return "".join(lines)


def write_canonical_journal(
    directory: str,
    fingerprint: dict,
    records: dict[int, dict],
    traces: dict[int, dict] | None = None,
    failures: list[dict] | None = None,
) -> None:
    """Atomically write the merged journal (manifest + runs) to *directory*.

    Both files go through the atomic-replace helpers, so a broker killed
    mid-merge leaves either the previous journal or the new one — never
    a torn ``runs.jsonl`` that a later resume would mis-read.
    """
    os.makedirs(directory, exist_ok=True)
    atomic_write_json(os.path.join(directory, MANIFEST_NAME), fingerprint)
    atomic_write_text(
        os.path.join(directory, RUNS_NAME),
        render_canonical_runs(records, traces, failures),
    )

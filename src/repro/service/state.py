"""The broker's state machine: durable queue, leases, segment intake.

Design rule: **disk is the truth, leases are soft state.**  Everything a
restarted broker needs lives in the campaign directory —

* ``manifest.json`` — the campaign fingerprint (atomic write);
* ``options.json`` — the JSON-safe execution options (atomic write);
* ``bundle.blob`` — the pickled campaign matrix (atomic write);
* ``segments/*.jsonl`` — append-only journal fragments streamed by
  workers, one file per (worker, shard, attempt) lease;
* ``journal/`` — the merged canonical journal, written once complete.

Leases are held only in memory.  A broker that is SIGKILLed and
restarted recovers by re-reading segments (each repaired with
:func:`repro.persist.trim_partial_tail`), recomputing the set of done
run indices, and re-sharding whatever is missing; every in-flight lease
is implicitly void, which at-least-once segment intake makes harmless.

Shard lifecycle::

    pending --lease--> leased --report(complete)--> done
       ^                  |
       |                  +-- heartbeat/report renews the lease
       +---- lease expires (worker died/stalled): remaining runs
             re-queued, attempt += 1, until max_attempts

A report whose lease is no longer current (expired, stolen, or from
before a broker restart) still has its *entries* accepted — the records
are deterministic and the merge deduplicates — but the worker is told
``lost`` so it abandons the shard and leases fresh work.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..orchestrator.journal import MANIFEST_NAME, RUNS_NAME, encode_entry
from ..orchestrator.scheduler import plan_shards
from ..orchestrator.worker import build_shard_task
from ..persist import atomic_write_json, atomic_write_text
from .merge import merge_segment_files, write_canonical_journal
from .protocol import (
    STATUS_LEASE,
    STATUS_LOST,
    STATUS_OK,
    CampaignBundle,
    CampaignOptions,
    ProtocolError,
    campaign_id_for,
    encode_blob,
)

OPTIONS_NAME = "options.json"
BUNDLE_NAME = "bundle.blob"
SEGMENTS_DIR = "segments"
JOURNAL_DIR = "journal"

#: Attempts per shard before its remaining runs are abandoned as failed.
#: Far above the pool's max_retries=2: the service's failure mode is
#: whole hosts dying under it, and a re-queued shard costs only the
#: runs that were never reported.
DEFAULT_MAX_ATTEMPTS = 16

CAMPAIGN_RUNNING = "running"
CAMPAIGN_COMPLETE = "complete"
CAMPAIGN_FAILED = "failed"


class ServiceError(RuntimeError):
    """Raised for requests that reference unknown campaigns or shards."""


@dataclass
class _Lease:
    worker_id: str
    attempt: int
    expires_at: float


@dataclass
class _ShardRec:
    shard_id: int
    indices: tuple[int, ...]
    seed: int
    attempt: int = 0
    lease: _Lease | None = None


@dataclass
class _CampaignState:
    campaign_id: str
    directory: str
    fingerprint: dict
    options: CampaignOptions
    bundle: CampaignBundle
    state: str = CAMPAIGN_RUNNING
    done: set[int] = field(default_factory=set)
    traced: set[int] = field(default_factory=set)
    failed: dict[int, str] = field(default_factory=dict)
    shards: dict[int, _ShardRec] = field(default_factory=dict)
    queue: deque = field(default_factory=deque)
    leases_granted: int = 0
    lease_expiries: int = 0
    stale_reports: int = 0
    reports: int = 0

    @property
    def total_runs(self) -> int:
        return self.bundle.total_runs

    @property
    def label(self) -> str:
        return self.options.label or self.bundle.program

    def segment_path(self, worker_id: str, shard_id: int, attempt: int) -> str:
        safe_worker = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in worker_id
        )
        return os.path.join(
            self.directory, SEGMENTS_DIR,
            f"seg-{safe_worker}-s{shard_id:04d}-a{attempt:02d}.jsonl",
        )

    def segment_paths(self) -> list[str]:
        segments = os.path.join(self.directory, SEGMENTS_DIR)
        if not os.path.isdir(segments):
            return []
        return [
            os.path.join(segments, name)
            for name in sorted(os.listdir(segments))
            if name.endswith(".jsonl")
        ]


class BrokerState:
    """Thread-safe campaign queue + lease bookkeeping + segment intake.

    Pure state machine: no sockets, no HTTP — the broker's HTTP handler
    (:mod:`repro.service.broker`) translates requests into these calls,
    and the test suite drives them directly (with an injected clock) to
    pin down lease-expiry and work-stealing semantics.
    """

    def __init__(
        self,
        state_dir: str,
        *,
        lease_timeout: float = 30.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        clock=time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError(f"lease_timeout must be > 0, got {lease_timeout}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.state_dir = state_dir
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.clock = clock
        self.campaigns: dict[str, _CampaignState] = {}
        self.workers_seen: dict[str, float] = {}
        self._lock = threading.RLock()
        self._changed = threading.Condition(self._lock)
        self._version = 0
        os.makedirs(self._campaigns_dir, exist_ok=True)
        self._recover()

    # -- layout --------------------------------------------------------

    @property
    def _campaigns_dir(self) -> str:
        return os.path.join(self.state_dir, "campaigns")

    # -- recovery ------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild queue state from disk after a (re)start."""
        for campaign_id in sorted(os.listdir(self._campaigns_dir)):
            directory = os.path.join(self._campaigns_dir, campaign_id)
            manifest = os.path.join(directory, MANIFEST_NAME)
            options_path = os.path.join(directory, OPTIONS_NAME)
            bundle_path = os.path.join(directory, BUNDLE_NAME)
            if not (os.path.exists(manifest) and os.path.exists(options_path)
                    and os.path.exists(bundle_path)):
                continue  # torn submission: atomic writes never got that far
            import json

            with open(manifest, "r", encoding="utf-8") as handle:
                fingerprint = json.load(handle)
            with open(options_path, "r", encoding="utf-8") as handle:
                options = CampaignOptions.from_dict(json.load(handle))
            with open(bundle_path, "r", encoding="utf-8") as handle:
                bundle = CampaignBundle.from_blob(handle.read())
            campaign = _CampaignState(
                campaign_id=campaign_id,
                directory=directory,
                fingerprint=fingerprint,
                options=options,
                bundle=bundle,
            )
            records, traces = merge_segment_files(
                campaign.segment_paths(), total_runs=campaign.total_runs
            )
            campaign.done = set(records)
            campaign.traced = set(traces)
            self.campaigns[campaign_id] = campaign
            self._plan_missing(campaign)
            self._maybe_finish(campaign)

    # -- submission ----------------------------------------------------

    def submit(self, fingerprint: dict, options: dict, bundle_blob: str) -> dict:
        """Accept (or idempotently re-accept) one campaign submission."""
        parsed_options = CampaignOptions.from_dict(options)
        bundle = CampaignBundle.from_blob(bundle_blob)
        expected = fingerprint.get("total_runs")
        if expected is not None and expected != bundle.total_runs:
            raise ProtocolError(
                f"fingerprint says {expected} runs but the bundle holds "
                f"{bundle.total_runs}"
            )
        campaign_id = campaign_id_for(fingerprint)
        with self._lock:
            existing = self.campaigns.get(campaign_id)
            if existing is not None:
                return self._submission_reply(existing, resumed=True)
            directory = os.path.join(self._campaigns_dir, campaign_id)
            os.makedirs(os.path.join(directory, SEGMENTS_DIR), exist_ok=True)
            # Bundle first, manifest last: recovery treats the manifest's
            # presence as "submission durable", so a crash between the
            # writes leaves a torn directory that is simply re-submitted.
            atomic_write_text(os.path.join(directory, BUNDLE_NAME), bundle_blob)
            atomic_write_json(os.path.join(directory, OPTIONS_NAME),
                              parsed_options.to_dict())
            atomic_write_json(os.path.join(directory, MANIFEST_NAME), fingerprint)
            campaign = _CampaignState(
                campaign_id=campaign_id,
                directory=directory,
                fingerprint=fingerprint,
                options=parsed_options,
                bundle=bundle,
            )
            self.campaigns[campaign_id] = campaign
            self._plan_missing(campaign)
            self._maybe_finish(campaign)  # zero-run campaigns complete at once
            self._bump()
            return self._submission_reply(campaign, resumed=False)

    @staticmethod
    def _submission_reply(campaign: _CampaignState, *, resumed: bool) -> dict:
        return {
            "status": STATUS_OK,
            "campaign_id": campaign.campaign_id,
            "resumed": resumed,
            "total_runs": campaign.total_runs,
            "completed_runs": len(campaign.done),
            "state": campaign.state,
        }

    def _plan_missing(self, campaign: _CampaignState) -> None:
        """(Re-)shard every run index not yet covered by segments."""
        missing = [
            index for index in range(campaign.total_runs)
            if index not in campaign.done and index not in campaign.failed
        ]
        campaign.shards.clear()
        campaign.queue.clear()
        for shard in plan_shards(
            missing,
            jobs=campaign.options.workers_hint,
            campaign_seed=campaign.options.seed,
            shard_size=campaign.options.shard_size,
        ):
            rec = _ShardRec(
                shard_id=shard.shard_id,
                indices=shard.run_indices,
                seed=shard.seed,
            )
            campaign.shards[rec.shard_id] = rec
            campaign.queue.append(rec.shard_id)

    # -- lease / steal -------------------------------------------------

    def _campaign_max_attempts(self, campaign: _CampaignState) -> int:
        return campaign.options.max_attempts or self.max_attempts

    def _expire_leases(self, now: float) -> None:
        for campaign in self.campaigns.values():
            for rec in list(campaign.shards.values()):
                if rec.lease is None or rec.lease.expires_at > now:
                    continue
                campaign.lease_expiries += 1
                rec.lease = None
                self._requeue(campaign, rec)
            self._maybe_finish(campaign)

    def _requeue(self, campaign: _CampaignState, rec: _ShardRec) -> None:
        """Return a shard to the queue with only its unreported runs."""
        remaining = tuple(
            index for index in rec.indices if index not in campaign.done
        )
        if not remaining:
            campaign.shards.pop(rec.shard_id, None)
            return
        if rec.attempt >= self._campaign_max_attempts(campaign):
            reason = (
                f"shard {rec.shard_id} abandoned after "
                f"{rec.attempt} expired leases"
            )
            for index in remaining:
                campaign.failed[index] = reason
            campaign.shards.pop(rec.shard_id, None)
            return
        rec.indices = remaining
        campaign.queue.append(rec.shard_id)

    def lease(self, worker_id: str) -> dict:
        """Hand the next pending shard to *worker_id*, or report idle."""
        now = self.clock()
        with self._lock:
            self.workers_seen[worker_id] = now
            self._expire_leases(now)
            for campaign in self.campaigns.values():
                while campaign.queue:
                    shard_id = campaign.queue.popleft()
                    rec = campaign.shards.get(shard_id)
                    if rec is None or rec.lease is not None:
                        continue  # stale queue entry
                    rec.attempt += 1
                    rec.lease = _Lease(
                        worker_id=worker_id,
                        attempt=rec.attempt,
                        expires_at=now + self.lease_timeout,
                    )
                    campaign.leases_granted += 1
                    task = build_shard_task(
                        shard_id=rec.shard_id,
                        attempt=rec.attempt,
                        indices=rec.indices,
                        program=campaign.bundle.program,
                        executable=campaign.bundle.executable,
                        faults=campaign.bundle.faults,
                        cases=campaign.bundle.cases,
                        budgets=campaign.bundle.budgets,
                        num_cores=campaign.bundle.num_cores,
                        quantum=campaign.bundle.quantum,
                        seed=rec.seed,
                        snapshot=campaign.options.snapshot,
                        trace=campaign.options.trace,
                        engine=campaign.options.engine,
                    )
                    self._bump()
                    return {
                        "status": STATUS_LEASE,
                        "campaign_id": campaign.campaign_id,
                        "shard_id": rec.shard_id,
                        "attempt": rec.attempt,
                        "lease_seconds": self.lease_timeout,
                        "run_count": len(rec.indices),
                        "task": encode_blob(task),
                    }
            return {"status": "idle"}

    # -- segment intake ------------------------------------------------

    def report(
        self,
        worker_id: str,
        campaign_id: str,
        shard_id: int,
        attempt: int,
        entries: list[dict],
        *,
        complete: bool = False,
    ) -> dict:
        """Ingest a segment fragment; renew or deny the shard's lease.

        Entries are appended to the lease's segment file and counted into
        the done-set *regardless* of lease validity — deterministic runs
        make duplicated or late results safe, and dropping real results
        would only force a pointless re-execution.  Only the lease
        renewal and the ``complete`` transition require a current lease.
        """
        now = self.clock()
        with self._lock:
            self.workers_seen[worker_id] = now
            self._expire_leases(now)
            campaign = self.campaigns.get(campaign_id)
            if campaign is None:
                raise ServiceError(f"unknown campaign {campaign_id!r}")
            campaign.reports += 1
            if entries:
                self._append_segment(campaign, worker_id, shard_id,
                                     attempt, entries)
            rec = campaign.shards.get(shard_id)
            valid = (
                rec is not None
                and rec.lease is not None
                and rec.lease.worker_id == worker_id
                and rec.lease.attempt == attempt
            )
            if valid:
                rec.lease.expires_at = now + self.lease_timeout
                if complete:
                    remaining = [i for i in rec.indices if i not in campaign.done]
                    if remaining:
                        # "complete" without the results is a worker bug;
                        # treat it as a died worker and re-queue.
                        rec.lease = None
                        self._requeue(campaign, rec)
                    else:
                        campaign.shards.pop(shard_id, None)
            else:
                campaign.stale_reports += 1
            self._maybe_finish(campaign)
            self._bump()
            return {
                "status": STATUS_OK if valid else STATUS_LOST,
                "completed_runs": len(campaign.done),
                "total_runs": campaign.total_runs,
                "state": campaign.state,
            }

    def heartbeat(
        self, worker_id: str, campaign_id: str, shard_id: int, attempt: int
    ) -> dict:
        """An empty report: renews the lease or tells the worker it lost."""
        return self.report(worker_id, campaign_id, shard_id, attempt, [])

    def _append_segment(
        self,
        campaign: _CampaignState,
        worker_id: str,
        shard_id: int,
        attempt: int,
        entries: list[dict],
    ) -> None:
        path = campaign.segment_path(worker_id, shard_id, attempt)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        lines: list[str] = []
        for entry in entries:
            kind = entry.get("type")
            if kind == "run":
                index = int(entry["index"])
                if not 0 <= index < campaign.total_runs:
                    raise ServiceError(
                        f"run index {index} outside campaign "
                        f"{campaign.campaign_id}"
                    )
                campaign.done.add(index)
                campaign.failed.pop(index, None)
            elif kind == "trace":
                campaign.traced.add(int(entry["index"]))
            else:
                raise ServiceError(f"unknown report entry type {kind!r}")
            lines.append(encode_entry(entry))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("".join(lines))
            handle.flush()
            os.fsync(handle.fileno())

    # -- completion ----------------------------------------------------

    def _maybe_finish(self, campaign: _CampaignState) -> None:
        if campaign.state != CAMPAIGN_RUNNING:
            return
        covered = len(campaign.done) + len(
            set(campaign.failed) - campaign.done
        )
        if covered < campaign.total_runs:
            return
        records, traces = merge_segment_files(
            campaign.segment_paths(), total_runs=campaign.total_runs
        )
        failures = []
        failed_indices = sorted(set(campaign.failed) - set(records))
        if failed_indices:
            failures.append({
                "type": "shard-failed",
                "shard": -1,
                "runs": failed_indices,
                "error": campaign.failed[failed_indices[0]],
            })
        write_canonical_journal(
            os.path.join(campaign.directory, JOURNAL_DIR),
            campaign.fingerprint,
            records,
            traces,
            failures,
        )
        campaign.state = CAMPAIGN_FAILED if failed_indices else CAMPAIGN_COMPLETE
        self._bump()

    # -- status / streaming -------------------------------------------

    def _bump(self) -> None:
        self._version += 1
        self._changed.notify_all()

    def current_version(self) -> int:
        with self._lock:
            return self._version

    def snapshot(self, campaign_id: str | None = None) -> dict:
        """One JSON-safe view of broker (or single-campaign) progress."""
        now = self.clock()
        with self._lock:
            self._expire_leases(now)
            if campaign_id is not None:
                campaign = self.campaigns.get(campaign_id)
                if campaign is None:
                    raise ServiceError(f"unknown campaign {campaign_id!r}")
                return self._campaign_snapshot(campaign)
            return {
                "version": self._version,
                "lease_timeout": self.lease_timeout,
                "workers": {
                    worker: round(now - seen, 3)
                    for worker, seen in self.workers_seen.items()
                },
                "campaigns": [
                    self._campaign_snapshot(campaign)
                    for campaign in self.campaigns.values()
                ],
            }

    def _campaign_snapshot(self, campaign: _CampaignState) -> dict:
        leased = sum(
            1 for rec in campaign.shards.values() if rec.lease is not None
        )
        return {
            "campaign_id": campaign.campaign_id,
            "label": campaign.label,
            "state": campaign.state,
            "total_runs": campaign.total_runs,
            "completed_runs": len(campaign.done),
            "failed_runs": len(set(campaign.failed) - campaign.done),
            "shards_pending": len(campaign.queue),
            "shards_leased": leased,
            "leases_granted": campaign.leases_granted,
            "lease_expiries": campaign.lease_expiries,
            "stale_reports": campaign.stale_reports,
            "reports": campaign.reports,
        }

    def wait_for_change(self, version: int, timeout: float) -> int:
        """Block until the state version passes *version* (for streaming)."""
        deadline = time.monotonic() + timeout
        with self._changed:
            while self._version <= version:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._changed.wait(remaining)
            return self._version

    def journal_file(self, campaign_id: str, name: str) -> str:
        """Path of a merged-journal file; raises until the merge exists."""
        if name not in (MANIFEST_NAME, RUNS_NAME):
            raise ServiceError(f"no such journal file {name!r}")
        with self._lock:
            campaign = self.campaigns.get(campaign_id)
            if campaign is None:
                raise ServiceError(f"unknown campaign {campaign_id!r}")
            path = os.path.join(campaign.directory, JOURNAL_DIR, name)
            if campaign.state == CAMPAIGN_RUNNING or not os.path.exists(path):
                raise ServiceError(
                    f"campaign {campaign_id} has no merged journal yet "
                    f"({campaign.state}, "
                    f"{len(campaign.done)}/{campaign.total_runs} runs)"
                )
            return path

"""Distributed campaign service: broker, work-stealing workers, merge.

This package turns the single-host campaign orchestrator into a small
service with three roles, wired together over stdlib HTTP/JSON:

* ``repro serve`` — the **broker** (:mod:`broker`, :mod:`state`): accepts
  campaign submissions keyed by journal fingerprint, shards the
  fault×case matrix into a durable work queue, hands out lease-based
  shard assignments and merges the returned journal segments into a
  canonical journal that is bit-identical to a local ``--jobs 1`` run.
* ``repro work`` — a **worker** (:mod:`worker`): leases shards, executes
  them with the exact run loop the multiprocessing pool uses, and
  streams per-run journal entries back as segment appends.
* ``repro submit`` — the **client** (:mod:`submit`, :mod:`client`):
  builds the §6 campaigns through the same generator ``run_section6``
  uses, submits them, follows streaming telemetry and downloads the
  merged journals.

Faults in any role are survivable: workers may be SIGKILLed (leases
expire and shards are stolen), the broker may be restarted (segments on
disk are the truth; leases are soft state), and reports may be
duplicated (merge deduplicates by run index and verifies duplicates are
byte-identical).  ``tests/test_service*.py`` prove those claims with a
chaos harness and seeded property tests.
"""

from .client import BrokerClient, BrokerRequestError, BrokerUnavailable
from .merge import (
    MergeConflict,
    merge_entries,
    merge_segment_files,
    parse_segment_text,
    render_canonical_runs,
    write_canonical_journal,
)
from .protocol import (
    WIRE_VERSION,
    CampaignBundle,
    CampaignOptions,
    ProtocolError,
    campaign_id_for,
    decode_blob,
    encode_blob,
)
from .state import (
    CAMPAIGN_COMPLETE,
    CAMPAIGN_FAILED,
    CAMPAIGN_RUNNING,
    DEFAULT_MAX_ATTEMPTS,
    BrokerState,
    ServiceError,
)
from .broker import BrokerHTTPServer, run_broker
from .worker import LeaseLost, ServiceWorker, worker_main
from .submit import (
    Submission,
    build_submissions,
    download_journal,
    run_submit,
    submit_campaign,
    wait_for_campaign,
)

__all__ = [
    "BrokerClient",
    "BrokerRequestError",
    "BrokerUnavailable",
    "MergeConflict",
    "merge_entries",
    "merge_segment_files",
    "parse_segment_text",
    "render_canonical_runs",
    "write_canonical_journal",
    "WIRE_VERSION",
    "CampaignBundle",
    "CampaignOptions",
    "ProtocolError",
    "campaign_id_for",
    "decode_blob",
    "encode_blob",
    "CAMPAIGN_COMPLETE",
    "CAMPAIGN_FAILED",
    "CAMPAIGN_RUNNING",
    "DEFAULT_MAX_ATTEMPTS",
    "BrokerState",
    "ServiceError",
    "BrokerHTTPServer",
    "run_broker",
    "LeaseLost",
    "ServiceWorker",
    "worker_main",
    "Submission",
    "build_submissions",
    "download_journal",
    "run_submit",
    "submit_campaign",
    "wait_for_campaign",
]

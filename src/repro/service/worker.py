"""The service worker: lease shards over HTTP, execute, stream segments.

A worker is a loop around three verbs — *lease*, *execute*, *report* —
with exactly the run loop the ``multiprocessing`` pool workers use
(:func:`repro.orchestrator.execute_shard_runs`), so engines, snapshot
policies, tracing and the planner behave identically on a remote host.

Failure behaviour, which the chaos suite SIGKILLs into relief:

* every completed run is reported immediately, so a worker killed
  mid-shard loses at most the run in flight — the rest is already in a
  broker-side segment and the re-leased shard shrinks accordingly;
* a report answered ``lost`` (lease expired and stolen, or the broker
  restarted) aborts the shard with :class:`LeaseLost`; the results
  reported so far remain valid because segment merge deduplicates;
* a broker that stops answering is retried with bounded backoff — a
  broker restart must look to the fleet like a slow network, nothing
  more (``max_idle`` bounds the patience: unreachable time counts as
  idle time, and a worker that never reached the broker at all reports
  the bad URL instead of exiting cleanly);
* a background heartbeat renews the lease while a single long run
  executes, and flags the loop to abandon the shard the moment the
  broker reports the lease gone.
"""

from __future__ import annotations

import os
import threading
import time

from ..orchestrator.worker import ShardTask, execute_shard_runs
from ..swifi.campaign import RunRecord
from .client import BrokerClient, BrokerRequestError, BrokerUnavailable
from .protocol import STATUS_IDLE, STATUS_LEASE, STATUS_OK, STATUS_SHUTDOWN, decode_blob

#: Backoff ceiling while the broker is unreachable.
MAX_BACKOFF = 2.0


class LeaseLost(RuntimeError):
    """This worker's lease was stolen or voided; abandon the shard."""


class ServiceWorker:
    """One worker process' lease/execute/report loop."""

    def __init__(
        self,
        broker_url: str,
        *,
        worker_id: str | None = None,
        poll_interval: float = 0.5,
        max_idle: float | None = None,
        client: BrokerClient | None = None,
        stop_event: threading.Event | None = None,
    ) -> None:
        self.client = client or BrokerClient(broker_url)
        self.worker_id = worker_id or f"w-{os.uname().nodename}-{os.getpid()}"
        self.poll_interval = poll_interval
        self.max_idle = max_idle
        self.stop_event = stop_event or threading.Event()
        self.shards_completed = 0
        self.runs_completed = 0

    # -- the loop ------------------------------------------------------

    def run(self) -> int:
        """Work until shutdown (0), or until idle past ``max_idle`` (0).

        An unreachable broker is retried with bounded backoff — forever
        by default, because to a fleet a broker restart must look like a
        slow network.  With ``max_idle`` set, unreachable time counts as
        idle time; if the timeout elapses without the broker ever having
        answered, the :class:`BrokerUnavailable` propagates so the CLI
        can report a bad URL instead of exiting as if work were done.
        """
        idle_since: float | None = None
        backoff = self.poll_interval
        connected = False
        while not self.stop_event.is_set():
            try:
                reply = self.client.lease(self.worker_id)
            except BrokerUnavailable:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if self.max_idle is not None and now - idle_since >= self.max_idle:
                    if not connected:
                        raise
                    return 0
                self._sleep(backoff)
                backoff = min(backoff * 2, MAX_BACKOFF)
                continue
            connected = True
            backoff = self.poll_interval
            status = reply.get("status")
            if status == STATUS_SHUTDOWN:
                return 0
            if status == STATUS_IDLE:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if self.max_idle is not None and now - idle_since >= self.max_idle:
                    return 0
                self._sleep(self.poll_interval)
                continue
            if status != STATUS_LEASE:
                self._sleep(self.poll_interval)
                continue
            idle_since = None
            try:
                self._run_lease(reply)
            except LeaseLost:
                continue  # results so far are safe; lease fresh work
        return 0

    def _sleep(self, seconds: float) -> None:
        self.stop_event.wait(seconds)

    # -- one lease -----------------------------------------------------

    def _run_lease(self, lease: dict) -> None:
        task = decode_blob(lease["task"])
        if not isinstance(task, ShardTask):
            raise LeaseLost()  # mis-routed blob; never execute it
        campaign_id = lease["campaign_id"]
        shard_id = int(lease["shard_id"])
        attempt = int(lease["attempt"])
        lease_seconds = float(lease.get("lease_seconds", 30.0))
        lost = threading.Event()
        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(campaign_id, shard_id, attempt,
                  max(lease_seconds / 3.0, 0.05), heartbeat_stop, lost),
            daemon=True,
        )
        heartbeat.start()
        try:
            def emit(run_index: int, record: RunRecord, trace: dict | None) -> None:
                if lost.is_set() or self.stop_event.is_set():
                    raise LeaseLost()
                entries = [{"type": "run", "index": run_index,
                            "record": record.to_dict()}]
                if trace is not None:
                    entries.append({"type": "trace", "index": run_index,
                                    "trace": trace})
                reply = self._report_with_retry(
                    campaign_id, shard_id, attempt, entries
                )
                self.runs_completed += 1
                if reply.get("status") != STATUS_OK:
                    raise LeaseLost()

            execute_shard_runs(task, emit)
            reply = self._report_with_retry(
                campaign_id, shard_id, attempt, [], complete=True
            )
            if reply.get("status") == STATUS_OK:
                self.shards_completed += 1
        finally:
            heartbeat_stop.set()
            heartbeat.join(timeout=2.0)

    def _report_with_retry(
        self,
        campaign_id: str,
        shard_id: int,
        attempt: int,
        entries: list[dict],
        *,
        complete: bool = False,
    ) -> dict:
        """Report, riding out broker restarts; give up via LeaseLost.

        Retries ``BrokerUnavailable`` with backoff for roughly two lease
        lifetimes — past that the lease is certainly void, and the shard
        will be re-leased from the broker's durable state anyway.
        """
        deadline = time.monotonic() + MAX_BACKOFF * 8
        backoff = 0.1
        while True:
            try:
                return self.client.report(
                    self.worker_id, campaign_id, shard_id, attempt, entries,
                    complete=complete,
                )
            except BrokerUnavailable:
                if time.monotonic() >= deadline or self.stop_event.is_set():
                    raise LeaseLost() from None
                self._sleep(backoff)
                backoff = min(backoff * 2, MAX_BACKOFF)
            except BrokerRequestError:
                # Unknown campaign/shard: the broker lost (or finished)
                # this campaign across a restart.  Abandon the shard.
                raise LeaseLost() from None

    def _heartbeat_loop(
        self,
        campaign_id: str,
        shard_id: int,
        attempt: int,
        interval: float,
        stop: threading.Event,
        lost: threading.Event,
    ) -> None:
        while not stop.wait(interval):
            try:
                reply = self.client.heartbeat(
                    self.worker_id, campaign_id, shard_id, attempt
                )
            except BrokerUnavailable:
                continue  # the report path owns give-up policy
            except BrokerRequestError:
                lost.set()
                return
            if reply.get("status") != STATUS_OK:
                lost.set()
                return


def worker_main(
    broker_url: str,
    *,
    worker_id: str | None = None,
    poll_interval: float = 0.5,
    max_idle: float | None = None,
) -> int:
    """Entry point for one worker process (``repro work``)."""
    worker = ServiceWorker(
        broker_url,
        worker_id=worker_id,
        poll_interval=poll_interval,
        max_idle=max_idle,
    )
    return worker.run()

"""Wire protocol of the distributed campaign service.

Everything on the wire is JSON over HTTP — small dicts a human can read
with ``curl`` — except the campaign matrix itself.  Faults, input cases
and the compiled executable are exactly the objects the
``multiprocessing`` orchestrator already pickles into every
:class:`repro.orchestrator.ShardTask`; the service ships the same
pickles, base64-armoured inside the JSON envelope, instead of inventing
a parallel JSON schema for a dozen spec classes.  The trust model is
unchanged too: broker and workers are one user's processes on one
trusted network (localhost or a private cluster), the same boundary the
pool's pickle queue always had — do not expose a broker to untrusted
peers.

The JSON side of the protocol:

* a **submission** is ``{fingerprint, options, bundle}`` — the journal
  manifest fingerprint (:func:`repro.orchestrator.campaign_fingerprint`,
  the service's source of truth for campaign identity), the JSON-safe
  execution options, and the base64-pickled :class:`CampaignBundle`;
* a **lease** hands a worker ``{campaign_id, shard_id, attempt,
  lease_seconds, task}`` with the task a base64-pickled
  :class:`repro.orchestrator.ShardTask`;
* a **report** streams journal entries — the same ``{"type": "run",
  "index": ..., "record": ...}`` dicts ``runs.jsonl`` holds — so worker
  segments are literally journal fragments the broker can merge.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from dataclasses import dataclass, field

from ..machine.loader import Executable
from ..swifi.campaign import InputCase
from ..swifi.faults import MachineFault

#: Bumped on any incompatible wire change; broker and workers refuse to
#: talk across versions (a stale worker silently mis-executing shards
#: would be far worse than an error).
WIRE_VERSION = 1

API_PREFIX = "/api/v1"

#: Lease/report response statuses.
STATUS_OK = "ok"
STATUS_LEASE = "lease"
STATUS_IDLE = "idle"
STATUS_LOST = "lost"
STATUS_SHUTDOWN = "shutdown"


class ProtocolError(ValueError):
    """Raised for malformed or version-incompatible wire payloads."""


def encode_blob(obj: object) -> str:
    """Pickle *obj* and base64-armour it for a JSON field."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_blob(text: str) -> object:
    """Inverse of :func:`encode_blob`."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as error:  # noqa: BLE001 - any decode failure is protocol-level
        raise ProtocolError(f"undecodable blob: {error}") from error


def campaign_id_for(fingerprint: dict) -> str:
    """Stable campaign id: a digest of the journal manifest fingerprint.

    Deriving the id from the fingerprint makes submission idempotent —
    re-submitting the same campaign (a retry after a broker restart, a
    resumed client) lands on the same queue entry instead of forking a
    duplicate campaign.
    """
    canonical = json.dumps(fingerprint, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignBundle:
    """The complete campaign matrix, shipped whole to the broker.

    This is everything :class:`repro.orchestrator.CampaignOrchestrator`
    takes from a calibrated runner — the broker slices it into
    :class:`ShardTask` values with the shared
    :func:`repro.orchestrator.build_shard_task`, so a shard leased over
    HTTP is indistinguishable from one sent down a multiprocessing pipe.
    """

    program: str
    executable: Executable
    faults: tuple[MachineFault, ...]
    cases: tuple[InputCase, ...]
    budgets: dict[str, int]
    num_cores: int = 1
    quantum: int = 64

    @property
    def total_runs(self) -> int:
        return len(self.faults) * len(self.cases)

    def to_blob(self) -> str:
        return encode_blob(self)

    @staticmethod
    def from_blob(text: str) -> "CampaignBundle":
        bundle = decode_blob(text)
        if not isinstance(bundle, CampaignBundle):
            raise ProtocolError(
                f"expected a CampaignBundle blob, got {type(bundle).__name__}"
            )
        return bundle


@dataclass(frozen=True)
class CampaignOptions:
    """JSON-safe execution options riding beside the bundle.

    The subset of :class:`repro.orchestrator.OrchestratorOptions` that
    makes sense across host boundaries — per-host knobs (memo
    directories, drill hooks) stay host-local.
    """

    seed: int = 0
    shard_size: int | None = None
    engine: str = "simple"
    snapshot: str = "off"
    trace: bool = False
    label: str | None = None
    max_attempts: int | None = None
    workers_hint: int = 4
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "wire_version": WIRE_VERSION,
            "seed": self.seed,
            "shard_size": self.shard_size,
            "engine": self.engine,
            "snapshot": self.snapshot,
            "trace": self.trace,
            "label": self.label,
            "max_attempts": self.max_attempts,
            "workers_hint": self.workers_hint,
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_dict(payload: dict) -> "CampaignOptions":
        version = payload.get("wire_version", WIRE_VERSION)
        if version != WIRE_VERSION:
            raise ProtocolError(
                f"wire version mismatch: got {version}, need {WIRE_VERSION}"
            )
        return CampaignOptions(
            seed=int(payload.get("seed", 0)),
            shard_size=payload.get("shard_size"),
            engine=str(payload.get("engine", "simple")),
            snapshot=str(payload.get("snapshot", "off")),
            trace=bool(payload.get("trace", False)),
            label=payload.get("label"),
            max_attempts=payload.get("max_attempts"),
            workers_hint=int(payload.get("workers_hint", 4)),
            extra=dict(payload.get("extra", {})),
        )

"""Building, submitting and collecting campaigns (``repro submit``).

Submissions are built through the same generator ``run_section6`` runs
locally (:func:`repro.experiments.iter_section6_campaigns`), so a
campaign executed by a worker fleet is *the same campaign* — same error
sets, same cases, same seed derivation, same journal fingerprint — as a
local ``repro figures --jobs 1`` run.  That identity is what makes the
acceptance criterion checkable at all: the merged journal the broker
serves back must be bit-identical to the local serial journal.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass

from ..experiments import ExperimentConfig
from ..experiments.campaign6 import FAULT_CLASSES, iter_section6_campaigns
from ..orchestrator.journal import MANIFEST_NAME, RUNS_NAME, campaign_fingerprint
from .client import BrokerClient, BrokerUnavailable
from .protocol import CampaignBundle, CampaignOptions
from .state import CAMPAIGN_RUNNING


@dataclass
class Submission:
    """One campaign ready for (or returned from) submission."""

    label: str
    journal_name: str
    fingerprint: dict
    options: CampaignOptions
    bundle: CampaignBundle
    campaign_id: str | None = None
    state: str | None = None

    @property
    def total_runs(self) -> int:
        return self.bundle.total_runs


def build_submissions(
    config: ExperimentConfig | None = None,
    *,
    programs: list[str] | None = None,
    classes: tuple[str, ...] = FAULT_CLASSES,
    shard_size: int | None = None,
    engine: str = "simple",
    snapshot: str = "off",
    trace: bool = False,
    max_attempts: int | None = None,
    workers_hint: int = 4,
) -> list[Submission]:
    """Build the §6 campaigns as service submissions (machine tier)."""
    config = config or ExperimentConfig()
    submissions: list[Submission] = []
    for spec in iter_section6_campaigns(config, programs=programs, classes=classes):
        runner = spec.runner
        runner.calibrate()
        faults = tuple(spec.error_set.faults)
        fingerprint = campaign_fingerprint(
            program=runner.compiled.name,
            seed=spec.seed,
            fault_ids=[fault.fault_id for fault in faults],
            case_ids=[case.case_id for case in runner.cases],
        )
        submissions.append(Submission(
            label=spec.label,
            journal_name=spec.journal_name,
            fingerprint=fingerprint,
            options=CampaignOptions(
                seed=spec.seed,
                shard_size=shard_size,
                engine=engine,
                snapshot=snapshot,
                trace=trace,
                label=spec.label,
                max_attempts=max_attempts,
                workers_hint=workers_hint,
            ),
            bundle=CampaignBundle(
                program=runner.compiled.name,
                executable=runner.compiled.executable,
                faults=faults,
                cases=tuple(runner.cases),
                budgets=dict(runner.budgets),
                num_cores=runner.num_cores,
                quantum=runner.quantum,
            ),
        ))
    return submissions


def submit_campaign(client: BrokerClient, submission: Submission) -> dict:
    """Submit (idempotently) and stamp the broker's reply onto it."""
    reply = client.submit(
        submission.fingerprint,
        submission.options.to_dict(),
        submission.bundle.to_blob(),
    )
    submission.campaign_id = reply["campaign_id"]
    submission.state = reply["state"]
    return reply


def wait_for_campaign(
    client: BrokerClient,
    campaign_id: str,
    *,
    poll: float = 0.3,
    timeout: float | None = None,
    progress=None,
    unavailable_grace: float = 60.0,
) -> dict:
    """Follow a campaign to completion; returns its final snapshot.

    Prefers the broker's streaming endpoint and falls back to polling;
    rides out broker restarts for up to *unavailable_grace* seconds of
    continuous unreachability.  *progress* is called with every snapshot.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    last_seen = time.monotonic()
    while True:
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"campaign {campaign_id} still running after {timeout:.1f}s"
            )
        try:
            for snapshot in client.stream(campaign_id):
                last_seen = time.monotonic()
                if progress is not None:
                    progress(snapshot)
                if snapshot.get("state") != CAMPAIGN_RUNNING:
                    return snapshot
                if deadline is not None and time.monotonic() > deadline:
                    break
            # Stream ended without a terminal state (broker stopping or
            # connection recycled): fall through to re-check via status.
            snapshot = client.status(campaign_id)
            if snapshot.get("state") != CAMPAIGN_RUNNING:
                if progress is not None:
                    progress(snapshot)
                return snapshot
        except BrokerUnavailable:
            if time.monotonic() - last_seen > unavailable_grace:
                raise
            time.sleep(poll)


def _riding_out_restarts(fn, *, grace: float = 60.0, poll: float = 0.3):
    """Call *fn*, retrying :class:`BrokerUnavailable` for *grace* seconds.

    A broker restart mid-campaign must look like a slow network to the
    submit client, exactly as it does to the worker fleet.
    """
    deadline = time.monotonic() + grace
    while True:
        try:
            return fn()
        except BrokerUnavailable:
            if time.monotonic() >= deadline:
                raise
            time.sleep(poll)


def download_journal(
    client: BrokerClient, campaign_id: str, directory: str
) -> dict[str, str]:
    """Download the merged canonical journal into *directory* verbatim.

    The bytes are written exactly as served — the whole point is that
    they are bit-identical to a local serial journal, so any rewrite
    here (re-serialisation, newline handling) would defeat the check.
    """
    os.makedirs(directory, exist_ok=True)
    paths: dict[str, str] = {}
    for name in (MANIFEST_NAME, RUNS_NAME):
        payload = _riding_out_restarts(
            lambda name=name: client.fetch_journal_file(campaign_id, name)
        )
        path = os.path.join(directory, name)
        with open(path, "wb") as handle:
            handle.write(payload)
        paths[name] = path
    return paths


def render_progress_line(snapshot: dict) -> str:
    """One human-readable telemetry line for the submit CLI."""
    return (
        f"{snapshot.get('label', snapshot.get('campaign_id', '?'))}: "
        f"{snapshot.get('completed_runs', 0)}/{snapshot.get('total_runs', 0)} runs  "
        f"(shards pending={snapshot.get('shards_pending', 0)} "
        f"leased={snapshot.get('shards_leased', 0)}, "
        f"leases={snapshot.get('leases_granted', 0)}, "
        f"expiries={snapshot.get('lease_expiries', 0)}) "
        f"[{snapshot.get('state', '?')}]"
    )


def run_submit(
    broker_url: str,
    *,
    config: ExperimentConfig | None = None,
    programs: list[str] | None = None,
    classes: tuple[str, ...] = FAULT_CLASSES,
    shard_size: int | None = None,
    engine: str = "simple",
    snapshot: str = "off",
    trace: bool = False,
    journal_dir: str | None = None,
    wait: bool = True,
    timeout: float | None = None,
    quiet: bool = False,
    stream=None,
) -> int:
    """The ``repro submit`` entry point; returns a process exit code."""
    stream = stream if stream is not None else sys.stderr
    client = BrokerClient(broker_url)
    client.ping()
    submissions = build_submissions(
        config,
        programs=programs,
        classes=classes,
        shard_size=shard_size,
        engine=engine,
        snapshot=snapshot,
        trace=trace,
    )
    if not submissions:
        print("error: no campaigns matched the requested programs",
              file=sys.stderr)
        return 1
    exit_code = 0
    for submission in submissions:
        reply = _riding_out_restarts(
            lambda submission=submission: submit_campaign(client, submission)
        )
        verb = "resumed" if reply.get("resumed") else "submitted"
        if not quiet:
            print(
                f"{verb} {submission.label} as campaign "
                f"{submission.campaign_id} ({submission.total_runs} runs)",
                file=stream,
            )
        if not wait:
            continue
        progress = None
        if not quiet:
            progress = lambda snap: print(  # noqa: E731
                "  " + render_progress_line(snap), file=stream
            )
        final = wait_for_campaign(
            client, submission.campaign_id, timeout=timeout, progress=progress
        )
        if final.get("state") != "complete":
            print(
                f"error: campaign {submission.label} finished in state "
                f"{final.get('state')!r} with "
                f"{final.get('failed_runs', '?')} failed runs",
                file=sys.stderr,
            )
            exit_code = 1
        if journal_dir is not None:
            target = os.path.join(journal_dir, submission.journal_name)
            download_journal(client, submission.campaign_id, target)
            if not quiet:
                print(f"  merged journal -> {target}", file=stream)
    return exit_code

"""The campaign broker: a stdlib HTTP front-end over :class:`BrokerState`.

One ``ThreadingHTTPServer`` (no third-party dependencies) exposes the
service under ``/api/v1``:

========  =============================  =====================================
method    path                           purpose
========  =============================  =====================================
GET       ``/ping``                      liveness + wire version handshake
POST      ``/submit``                    submit a campaign (idempotent)
POST      ``/lease``                     request a shard lease (work stealing)
POST      ``/report``                    stream segment entries / renew lease
POST      ``/heartbeat``                 renew a lease without new results
GET       ``/status``                    whole-broker snapshot
GET       ``/campaigns/<id>``            one campaign's snapshot
GET       ``/campaigns/<id>/stream``     streaming telemetry: one JSON line
                                         per state change until completion
GET       ``/campaigns/<id>/journal/<f>``  merged ``manifest.json`` /
                                         ``runs.jsonl`` once complete
POST      ``/shutdown``                  graceful stop
========  =============================  =====================================

Responses are JSON; errors are ``{"error": ...}`` with a matching HTTP
status.  The streaming endpoint writes plain newline-delimited JSON over
an HTTP/1.0-style unframed body, flushed per line, so ``urllib`` clients
(and ``curl``) see snapshots live.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .protocol import API_PREFIX, WIRE_VERSION, ProtocolError
from .state import BrokerState, ServiceError


class BrokerHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`BrokerState`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, state: BrokerState):
        super().__init__(address, _BrokerRequestHandler)
        self.state = state
        self.stopping = threading.Event()

    def request_shutdown(self) -> None:
        """Stop ``serve_forever`` without deadlocking a handler thread."""
        if self.stopping.is_set():
            return
        self.stopping.set()
        threading.Thread(target=self.shutdown, daemon=True).start()


class _BrokerRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.0 with per-request connections: every response body may be
    # written unframed and ended by close, which is what the /stream
    # endpoint needs and what urllib handles with zero configuration.
    protocol_version = "HTTP/1.0"
    server: BrokerHTTPServer

    # -- plumbing ------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if os.environ.get("REPRO_BROKER_LOG"):
            sys.stderr.write(
                "broker: %s - %s\n" % (self.address_string(), format % args)
            )

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ProtocolError("request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        return payload

    def _send_json(self, payload: dict, code: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, code: int) -> None:
        self._send_json({"error": message}, code)

    def _route(self) -> str | None:
        if not self.path.startswith(API_PREFIX):
            self._send_error_json(f"unknown path {self.path!r}", 404)
            return None
        return self.path[len(API_PREFIX):]

    # -- dispatch ------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        route = self._route()
        if route is None:
            return
        try:
            if route == "/ping":
                self._send_json({
                    "status": "ok",
                    "wire_version": WIRE_VERSION,
                    "stopping": self.server.stopping.is_set(),
                })
            elif route == "/status":
                self._send_json(self.server.state.snapshot())
            elif route.startswith("/campaigns/"):
                self._get_campaign(route[len("/campaigns/"):])
            else:
                self._send_error_json(f"unknown path {self.path!r}", 404)
        except ServiceError as error:
            self._send_error_json(str(error), 404)
        except ProtocolError as error:
            self._send_error_json(str(error), 400)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        route = self._route()
        if route is None:
            return
        state = self.server.state
        try:
            payload = self._read_json()
            if route == "/submit":
                self._send_json(state.submit(
                    payload["fingerprint"],
                    payload["options"],
                    payload["bundle"],
                ))
            elif route == "/lease":
                if self.server.stopping.is_set():
                    self._send_json({"status": "shutdown"})
                    return
                self._send_json(state.lease(str(payload["worker_id"])))
            elif route == "/report":
                self._send_json(state.report(
                    str(payload["worker_id"]),
                    str(payload["campaign_id"]),
                    int(payload["shard_id"]),
                    int(payload["attempt"]),
                    list(payload.get("entries", [])),
                    complete=bool(payload.get("complete", False)),
                ))
            elif route == "/heartbeat":
                self._send_json(state.heartbeat(
                    str(payload["worker_id"]),
                    str(payload["campaign_id"]),
                    int(payload["shard_id"]),
                    int(payload["attempt"]),
                ))
            elif route == "/shutdown":
                self._send_json({"status": "stopping"})
                self.server.request_shutdown()
            else:
                self._send_error_json(f"unknown path {self.path!r}", 404)
        except (KeyError, TypeError, ValueError) as error:
            if isinstance(error, ProtocolError):
                self._send_error_json(str(error), 400)
            else:
                self._send_error_json(f"malformed request: {error}", 400)
        except ServiceError as error:
            self._send_error_json(str(error), 404)

    # -- campaign GETs -------------------------------------------------

    def _get_campaign(self, rest: str) -> None:
        parts = rest.split("/")
        campaign_id = parts[0]
        if len(parts) == 1:
            self._send_json(self.server.state.snapshot(campaign_id))
        elif parts[1:] == ["stream"]:
            self._stream_campaign(campaign_id)
        elif len(parts) == 3 and parts[1] == "journal":
            self._send_journal_file(campaign_id, parts[2])
        else:
            self._send_error_json(f"unknown path {self.path!r}", 404)

    def _send_journal_file(self, campaign_id: str, name: str) -> None:
        path = self.server.state.journal_file(campaign_id, name)
        with open(path, "rb") as handle:
            body = handle.read()
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _stream_campaign(self, campaign_id: str) -> None:
        state = self.server.state
        snapshot = state.snapshot(campaign_id)  # 404s before headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        version = state.current_version()
        try:
            while True:
                self.wfile.write(json.dumps(snapshot).encode("utf-8") + b"\n")
                self.wfile.flush()
                if snapshot["state"] != "running" or self.server.stopping.is_set():
                    return
                version = state.wait_for_change(version, timeout=1.0)
                snapshot = state.snapshot(campaign_id)
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to clean up


def run_broker(
    *,
    state_dir: str,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_timeout: float = 30.0,
    max_attempts: int | None = None,
    port_file: str | None = None,
    ready_stream=None,
    install_signal_handlers: bool = True,
) -> int:
    """Run a broker until shut down; returns a process exit code.

    ``port=0`` binds an ephemeral port; the bound port is announced on
    *ready_stream* (default stderr) as ``repro-broker listening on
    http://host:port`` and, when *port_file* is given, written there for
    scripts to pick up.
    """
    from .state import DEFAULT_MAX_ATTEMPTS

    state = BrokerState(
        state_dir,
        lease_timeout=lease_timeout,
        max_attempts=max_attempts or DEFAULT_MAX_ATTEMPTS,
    )
    server = BrokerHTTPServer((host, port), state)
    bound_port = server.server_address[1]
    if port_file:
        with open(port_file, "w", encoding="utf-8") as handle:
            handle.write(f"{bound_port}\n")
    stream = ready_stream if ready_stream is not None else sys.stderr
    print(f"repro-broker listening on http://{host}:{bound_port}", file=stream)
    stream.flush()
    if install_signal_handlers:
        signal.signal(signal.SIGTERM, lambda *_: server.request_shutdown())
        signal.signal(signal.SIGINT, lambda *_: server.request_shutdown())
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
    return 0

"""Disassembler for RX32 code.

Used by the fault-emulation reports (the paper's Figures 3-6 show the
machine code around each fault) and by the fault locator to confirm what a
corrupted word decodes to.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .encoding import INSTRUCTION_BYTES, Instruction, try_decode


@dataclass(frozen=True)
class DisassembledLine:
    address: int
    word: int
    instruction: Instruction | None  # None when the word is illegal

    def text(self) -> str:
        body = self.instruction.text() if self.instruction else f".word {self.word:#010x}"
        return f"{self.address:#010x}:  {self.word:08x}  {body}"


def disassemble_word(address: int, word: int) -> DisassembledLine:
    return DisassembledLine(address=address, word=word, instruction=try_decode(word))


def disassemble(code: bytes, base: int = 0) -> list[DisassembledLine]:
    """Disassemble a big-endian code blob starting at byte address *base*."""
    if len(code) % INSTRUCTION_BYTES:
        raise ValueError("code length is not a multiple of the instruction size")
    count = len(code) // INSTRUCTION_BYTES
    words = struct.unpack(f">{count}I", code)
    return [
        disassemble_word(base + index * INSTRUCTION_BYTES, word)
        for index, word in enumerate(words)
    ]


def listing(code: bytes, base: int = 0, symbols: dict[str, int] | None = None) -> str:
    """Render a human-readable listing, with symbol names interleaved."""
    by_address: dict[int, list[str]] = {}
    for name, address in (symbols or {}).items():
        by_address.setdefault(address, []).append(name)
    lines = []
    for entry in disassemble(code, base):
        for name in sorted(by_address.get(entry.address, [])):
            lines.append(f"{name}:")
        lines.append("    " + entry.text())
    return "\n".join(lines)

"""Binary encoding of the RX32 instruction set.

Every instruction is one 32-bit word.  The primary opcode lives in the top
six bits; register fields and immediates follow PowerPC-style packing:

====================  =========================================
Field                 Bits (big-endian bit numbering by value)
====================  =========================================
``opcode``            ``word[31:26]``
``rD``                ``word[25:21]``
``rA``                ``word[20:16]``
``rB``                ``word[15:11]``
``subop``             ``word[10:0]``   (XO group only)
``imm16``             ``word[15:0]``
``li26``              ``word[25:0]``   (b / bl displacement, in words)
====================  =========================================

A *real* bit-level encoding matters for this reproduction: the paper's
fault injector corrupts instruction words with bit masks, so flipping a
bit must yield either a different well-formed instruction or an illegal
one that traps — exactly as on the PowerPC 601 target of the original
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------------
# Primary opcodes
# --------------------------------------------------------------------------

OP_ILLEGAL = 0x00  # the all-zeroes word traps, like zeroed memory
OP_ADDI = 0x01
OP_ADDIS = 0x02
OP_MULLI = 0x03
OP_ANDI = 0x04
OP_ORI = 0x05
OP_XORI = 0x06
OP_CMPI = 0x07
OP_CMPLI = 0x08
OP_LWZ = 0x09
OP_STW = 0x0A
OP_LBZ = 0x0B
OP_STB = 0x0C
OP_B = 0x0D
OP_BL = 0x0E
OP_BC = 0x0F
OP_BLR = 0x10
OP_MFLR = 0x11
OP_MTLR = 0x12
OP_SC = 0x13
OP_XO = 0x14
OP_SLWI = 0x15
OP_SRWI = 0x16
OP_SRAWI = 0x17
OP_TRAP = 0x18

# Extended (XO-group) sub-opcodes, in the low 11 bits of an OP_XO word.
XO_ADD = 0
XO_SUB = 1
XO_MUL = 2
XO_DIVW = 3
XO_MODW = 4
XO_AND = 5
XO_OR = 6
XO_XOR = 7
XO_SLW = 8
XO_SRW = 9
XO_SRAW = 10
XO_CMP = 11
XO_NOR = 12
XO_NEG = 13
XO_NOT = 14

# Branch conditions, carried in the rD field of an OP_BC word.  They test
# the condition register written by the last cmp/cmpi/cmpli.
COND_ALWAYS = 0
COND_LT = 1
COND_LE = 2
COND_EQ = 3
COND_GE = 4
COND_GT = 5
COND_NE = 6

COND_NAMES = {
    COND_ALWAYS: "always",
    COND_LT: "lt",
    COND_LE: "le",
    COND_EQ: "eq",
    COND_GE: "ge",
    COND_GT: "gt",
    COND_NE: "ne",
}
COND_BY_NAME = {name: code for code, name in COND_NAMES.items()}

# The machine-level image of the source-level relational-operator swaps used
# by the paper's Table 3 rules: swapping ``>=`` for ``>`` is one bit-level
# rewrite of the cond field of a conditional branch.
COND_NEGATION = {
    COND_LT: COND_GE,
    COND_GE: COND_LT,
    COND_LE: COND_GT,
    COND_GT: COND_LE,
    COND_EQ: COND_NE,
    COND_NE: COND_EQ,
}

# --------------------------------------------------------------------------
# Instruction forms
# --------------------------------------------------------------------------
# form -> which operand fields are meaningful, and how `imm` is interpreted.
#   D     rd, ra, imm (signed 16)
#   DU    rd, ra, imm (unsigned 16)
#   CMPI  ra, imm (signed 16)
#   CMPLI ra, imm (unsigned 16)
#   MEM   rd, imm(ra)            imm signed 16 byte displacement
#   B     imm (signed 26, word offset)
#   BC    cond(in rd), imm (signed 16, word offset)
#   NONE  no operands
#   R1    rd only
#   U16   imm (unsigned 16)
#   XO    rd, ra, rb
#   XO1   rd, ra (rb must be zero)
#   SH    rd, ra, imm (unsigned shift amount 0..31)

_SPEC = {
    "addi": (OP_ADDI, "D"),
    "addis": (OP_ADDIS, "D"),
    "mulli": (OP_MULLI, "D"),
    "andi": (OP_ANDI, "DU"),
    "ori": (OP_ORI, "DU"),
    "xori": (OP_XORI, "DU"),
    "cmpi": (OP_CMPI, "CMPI"),
    "cmpli": (OP_CMPLI, "CMPLI"),
    "lwz": (OP_LWZ, "MEM"),
    "stw": (OP_STW, "MEM"),
    "lbz": (OP_LBZ, "MEM"),
    "stb": (OP_STB, "MEM"),
    "b": (OP_B, "B"),
    "bl": (OP_BL, "B"),
    "bc": (OP_BC, "BC"),
    "blr": (OP_BLR, "NONE"),
    "mflr": (OP_MFLR, "R1"),
    "mtlr": (OP_MTLR, "R1"),
    "sc": (OP_SC, "U16"),
    "slwi": (OP_SLWI, "SH"),
    "srwi": (OP_SRWI, "SH"),
    "srawi": (OP_SRAWI, "SH"),
    "trap": (OP_TRAP, "U16"),
}

_XO_SPEC = {
    "add": XO_ADD,
    "sub": XO_SUB,
    "mul": XO_MUL,
    "divw": XO_DIVW,
    "modw": XO_MODW,
    "and": XO_AND,
    "or": XO_OR,
    "xor": XO_XOR,
    "slw": XO_SLW,
    "srw": XO_SRW,
    "sraw": XO_SRAW,
    "cmp": XO_CMP,
    "nor": XO_NOR,
    "neg": XO_NEG,
    "not": XO_NOT,
}
_XO_ONE_OPERAND = {XO_NEG, XO_NOT}
_XO_NAMES = {code: name for name, code in _XO_SPEC.items()}

FORM_BY_MNEMONIC = dict(_SPEC)
FORM_BY_MNEMONIC.update(
    {name: (OP_XO, "XO1" if code in _XO_ONE_OPERAND else "XO") for name, code in _XO_SPEC.items()}
)

_OPCODE_TO_MNEMONIC = {spec[0]: name for name, spec in _SPEC.items()}

MNEMONICS = tuple(sorted(FORM_BY_MNEMONIC))

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
INSTRUCTION_BYTES = 4


class EncodingError(ValueError):
    """Raised for out-of-range fields or malformed operands at encode time."""


class DecodingError(ValueError):
    """Raised when a 32-bit word does not decode to a valid instruction."""


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low *bits* of *value* as a two's-complement integer."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _check_reg(value: int, field: str) -> int:
    if not 0 <= value <= 31:
        raise EncodingError(f"{field} out of range: {value}")
    return value


def _check_simm(value: int, bits: int, field: str) -> int:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodingError(f"{field} out of signed {bits}-bit range: {value}")
    return value & ((1 << bits) - 1)


def _check_uimm(value: int, bits: int, field: str) -> int:
    if not 0 <= value < (1 << bits):
        raise EncodingError(f"{field} out of unsigned {bits}-bit range: {value}")
    return value


@dataclass(frozen=True)
class Instruction:
    """A decoded (or to-be-encoded) RX32 instruction.

    Only the fields meaningful for the instruction's form are used; the
    rest stay zero.  ``imm`` always holds the *logical* value (sign-extended
    where the form is signed, a word offset for branches).
    """

    mnemonic: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0

    @property
    def form(self) -> str:
        try:
            return FORM_BY_MNEMONIC[self.mnemonic][1]
        except KeyError:
            raise EncodingError(f"unknown mnemonic: {self.mnemonic!r}") from None

    def encode(self) -> int:
        """Pack this instruction into its 32-bit word."""
        opcode, form = FORM_BY_MNEMONIC[self.mnemonic]
        word = opcode << 26
        if form in ("D", "CMPI"):
            word |= _check_reg(self.rd, "rD") << 21
            word |= _check_reg(self.ra, "rA") << 16
            word |= _check_simm(self.imm, 16, "imm16")
        elif form in ("DU", "CMPLI"):
            word |= _check_reg(self.rd, "rD") << 21
            word |= _check_reg(self.ra, "rA") << 16
            word |= _check_uimm(self.imm, 16, "uimm16")
        elif form == "MEM":
            word |= _check_reg(self.rd, "rD") << 21
            word |= _check_reg(self.ra, "rA") << 16
            word |= _check_simm(self.imm, 16, "displacement")
        elif form == "B":
            word |= _check_simm(self.imm, 26, "branch offset")
        elif form == "BC":
            if self.rd not in COND_NAMES:
                raise EncodingError(f"invalid branch condition: {self.rd}")
            word |= self.rd << 21
            word |= _check_simm(self.imm, 16, "branch offset")
        elif form == "NONE":
            pass
        elif form == "R1":
            word |= _check_reg(self.rd, "rD") << 21
        elif form == "U16":
            word |= _check_uimm(self.imm, 16, "uimm16")
        elif form == "SH":
            word |= _check_reg(self.rd, "rD") << 21
            word |= _check_reg(self.ra, "rA") << 16
            word |= _check_uimm(self.imm, 5, "shift amount")
        elif form in ("XO", "XO1"):
            word |= _check_reg(self.rd, "rD") << 21
            word |= _check_reg(self.ra, "rA") << 16
            if form == "XO":
                word |= _check_reg(self.rb, "rB") << 11
            word |= _XO_SPEC[self.mnemonic]
        else:  # pragma: no cover - exhaustive over forms
            raise EncodingError(f"unhandled form {form!r}")
        return word

    def text(self) -> str:
        """Render assembly text (used by the disassembler and in reports)."""
        form = self.form
        if form in ("D", "DU"):
            return f"{self.mnemonic} r{self.rd}, r{self.ra}, {self.imm}"
        if form in ("CMPI", "CMPLI"):
            return f"{self.mnemonic} r{self.ra}, {self.imm}"
        if form == "MEM":
            return f"{self.mnemonic} r{self.rd}, {self.imm}(r{self.ra})"
        if form == "B":
            return f"{self.mnemonic} {self.imm}"
        if form == "BC":
            return f"bc {COND_NAMES[self.rd]}, {self.imm}"
        if form == "NONE":
            return self.mnemonic
        if form == "R1":
            return f"{self.mnemonic} r{self.rd}"
        if form == "U16":
            return f"{self.mnemonic} {self.imm}"
        if form == "SH":
            return f"{self.mnemonic} r{self.rd}, r{self.ra}, {self.imm}"
        if form == "XO":
            return f"{self.mnemonic} r{self.rd}, r{self.ra}, r{self.rb}"
        if form == "XO1":
            return f"{self.mnemonic} r{self.rd}, r{self.ra}"
        raise AssertionError(form)


def decode(word: int) -> Instruction:
    """Decode a 32-bit word, raising :class:`DecodingError` if illegal.

    Decoding is total over the fields that exist (5-bit register numbers are
    always in range); only unknown primary opcodes, unknown XO sub-opcodes
    and out-of-range branch conditions are illegal — the same shape of
    "corrupted word may still execute" behaviour real SWIFI faults rely on.
    """
    word &= WORD_MASK
    opcode = word >> 26
    rd = (word >> 21) & 31
    ra = (word >> 16) & 31
    rb = (word >> 11) & 31
    imm16 = word & 0xFFFF

    if opcode == OP_XO:
        subop = word & 0x7FF
        name = _XO_NAMES.get(subop)
        if name is None:
            raise DecodingError(f"illegal XO sub-opcode {subop:#x} in word {word:#010x}")
        if subop in _XO_ONE_OPERAND:
            return Instruction(name, rd=rd, ra=ra)
        return Instruction(name, rd=rd, ra=ra, rb=rb)

    name = _OPCODE_TO_MNEMONIC.get(opcode)
    if name is None:
        raise DecodingError(f"illegal opcode {opcode:#x} in word {word:#010x}")
    form = _SPEC[name][1]
    if form in ("D", "CMPI", "MEM"):
        return Instruction(name, rd=rd, ra=ra, imm=sign_extend(imm16, 16))
    if form in ("DU", "CMPLI"):
        return Instruction(name, rd=rd, ra=ra, imm=imm16)
    if form == "B":
        return Instruction(name, imm=sign_extend(word & 0x3FFFFFF, 26))
    if form == "BC":
        if rd not in COND_NAMES:
            raise DecodingError(f"illegal branch condition {rd} in word {word:#010x}")
        return Instruction(name, rd=rd, imm=sign_extend(imm16, 16))
    if form == "NONE":
        return Instruction(name)
    if form == "R1":
        return Instruction(name, rd=rd)
    if form == "U16":
        return Instruction(name, imm=imm16)
    if form == "SH":
        return Instruction(name, rd=rd, ra=ra, imm=imm16 & 31)
    raise AssertionError(form)  # pragma: no cover


def try_decode(word: int) -> Instruction | None:
    """Decode *word*, returning ``None`` instead of raising when illegal."""
    try:
        return decode(word)
    except DecodingError:
        return None


NOP_WORD = Instruction("ori", rd=0, ra=0, imm=0).encode()

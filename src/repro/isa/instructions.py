"""Convenience constructors for RX32 instructions.

These are thin builders over :class:`repro.isa.encoding.Instruction` so the
code generator and hand-written runtime read like assembly listings:

    ins.addi(regs.SP, regs.SP, -32)
    ins.stw(13, 28, regs.SP)
    ins.bc(encoding.COND_GE, +5)

Pseudo-instructions (``li32``, ``nop``, ``mr``) expand to one or two real
instructions and return a list.
"""

from __future__ import annotations

from .encoding import (
    COND_BY_NAME,
    Instruction,
)


def addi(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction("addi", rd=rd, ra=ra, imm=imm)


def addis(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction("addis", rd=rd, ra=ra, imm=imm)


def mulli(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction("mulli", rd=rd, ra=ra, imm=imm)


def andi(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction("andi", rd=rd, ra=ra, imm=imm)


def ori(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction("ori", rd=rd, ra=ra, imm=imm)


def xori(rd: int, ra: int, imm: int) -> Instruction:
    return Instruction("xori", rd=rd, ra=ra, imm=imm)


def cmpi(ra: int, imm: int) -> Instruction:
    return Instruction("cmpi", ra=ra, imm=imm)


def cmpli(ra: int, imm: int) -> Instruction:
    return Instruction("cmpli", ra=ra, imm=imm)


def lwz(rd: int, disp: int, ra: int) -> Instruction:
    return Instruction("lwz", rd=rd, ra=ra, imm=disp)


def stw(rs: int, disp: int, ra: int) -> Instruction:
    return Instruction("stw", rd=rs, ra=ra, imm=disp)


def lbz(rd: int, disp: int, ra: int) -> Instruction:
    return Instruction("lbz", rd=rd, ra=ra, imm=disp)


def stb(rs: int, disp: int, ra: int) -> Instruction:
    return Instruction("stb", rd=rs, ra=ra, imm=disp)


def b(offset_words: int) -> Instruction:
    return Instruction("b", imm=offset_words)


def bl(offset_words: int) -> Instruction:
    return Instruction("bl", imm=offset_words)


def bc(cond: int | str, offset_words: int) -> Instruction:
    if isinstance(cond, str):
        cond = COND_BY_NAME[cond]
    return Instruction("bc", rd=cond, imm=offset_words)


def blr() -> Instruction:
    return Instruction("blr")


def mflr(rd: int) -> Instruction:
    return Instruction("mflr", rd=rd)


def mtlr(rs: int) -> Instruction:
    return Instruction("mtlr", rd=rs)


def sc(number: int) -> Instruction:
    return Instruction("sc", imm=number)


def trap(code: int = 0) -> Instruction:
    return Instruction("trap", imm=code)


def add(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("add", rd=rd, ra=ra, rb=rb)


def sub(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("sub", rd=rd, ra=ra, rb=rb)


def mul(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("mul", rd=rd, ra=ra, rb=rb)


def divw(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("divw", rd=rd, ra=ra, rb=rb)


def modw(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("modw", rd=rd, ra=ra, rb=rb)


def and_(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("and", rd=rd, ra=ra, rb=rb)


def or_(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("or", rd=rd, ra=ra, rb=rb)


def xor(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("xor", rd=rd, ra=ra, rb=rb)


def nor(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("nor", rd=rd, ra=ra, rb=rb)


def slw(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("slw", rd=rd, ra=ra, rb=rb)


def srw(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("srw", rd=rd, ra=ra, rb=rb)


def sraw(rd: int, ra: int, rb: int) -> Instruction:
    return Instruction("sraw", rd=rd, ra=ra, rb=rb)


def cmp(ra: int, rb: int) -> Instruction:
    return Instruction("cmp", ra=ra, rb=rb)


def neg(rd: int, ra: int) -> Instruction:
    return Instruction("neg", rd=rd, ra=ra)


def not_(rd: int, ra: int) -> Instruction:
    return Instruction("not", rd=rd, ra=ra)


def slwi(rd: int, ra: int, sh: int) -> Instruction:
    return Instruction("slwi", rd=rd, ra=ra, imm=sh)


def srwi(rd: int, ra: int, sh: int) -> Instruction:
    return Instruction("srwi", rd=rd, ra=ra, imm=sh)


def srawi(rd: int, ra: int, sh: int) -> Instruction:
    return Instruction("srawi", rd=rd, ra=ra, imm=sh)


# ---------------------------------------------------------------------------
# Pseudo-instructions
# ---------------------------------------------------------------------------

def nop() -> Instruction:
    """No-operation (encoded as ``ori r0, r0, 0``; r0 is hardwired zero)."""
    return ori(0, 0, 0)


def mr(rd: int, rs: int) -> Instruction:
    """Register move (encoded as ``ori rd, rs, 0``)."""
    return ori(rd, rs, 0)


def li32(rd: int, value: int) -> list[Instruction]:
    """Load an arbitrary 32-bit constant into *rd* (1 or 2 instructions)."""
    value &= 0xFFFFFFFF
    signed = value - 0x100000000 if value & 0x80000000 else value
    if -0x8000 <= signed <= 0x7FFF:
        return [addi(rd, 0, signed)]
    high = (value >> 16) & 0xFFFF
    low = value & 0xFFFF
    high_signed = high - 0x10000 if high & 0x8000 else high
    out = [addis(rd, 0, high_signed)]
    if low:
        out.append(ori(rd, rd, low))
    return out

"""RX32 instruction-set architecture: encoding, assembler, disassembler.

RX32 is the simulated 32-bit RISC target of this reproduction, standing in
for the PowerPC 601 of the paper's Parsytec PowerXplorer.  See
``DESIGN.md`` for the substitution rationale.
"""

from . import instructions as ins
from .assembler import AssembledProgram, Assembler, AssemblyError, assemble_text
from .disassembler import DisassembledLine, disassemble, disassemble_word, listing
from .encoding import (
    COND_ALWAYS,
    COND_BY_NAME,
    COND_EQ,
    COND_GE,
    COND_GT,
    COND_LE,
    COND_LT,
    COND_NAMES,
    COND_NE,
    COND_NEGATION,
    INSTRUCTION_BYTES,
    MNEMONICS,
    NOP_WORD,
    DecodingError,
    EncodingError,
    Instruction,
    decode,
    sign_extend,
    try_decode,
)
from .registers import (
    ARG_REGISTERS,
    CR_EQ,
    CR_GT,
    CR_LT,
    EVAL_POOL,
    MAX_REG_ARGS,
    NUM_REGISTERS,
    RET,
    SP,
    ZERO,
    parse_register,
    register_name,
)

__all__ = [
    "ins",
    "AssembledProgram",
    "Assembler",
    "AssemblyError",
    "assemble_text",
    "DisassembledLine",
    "disassemble",
    "disassemble_word",
    "listing",
    "COND_ALWAYS",
    "COND_BY_NAME",
    "COND_EQ",
    "COND_GE",
    "COND_GT",
    "COND_LE",
    "COND_LT",
    "COND_NAMES",
    "COND_NE",
    "COND_NEGATION",
    "INSTRUCTION_BYTES",
    "MNEMONICS",
    "NOP_WORD",
    "DecodingError",
    "EncodingError",
    "Instruction",
    "decode",
    "sign_extend",
    "try_decode",
    "ARG_REGISTERS",
    "CR_EQ",
    "CR_GT",
    "CR_LT",
    "EVAL_POOL",
    "MAX_REG_ARGS",
    "NUM_REGISTERS",
    "RET",
    "SP",
    "ZERO",
    "parse_register",
    "register_name",
]

"""Two-pass assembler for RX32.

Two entry points:

* :class:`Assembler` — a programmatic builder used by the MiniC code
  generator and the runtime: emit instructions and labels, then
  :meth:`Assembler.assemble` resolves branch targets and packs words.
* :func:`assemble_text` — a small text-syntax assembler used by tests,
  examples and hand-written snippets.

Branch displacements are encoded in *words* relative to the branch
instruction itself (the CPU adds ``offset * 4`` to the branch's own PC).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from . import instructions as ins
from .encoding import (
    COND_BY_NAME,
    FORM_BY_MNEMONIC,
    INSTRUCTION_BYTES,
    Instruction,
)
from .registers import parse_register


class AssemblyError(ValueError):
    """Raised for undefined/duplicate labels or malformed assembly text."""


@dataclass
class _Fixup:
    index: int  # word index of the branch instruction
    mnemonic: str
    cond: int | None
    label: str


@dataclass
class AssembledProgram:
    """The output of assembly: raw code plus a symbol table."""

    base: int
    words: list[int]
    symbols: dict[str, int]  # label -> absolute byte address

    @property
    def code(self) -> bytes:
        return struct.pack(f">{len(self.words)}I", *self.words)

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblyError(f"undefined symbol: {label!r}") from None


class Assembler:
    """Accumulates instructions and labels; resolves branches on assembly."""

    def __init__(self) -> None:
        self._items: list[Instruction | None] = []
        self._fixups: list[_Fixup] = []
        self._labels: dict[str, int] = {}  # label -> word index
        self._label_counter = 0

    # -- building ---------------------------------------------------------

    @property
    def position(self) -> int:
        """Current word index (the index the next emitted word will get)."""
        return len(self._items)

    def emit(self, instruction: Instruction | list[Instruction]) -> int:
        """Append one instruction (or an expansion list); return its index."""
        index = len(self._items)
        if isinstance(instruction, list):
            self._items.extend(instruction)
        else:
            self._items.append(instruction)
        return index

    def label(self, name: str) -> None:
        """Bind *name* to the current position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label: {name!r}")
        self._labels[name] = len(self._items)

    def new_label(self, prefix: str = "L") -> str:
        self._label_counter += 1
        return f".{prefix}{self._label_counter}"

    def emit_branch(self, label: str) -> int:
        """Emit an unconditional branch to *label* (fixed up on assemble)."""
        return self._emit_fixup("b", None, label)

    def emit_call(self, label: str) -> int:
        """Emit a ``bl`` (call) to *label*."""
        return self._emit_fixup("bl", None, label)

    def emit_cond_branch(self, cond: int | str, label: str) -> int:
        """Emit a conditional branch; *cond* is a code or name like ``"ge"``."""
        if isinstance(cond, str):
            cond = COND_BY_NAME[cond]
        return self._emit_fixup("bc", cond, label)

    def patch(self, index: int, instruction: Instruction) -> None:
        """Replace a previously emitted instruction (e.g. a frame-size stub)."""
        if not 0 <= index < len(self._items):
            raise AssemblyError(f"patch index out of range: {index}")
        self._items[index] = instruction

    def _emit_fixup(self, mnemonic: str, cond: int | None, label: str) -> int:
        index = len(self._items)
        self._items.append(None)  # placeholder, patched in assemble()
        self._fixups.append(_Fixup(index, mnemonic, cond, label))
        return index

    # -- assembling -------------------------------------------------------

    def assemble(self, base: int = 0) -> AssembledProgram:
        """Resolve labels and produce the final program at byte address *base*."""
        items = list(self._items)
        for fixup in self._fixups:
            try:
                target = self._labels[fixup.label]
            except KeyError:
                raise AssemblyError(f"undefined label: {fixup.label!r}") from None
            offset = target - fixup.index
            if fixup.mnemonic == "b":
                items[fixup.index] = ins.b(offset)
            elif fixup.mnemonic == "bl":
                items[fixup.index] = ins.bl(offset)
            else:
                assert fixup.cond is not None
                items[fixup.index] = ins.bc(fixup.cond, offset)
        words = []
        for index, item in enumerate(items):
            if item is None:  # pragma: no cover - fixups fill every hole
                raise AssemblyError(f"unresolved placeholder at word {index}")
            words.append(item.encode())
        symbols = {
            name: base + index * INSTRUCTION_BYTES for name, index in self._labels.items()
        }
        return AssembledProgram(base=base, words=words, symbols=symbols)


# ---------------------------------------------------------------------------
# Text syntax
# ---------------------------------------------------------------------------

def _parse_operand_int(token: str) -> int:
    token = token.strip()
    return int(token, 0)


def _parse_mem_operand(token: str) -> tuple[int, int]:
    """Parse ``disp(rN)`` into (disp, reg)."""
    token = token.strip()
    if not token.endswith(")") or "(" not in token:
        raise AssemblyError(f"malformed memory operand: {token!r}")
    disp_text, reg_text = token[:-1].split("(", 1)
    disp = int(disp_text, 0) if disp_text.strip() else 0
    return disp, parse_register(reg_text)


def assemble_text(source: str, base: int = 0) -> AssembledProgram:
    """Assemble text with one instruction or ``label:`` per line.

    Comments start with ``;`` or ``#``.  Branches may target labels or
    numeric word offsets.  Example::

        start:
            addi r3, r0, 10
        loop:
            addi r3, r3, -1
            cmpi r3, 0
            bc gt, loop
            sc 0
    """
    asm = Assembler()
    for raw_line in source.splitlines():
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        while line.endswith(":") or (":" in line and line.split(":")[0].strip().isidentifier()):
            head, _, rest = line.partition(":")
            head = head.strip()
            if not head.isidentifier():
                break
            asm.label(head)
            line = rest.strip()
            if not line:
                break
        if not line:
            continue
        _assemble_line(asm, line)
    return asm.assemble(base)


def _assemble_line(asm: Assembler, line: str) -> None:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    operands = [op.strip() for op in rest.split(",")] if rest.strip() else []

    if mnemonic == "nop":
        asm.emit(ins.nop())
        return
    if mnemonic == "mr":
        asm.emit(ins.mr(parse_register(operands[0]), parse_register(operands[1])))
        return
    if mnemonic == "li32":
        asm.emit(ins.li32(parse_register(operands[0]), _parse_operand_int(operands[1])))
        return

    if mnemonic not in FORM_BY_MNEMONIC:
        raise AssemblyError(f"unknown mnemonic: {mnemonic!r}")
    form = FORM_BY_MNEMONIC[mnemonic][1]

    if form in ("D", "DU", "SH"):
        asm.emit(
            Instruction(
                mnemonic,
                rd=parse_register(operands[0]),
                ra=parse_register(operands[1]),
                imm=_parse_operand_int(operands[2]),
            )
        )
    elif form in ("CMPI", "CMPLI"):
        asm.emit(Instruction(mnemonic, ra=parse_register(operands[0]), imm=_parse_operand_int(operands[1])))
    elif form == "MEM":
        disp, ra = _parse_mem_operand(operands[1])
        asm.emit(Instruction(mnemonic, rd=parse_register(operands[0]), ra=ra, imm=disp))
    elif form == "B":
        target = operands[0]
        if target.lstrip("+-").isdigit():
            asm.emit(Instruction(mnemonic, imm=int(target)))
        elif mnemonic == "b":
            asm.emit_branch(target)
        else:
            asm.emit_call(target)
    elif form == "BC":
        cond = operands[0].lower()
        if cond not in COND_BY_NAME:
            raise AssemblyError(f"unknown branch condition: {cond!r}")
        target = operands[1]
        if target.lstrip("+-").isdigit():
            asm.emit(ins.bc(cond, int(target)))
        else:
            asm.emit_cond_branch(cond, target)
    elif form == "NONE":
        asm.emit(Instruction(mnemonic))
    elif form == "R1":
        asm.emit(Instruction(mnemonic, rd=parse_register(operands[0])))
    elif form == "U16":
        asm.emit(Instruction(mnemonic, imm=_parse_operand_int(operands[0])))
    elif form in ("XO", "XO1"):
        rd = parse_register(operands[0])
        ra = parse_register(operands[1])
        if form == "XO" and mnemonic != "cmp":
            asm.emit(Instruction(mnemonic, rd=rd, ra=ra, rb=parse_register(operands[2])))
        elif mnemonic == "cmp":
            # Two syntaxes: the hand-written shorthand "cmp rA, rB" and
            # the disassembler's full "cmp rD, rA, rB" — accepting both
            # keeps disassembly -> assembly an identity.
            if len(operands) >= 3:
                asm.emit(Instruction(mnemonic, rd=rd, ra=ra, rb=parse_register(operands[2])))
            else:
                asm.emit(ins.cmp(rd, ra))
        else:
            asm.emit(Instruction(mnemonic, rd=rd, ra=ra))
    else:  # pragma: no cover
        raise AssemblyError(f"unhandled form {form!r}")

"""Register file conventions for the RX32 architecture.

RX32 is the 32-bit RISC target machine used throughout this reproduction.
It is PowerPC-inspired (fixed 32-bit instruction words, a link register,
a condition register set by explicit compare instructions, and exactly two
instruction-address breakpoint registers in the debug unit), but the
register conventions below are our own ABI.

Register map
------------
========  =============================================================
Register  Role
========  =============================================================
r0        hardwired zero (writes are discarded)
r1        stack pointer (grows downward)
r2        reserved (unused by the ABI; available to hand-written asm)
r3..r10   argument / return registers (r3 carries the return value)
r11..r13  caller-saved scratch (codegen and runtime internals)
r14..r27  expression-evaluation pool (caller-saved in this ABI)
r28..r31  reserved for future callee-saved use
lr        link register (call return address)
cr        condition register: one of LT / EQ / GT
========  =============================================================
"""

from __future__ import annotations

NUM_REGISTERS = 32

ZERO = 0
SP = 1
RESERVED = 2
ARG0 = 3
RET = 3
ARG_REGISTERS = tuple(range(3, 11))
MAX_REG_ARGS = len(ARG_REGISTERS)
SCRATCH0 = 11
SCRATCH1 = 12
SCRATCH2 = 13
EVAL_POOL = tuple(range(14, 28))

# Condition-register states (the result of the last compare).
CR_LT = -1
CR_EQ = 0
CR_GT = 1

_ALIASES = {"zero": ZERO, "sp": SP, "ret": RET}


def register_name(index: int) -> str:
    """Return the canonical assembly name for a register index."""
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_register(name: str) -> int:
    """Parse an assembly register name (``r7``, ``sp``, ``zero``) to its index."""
    text = name.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < NUM_REGISTERS:
            return index
    raise ValueError(f"unknown register name: {name!r}")

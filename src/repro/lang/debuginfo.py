"""Compiler-emitted fault-site records.

§6.3 of the paper, step 1: "All possible fault locations were identified.
This was done manually at the assembly level.  To assist this process, the
assignment and checking statements in the source code were first
identified and the compiler facilities in terms of symbol tables and
labels were used to help the identification of the assembly instructions
corresponding to the assignment and checking statements."

Our compiler automates exactly that bookkeeping.  While generating code it
records, for every assignment and checking statement, which machine
instructions *anchor* the statement:

* an :class:`AssignmentSite` anchors the store that commits the assigned
  value;
* a :class:`CheckSite` anchors the compare/conditional-branch pair that
  implements a relational test (plus any array-element loads feeding it);
* a :class:`JunctionSite` anchors the short-circuit branch pair of a
  ``&&``/``||`` operator;
* :class:`VarRefSite` lists every instruction referencing a given local
  variable's frame slot — the paper's Figure 4 stack-shift emulation needs
  all of them.

Indices are word indices into the code stream until
:meth:`DebugInfo.resolve` turns them into absolute addresses using the
assembled symbol table.

At ``-O1`` (see :mod:`repro.lang.ir`) a site may no longer anchor a real
instruction: constant folding can delete the compare/branch pair of an
``if (1)`` outright, and dead-code elimination can delete the committing
move of a never-read assignment.  Such sites are *marked unanchorable*
(``anchorable=False``, with the index pointing at the next surviving
instruction as a best-effort address) rather than silently dropped, so
consumers can tell "this statement produced no code" apart from "this
statement was never recorded".  Register allocation also means an
assignment may commit to a register instead of a frame slot; the
:attr:`AssignmentSite.location` record says which.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AssignmentSite:
    function: str
    line: int
    target: str           # human-readable description of the assigned lvalue
    kind: str             # 'assign' | 'compound' | 'incdec' | 'init'
    store_index: int      # word index of the anchored store instruction
    is_array_element: bool = False
    element_size: int = 4
    via_pointer: bool = False
    address: int | None = None  # filled by resolve()
    anchorable: bool = True
    # Where the committed value lives: ("slot", fp_offset) for a frame
    # store, ("reg", ordinal) when -O1 promoted the target to a register,
    # None for stores through computed addresses (arrays, pointers,
    # globals) — and for all O0 sites, which predate the record.
    location: tuple[str, int] | None = None

    @property
    def key(self) -> str:
        return f"{self.function}:{self.line}:{self.store_index}"


@dataclass
class CheckSite:
    function: str
    line: int
    context: str          # 'if' | 'while' | 'for' | 'ternary' | 'expr'
    op: str               # '<' '<=' '>' '>=' '==' '!=' 'bool'
    bc_index: int         # word index of the conditional branch (taken when true)
    bc_cond: int          # condition code encoded in that branch
    true_label: str
    false_label: str
    array_loads: list[tuple[int, int]] = field(default_factory=list)  # (index, elem size)
    address: int | None = None
    true_address: int | None = None
    false_address: int | None = None
    array_load_addresses: list[tuple[int, int]] = field(default_factory=list)
    anchorable: bool = True

    @property
    def key(self) -> str:
        return f"{self.function}:{self.line}:{self.bc_index}"


@dataclass
class JunctionSite:
    function: str
    line: int
    op: str               # '&&' or '||'
    bc_index: int         # the left operand's final conditional branch
    b_index: int          # the left operand's final unconditional branch
    true_label: str
    false_label: str
    mid_label: str        # label where the right operand's code begins
    bc_address: int | None = None
    b_address: int | None = None
    true_address: int | None = None
    false_address: int | None = None
    mid_address: int | None = None
    anchorable: bool = True


@dataclass
class StatementSite:
    """Anchor of one *generic* statement: its first emitted instruction.

    Assignments and checks already get precise per-instruction anchors
    above; the statement anchor is the coarse fallback the source-level
    tier (:mod:`repro.srcfi`) uses for statements the machine tier has no
    Table-3 rule for — bare calls, compound statements, returns.  The
    anchor is the word index the statement's first instruction was (or
    would have been) emitted at.
    """

    function: str
    line: int
    kind: str             # 'decl' | 'expr' | 'if' | 'while' | 'for' |
                          # 'return' | 'break' | 'continue'
    start_index: int      # word index of the statement's first instruction
    address: int | None = None  # filled by resolve()
    anchorable: bool = True

    @property
    def key(self) -> str:
        return f"{self.function}:{self.line}:{self.kind}:{self.start_index}"


@dataclass
class VarRefSite:
    function: str
    var: str
    index: int            # word index of the referencing instruction
    kind: str             # 'load' | 'store' | 'addr'
    address: int | None = None


@dataclass
class FunctionInfo:
    name: str
    label: str
    num_params: int
    frame_size: int = 0
    start_index: int = 0
    end_index: int = 0
    start_address: int | None = None
    end_address: int | None = None
    # local variable name -> frame offset relative to the frame pointer
    # (at -O1 this covers memory-resident locals plus spilled promotions)
    locals: dict[str, int] = field(default_factory=dict)
    # -O1 only: promoted local name -> physical register ordinal
    register_locals: dict[str, int] = field(default_factory=dict)


@dataclass
class DebugInfo:
    """Everything the fault locator and the §5 emulations need."""

    name: str
    assignments: list[AssignmentSite] = field(default_factory=list)
    checks: list[CheckSite] = field(default_factory=list)
    junctions: list[JunctionSite] = field(default_factory=list)
    statements: list[StatementSite] = field(default_factory=list)
    var_refs: dict[tuple[str, str], list[VarRefSite]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    source_lines: int = 0
    opt_level: int = 0

    def add_var_ref(self, site: VarRefSite) -> None:
        self.var_refs.setdefault((site.function, site.var), []).append(site)

    def refs_for(self, function: str, var: str) -> list[VarRefSite]:
        return self.var_refs.get((function, var), [])

    def statements_for(self, function: str, line: int,
                       kind: str | None = None) -> list[StatementSite]:
        """Statement anchors at one source position, in emission order."""
        return [
            site for site in self.statements
            if site.function == function and site.line == line
            and (kind is None or site.kind == kind)
        ]

    def resolve(self, code_base: int, symbols: dict[str, int]) -> None:
        """Convert word indices to absolute addresses; resolve labels."""
        def addr(index: int) -> int:
            return code_base + index * 4

        for site in self.assignments:
            site.address = addr(site.store_index)
        for stmt in self.statements:
            stmt.address = addr(stmt.start_index)
        for check in self.checks:
            check.address = addr(check.bc_index)
            check.true_address = symbols[check.true_label]
            check.false_address = symbols[check.false_label]
            check.array_load_addresses = [
                (addr(index), size) for index, size in check.array_loads
            ]
        for junction in self.junctions:
            junction.bc_address = addr(junction.bc_index)
            junction.b_address = addr(junction.b_index)
            junction.true_address = symbols[junction.true_label]
            junction.false_address = symbols[junction.false_label]
            junction.mid_address = symbols[junction.mid_label]
        for refs in self.var_refs.values():
            for ref in refs:
                ref.address = addr(ref.index)
        for info in self.functions.values():
            info.start_address = addr(info.start_index)
            info.end_address = addr(info.end_index)

    # -- summary helpers used by tables and the metrics module ------------

    def assignment_count(self) -> int:
        return len(self.assignments)

    def check_count(self) -> int:
        return len(self.checks)

"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from . import astnodes as ast
from .lexer import Token, tokenize
from .types import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    PointerType,
    StructType,
    Type,
)


class ParseError(SyntaxError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


# Binary operator precedence (higher binds tighter).  Assignment and the
# ternary operator are handled separately.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.structs: dict[str, StructType] = {}

    # -- token helpers ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.line)

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, value: object = None) -> bool:
        token = self.current
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind: str, value: object = None) -> Token | None:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: object = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            want = value if value is not None else kind
            raise self.error(f"expected {want!r}, found {self.current.value!r}")
        return token

    # -- types ---------------------------------------------------------------

    def at_type(self) -> bool:
        if self.check("keyword", "int") or self.check("keyword", "char") or self.check("keyword", "void"):
            return True
        return self.check("keyword", "struct")

    def parse_base_type(self) -> Type:
        if self.accept("keyword", "int"):
            return INT
        if self.accept("keyword", "char"):
            return CHAR
        if self.accept("keyword", "void"):
            return VOID
        if self.accept("keyword", "struct"):
            name_token = self.expect("ident")
            name = name_token.value
            if name not in self.structs:
                # Forward reference (e.g. `struct node *next;` inside itself).
                self.structs[name] = StructType(str(name))
            return self.structs[str(name)]
        raise self.error("expected a type")

    def parse_pointers(self, base: Type) -> Type:
        while self.accept("op", "*"):
            base = PointerType(base)
        return base

    def parse_array_suffix(self, base: Type) -> Type:
        dims: list[int] = []
        while self.accept("op", "["):
            size_token = self.expect("int")
            dims.append(int(size_token.value))
            self.expect("op", "]")
        for dim in reversed(dims):
            if dim <= 0:
                raise self.error("array dimension must be positive")
            base = ArrayType(base, dim)
        return base

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self.check("eof"):
            if self.check("keyword", "struct") and self.tokens[self.pos + 2].value == "{":
                self.parse_struct_definition()
                continue
            line = self.current.line
            base = self.parse_base_type()
            base = self.parse_pointers(base)
            name = str(self.expect("ident").value)
            if self.check("op", "("):
                program.functions.append(self.parse_function(base, name, line))
            else:
                program.globals.extend(self.parse_global_declarators(base, name, line))
        program.structs = dict(self.structs)
        return program

    def parse_struct_definition(self) -> None:
        self.expect("keyword", "struct")
        name = str(self.expect("ident").value)
        struct = self.structs.setdefault(name, StructType(name))
        if struct.fields:
            raise self.error(f"struct {name} redefined")
        self.expect("op", "{")
        while not self.accept("op", "}"):
            base = self.parse_base_type()
            while True:
                ftype = self.parse_pointers(base)
                fname = str(self.expect("ident").value)
                ftype = self.parse_array_suffix(ftype)
                struct.add_field(fname, ftype)
                if not self.accept("op", ","):
                    break
            self.expect("op", ";")
        struct.finalize()
        self.expect("op", ";")

    def parse_global_declarators(self, base: Type, first_name: str,
                                 line: int) -> list[ast.Declaration]:
        declarations = []
        name = first_name
        while True:
            var_type = self.parse_array_suffix(base)
            init = None
            init_list = None
            if self.accept("op", "="):
                if self.check("op", "{"):
                    init_list = self.parse_const_list()
                else:
                    init = self.parse_constant_expression()
            declarations.append(
                ast.Declaration(line=line, name=name, type=var_type, init=init,
                                init_list=init_list)
            )
            if not self.accept("op", ","):
                break
            extra_base = self.parse_pointers(base)
            name = str(self.expect("ident").value)
            base = extra_base if isinstance(extra_base, PointerType) else base
        self.expect("op", ";")
        return declarations

    def parse_const_list(self) -> list[int]:
        self.expect("op", "{")
        values: list[int] = []
        while not self.check("op", "}"):
            values.append(self.parse_constant_int())
            if not self.accept("op", ","):
                break
        self.expect("op", "}")
        return values

    def parse_constant_int(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.expect("int")
        value = int(token.value)
        return -value if negative else value

    def parse_constant_expression(self) -> ast.Expr:
        line = self.current.line
        return ast.IntLiteral(line=line, value=self.parse_constant_int())

    def parse_function(self, ret: Type, name: str, line: int) -> ast.Function:
        self.expect("op", "(")
        params: list[ast.Parameter] = []
        if self.accept("keyword", "void") and self.check("op", ")"):
            pass
        elif not self.check("op", ")"):
            while True:
                p_line = self.current.line
                p_type = self.parse_pointers(self.parse_base_type())
                p_name = str(self.expect("ident").value)
                # `int a[]` parameters decay to pointers.
                if self.accept("op", "["):
                    self.accept("int")
                    self.expect("op", "]")
                    p_type = PointerType(p_type)
                params.append(ast.Parameter(line=p_line, name=p_name, type=p_type))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        if self.accept("op", ";"):
            return ast.Function(line=line, name=name, ret=ret, params=params, body=None)
        body = self.parse_block()
        return ast.Function(line=line, name=name, ret=ret, params=params, body=body)

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        line = self.current.line
        self.expect("op", "{")
        block = ast.Block(line=line)
        while not self.accept("op", "}"):
            block.statements.append(self.parse_statement())
        return block

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "op" and token.value == "{":
            return self.parse_block()
        if self.at_type():
            return self.parse_local_declaration()
        if token.kind == "keyword":
            if token.value == "if":
                return self.parse_if()
            if token.value == "while":
                return self.parse_while()
            if token.value == "for":
                return self.parse_for()
            if token.value == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.value == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=token.line)
            if token.value == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=token.line)
        if self.accept("op", ";"):
            return ast.Block(line=token.line)  # empty statement
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStatement(line=token.line, expr=expr)

    def parse_local_declaration(self) -> ast.Stmt:
        line = self.current.line
        base = self.parse_base_type()
        block = ast.Block(line=line)
        while True:
            var_type = self.parse_pointers(base)
            name = str(self.expect("ident").value)
            var_type = self.parse_array_suffix(var_type)
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            block.statements.append(
                ast.Declaration(line=line, name=name, type=var_type, init=init)
            )
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(block.statements) == 1:
            return block.statements[0]
        return block

    def parse_if(self) -> ast.If:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        other = None
        if self.accept("keyword", "else"):
            other = self.parse_statement()
        return ast.If(line=line, cond=cond, then=then, other=other)

    def parse_while(self) -> ast.While:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(line=line, cond=cond, body=body)

    def parse_for(self) -> ast.For:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init: ast.Stmt | None = None
        if not self.check("op", ";"):
            if self.at_type():
                init = self.parse_local_declaration()
            else:
                expr = self.parse_expression()
                self.expect("op", ";")
                init = ast.ExprStatement(line=line, expr=expr)
        else:
            self.expect("op", ";")
        if isinstance(init, ast.Declaration) or isinstance(init, ast.Block):
            pass  # parse_local_declaration consumed the ';'
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        post = None
        if not self.check("op", ")"):
            post = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(line=line, init=init, cond=cond, post=post, body=body)

    # -- expressions --------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept("op", ","):
            right = self.parse_assignment()
            expr = ast.Binary(line=right.line, op=",", left=expr, right=right)
        return expr

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        token = self.current
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            self.advance()
            value = self.parse_assignment()
            return ast.Assign(line=token.line, op=str(token.value), target=left, value=value)
        return left

    def parse_ternary(self) -> ast.Expr:
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_expression()
            self.expect("op", ":")
            other = self.parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond, then=then, other=other)
        return cond

    def parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.current
            if token.kind != "op":
                return left
            precedence = _PRECEDENCE.get(str(token.value))
            if precedence is None or precedence < min_precedence:
                return left
            self.advance()
            right = self.parse_binary(precedence + 1)
            left = ast.Binary(line=token.line, op=str(token.value), left=left, right=right)

    def parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.value in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(line=token.line, op=str(token.value), operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self.parse_unary()
            return ast.IncDec(line=token.line, op=str(token.value), target=target, prefix=True)
        if token.kind == "keyword" and token.value == "sizeof":
            self.advance()
            self.expect("op", "(")
            target_type = self.parse_array_suffix(self.parse_pointers(self.parse_base_type()))
            self.expect("op", ")")
            return ast.SizeOf(line=token.line, target=target_type)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.current
            if token.kind != "op":
                return expr
            if token.value == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.value == "(":
                if not isinstance(expr, ast.Identifier):
                    raise self.error("only direct function calls are supported")
                self.advance()
                args: list[ast.Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = ast.Call(line=token.line, name=expr.name, args=args)
            elif token.value == ".":
                self.advance()
                field = str(self.expect("ident").value)
                expr = ast.Member(line=token.line, base=expr, field=field, arrow=False)
            elif token.value == "->":
                self.advance()
                field = str(self.expect("ident").value)
                expr = ast.Member(line=token.line, base=expr, field=field, arrow=True)
            elif token.value in ("++", "--"):
                self.advance()
                expr = ast.IncDec(line=token.line, op=str(token.value), target=expr, prefix=False)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLiteral(line=token.line, value=int(token.value))
        if token.kind == "string":
            self.advance()
            return ast.StringLiteral(line=token.line, value=bytes(token.value))
        if token.kind == "ident":
            self.advance()
            return ast.Identifier(line=token.line, name=str(token.value))
        if token.kind == "op" and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error(f"unexpected token {token.value!r}")


def parse(source: str) -> ast.Program:
    """Parse MiniC source text into a :class:`repro.lang.astnodes.Program`."""
    return Parser(tokenize(source)).parse_program()
